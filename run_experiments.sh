#!/usr/bin/env bash
# Regenerates every paper table/figure; outputs land in results/.
set -u
for bin in table2 fig04_directx fig05_direct_rx fig06_sim_trajectory \
           fig07_exp_characterization fig08_open_cnot fig09_cr_tomography \
           fig10_zz_interaction fig11_qutrit_counter fig12_benchmarks \
           fig13_rb ablation_sources extra_directx_irb extra_zne extra_qaoa_scaling extra_leakage; do
  echo "=== $bin ==="
  cargo run --release -p repro-bench --bin "$bin" > "results/$bin.txt" 2>&1 \
    && echo "ok -> results/$bin.txt" || echo "FAILED (see results/$bin.txt)"
done
