//! Property-based tests (proptest) on core invariants across the stack.

use openpulse_repro::characterization::hellinger_distance;
use openpulse_repro::circuit::{Circuit, Gate};
use openpulse_repro::compiler::{optimize, to_basis, weyl_coordinates, BasisKind};
use openpulse_repro::math::{eigh, C64, CMat};
use openpulse_repro::sim::{channels, euler_zxz, gates, StateVector};
use proptest::prelude::*;

/// Strategy: a random single-qubit unitary via U3 angles.
fn arb_u3() -> impl Strategy<Value = CMat> {
    (
        0.0..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
    )
        .prop_map(|(t, p, l)| gates::u3(t, p, l))
}

/// Strategy: a random 3-qubit circuit from a closed gate vocabulary.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0u32..3).prop_map(|q| (Gate::H, vec![q])),
        (0u32..3).prop_map(|q| (Gate::X, vec![q])),
        (0u32..3, -3.0..3.0f64).prop_map(|(q, a)| (Gate::Rz(a), vec![q])),
        (0u32..3, -3.0..3.0f64).prop_map(|(q, a)| (Gate::Rx(a), vec![q])),
        (0u32..3, -3.0..3.0f64).prop_map(|(q, a)| (Gate::Ry(a), vec![q])),
        (0u32..2).prop_map(|q| (Gate::Cnot, vec![q, q + 1])),
        (0u32..2, -3.0..3.0f64).prop_map(|(q, a)| (Gate::Zz(a), vec![q, q + 1])),
    ];
    proptest::collection::vec(gate, 1..12).prop_map(|ops| {
        let mut c = Circuit::new(3);
        for (g, qs) in ops {
            c.push(g, &qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_unitary(c in arb_circuit()) {
        let out = optimize(&c);
        prop_assert!(
            c.unitary().phase_invariant_diff(&out.unitary()) < 1e-8,
            "optimize changed the circuit"
        );
    }

    #[test]
    fn translation_preserves_unitary(c in arb_circuit()) {
        for kind in [BasisKind::Standard, BasisKind::Augmented] {
            let t = to_basis(&c, kind);
            prop_assert!(
                c.unitary().phase_invariant_diff(&t.unitary()) < 1e-8,
                "{kind:?} translation changed the circuit"
            );
        }
    }

    #[test]
    fn euler_zxz_round_trips(u in arb_u3()) {
        let (a, theta, c) = euler_zxz(&u);
        let recon = &(&gates::rz(a) * &gates::rx(theta)) * &gates::rz(c);
        prop_assert!(u.phase_invariant_diff(&recon) < 1e-8);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&theta));
    }

    #[test]
    fn weyl_coordinates_local_invariance(
        l1 in arb_u3(), l2 in arb_u3(), theta in 0.05..1.5f64
    ) {
        let base = gates::zz(theta);
        let dressed = &l1.kron(&l2) * &base;
        let (a1, a2, a3) = weyl_coordinates(&base);
        let (b1, b2, b3) = weyl_coordinates(&dressed);
        prop_assert!((a1 - b1).abs() < 1e-5, "{a1} vs {b1}");
        prop_assert!((a2 - b2).abs() < 1e-5);
        prop_assert!((a3 - b3).abs() < 1e-5);
    }

    #[test]
    fn channels_are_trace_preserving(
        g in 0.0..1.0f64, l in 0.0..1.0f64, p in 0.0..1.0f64
    ) {
        prop_assert!(channels::is_trace_preserving(&channels::amplitude_damping(g), 1e-9));
        prop_assert!(channels::is_trace_preserving(&channels::phase_damping(l), 1e-9));
        prop_assert!(channels::is_trace_preserving(&channels::depolarizing(p), 1e-9));
        prop_assert!(channels::is_trace_preserving(&channels::qutrit_relaxation(g, l), 1e-9));
    }

    #[test]
    fn state_vector_stays_normalized(c in arb_circuit()) {
        let psi = c.simulate();
        let total: f64 = psi.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hellinger_is_a_metric_sample(
        raw_p in proptest::collection::vec(0.01..1.0f64, 4),
        raw_q in proptest::collection::vec(0.01..1.0f64, 4),
        raw_r in proptest::collection::vec(0.01..1.0f64, 4),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let (p, q, r) = (norm(&raw_p), norm(&raw_q), norm(&raw_r));
        let (pq, qr, pr) = (
            hellinger_distance(&p, &q),
            hellinger_distance(&q, &r),
            hellinger_distance(&p, &r),
        );
        prop_assert!((0.0..=1.0).contains(&pq));
        prop_assert!((pq - hellinger_distance(&q, &p)).abs() < 1e-12, "symmetry");
        prop_assert!(pr <= pq + qr + 1e-12, "triangle inequality");
        prop_assert!(hellinger_distance(&p, &p) < 1e-12, "identity");
    }

    #[test]
    fn hermitian_eigendecomposition_reconstructs(
        entries in proptest::collection::vec(-1.0..1.0f64, 16)
    ) {
        // Build a 4×4 Hermitian matrix from the raw entries.
        let mut h = CMat::zeros(4, 4);
        let mut it = entries.into_iter();
        for r in 0..4 {
            for col in r..4 {
                let re = it.next().unwrap_or(0.0);
                if r == col {
                    h[(r, col)] = C64::real(re);
                } else {
                    let im = it.next().unwrap_or(0.0);
                    h[(r, col)] = C64::new(re, im);
                    h[(col, r)] = C64::new(re, -im);
                }
            }
        }
        let eig = eigh(&h);
        let lambda: Vec<C64> = eig.values.iter().map(|&v| C64::real(v)).collect();
        let recon = &(&eig.vectors * &CMat::diag(&lambda)) * &eig.vectors.dagger();
        prop_assert!(recon.max_abs_diff(&h) < 1e-8);
    }

    #[test]
    fn qasm_print_parse_round_trips(c in arb_circuit()) {
        use openpulse_repro::circuit::qasm;
        let text = qasm::print(&c);
        let back = qasm::parse(&text).expect("printer output must parse");
        prop_assert_eq!(c.num_qubits(), back.num_qubits());
        prop_assert!(
            c.unitary().phase_invariant_diff(&back.unitary()) < 1e-9,
            "round trip changed the circuit"
        );
    }

    #[test]
    fn routing_preserves_semantics(c in arb_circuit()) {
        use openpulse_repro::compiler::{route, CouplingMap};
        let map = CouplingMap::linear(3);
        let routed = route(&c, &map).expect("3-qubit chain is routable");
        for op in routed.circuit.ops() {
            if op.qubits.len() == 2 {
                prop_assert!(map.adjacent(op.qubits[0], op.qubits[1]));
            }
        }
        // Compare distributions through the final layout permutation.
        let ideal = c.output_distribution();
        let got = routed.circuit.output_distribution();
        let mut expect = vec![0.0; got.len()];
        for (idx, &p) in ideal.iter().enumerate() {
            let mut phys = 0usize;
            for (lq, &pq) in routed.final_layout.iter().enumerate() {
                if (idx >> lq) & 1 == 1 {
                    phys |= 1 << pq;
                }
            }
            expect[phys] += p;
        }
        for (a, b) in expect.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn circuit_inverse_composes_to_identity(c in arb_circuit()) {
        let mut full = c.clone();
        full.extend(&c.inverse());
        let mut psi = StateVector::zero_qubits(3);
        full.apply_to(&mut psi);
        prop_assert!(psi.probabilities()[0] > 1.0 - 1e-9);
    }
}
