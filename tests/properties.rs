//! Randomized tests of core invariants across the stack.
//!
//! Seeded-loop style (the environment is offline, so no proptest): each
//! test draws random circuits/unitaries from a deterministic RNG and
//! asserts the same invariants the original property suite checked.

use openpulse_repro::characterization::hellinger_distance;
use openpulse_repro::circuit::{Circuit, Gate};
use openpulse_repro::compiler::{optimize, to_basis, weyl_coordinates, BasisKind};
use openpulse_repro::math::{eigh, seeded, CMat, C64};
use openpulse_repro::sim::{channels, euler_zxz, gates, StateVector};
use rand::Rng;

const CASES: usize = 48;

/// A random single-qubit unitary via U3 angles.
fn rand_u3(rng: &mut impl Rng) -> CMat {
    gates::u3(
        rng.gen_range(0.0..std::f64::consts::PI),
        rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
    )
}

/// A random 3-qubit circuit from a closed gate vocabulary.
fn rand_circuit(rng: &mut impl Rng) -> Circuit {
    let len = rng.gen_range(1usize..12);
    let mut c = Circuit::new(3);
    for _ in 0..len {
        match rng.gen_range(0u32..7) {
            0 => {
                let q = rng.gen_range(0u32..3);
                c.push(Gate::H, &[q]);
            }
            1 => {
                let q = rng.gen_range(0u32..3);
                c.push(Gate::X, &[q]);
            }
            2 => {
                let q = rng.gen_range(0u32..3);
                c.push(Gate::Rz(rng.gen_range(-3.0..3.0)), &[q]);
            }
            3 => {
                let q = rng.gen_range(0u32..3);
                c.push(Gate::Rx(rng.gen_range(-3.0..3.0)), &[q]);
            }
            4 => {
                let q = rng.gen_range(0u32..3);
                c.push(Gate::Ry(rng.gen_range(-3.0..3.0)), &[q]);
            }
            5 => {
                let q = rng.gen_range(0u32..2);
                c.push(Gate::Cnot, &[q, q + 1]);
            }
            _ => {
                let q = rng.gen_range(0u32..2);
                c.push(Gate::Zz(rng.gen_range(-3.0..3.0)), &[q, q + 1]);
            }
        }
    }
    c
}

#[test]
fn optimizer_preserves_unitary() {
    let mut rng = seeded(0x41);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        let out = optimize(&c);
        assert!(
            c.unitary().phase_invariant_diff(&out.unitary()) < 1e-8,
            "optimize changed the circuit"
        );
    }
}

#[test]
fn translation_preserves_unitary() {
    let mut rng = seeded(0x42);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        for kind in [BasisKind::Standard, BasisKind::Augmented] {
            let t = to_basis(&c, kind);
            assert!(
                c.unitary().phase_invariant_diff(&t.unitary()) < 1e-8,
                "{kind:?} translation changed the circuit"
            );
        }
    }
}

#[test]
fn euler_zxz_round_trips() {
    let mut rng = seeded(0x43);
    for _ in 0..CASES {
        let u = rand_u3(&mut rng);
        let (a, theta, c) = euler_zxz(&u);
        let recon = &(&gates::rz(a) * &gates::rx(theta)) * &gates::rz(c);
        assert!(u.phase_invariant_diff(&recon) < 1e-8);
        assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&theta));
    }
}

#[test]
fn weyl_coordinates_local_invariance() {
    let mut rng = seeded(0x44);
    for _ in 0..CASES {
        let l1 = rand_u3(&mut rng);
        let l2 = rand_u3(&mut rng);
        let theta = rng.gen_range(0.05..1.5);
        let base = gates::zz(theta);
        let dressed = &l1.kron(&l2) * &base;
        let (a1, a2, a3) = weyl_coordinates(&base);
        let (b1, b2, b3) = weyl_coordinates(&dressed);
        assert!((a1 - b1).abs() < 1e-5, "{a1} vs {b1}");
        assert!((a2 - b2).abs() < 1e-5);
        assert!((a3 - b3).abs() < 1e-5);
    }
}

#[test]
fn channels_are_trace_preserving() {
    let mut rng = seeded(0x45);
    for _ in 0..CASES {
        let g = rng.gen_range(0.0..1.0);
        let l = rng.gen_range(0.0..1.0);
        let p = rng.gen_range(0.0..1.0);
        assert!(channels::is_trace_preserving(
            &channels::amplitude_damping(g),
            1e-9
        ));
        assert!(channels::is_trace_preserving(
            &channels::phase_damping(l),
            1e-9
        ));
        assert!(channels::is_trace_preserving(
            &channels::depolarizing(p),
            1e-9
        ));
        assert!(channels::is_trace_preserving(
            &channels::qutrit_relaxation(g, l),
            1e-9
        ));
    }
}

#[test]
fn state_vector_stays_normalized() {
    let mut rng = seeded(0x46);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        let psi = c.simulate();
        let total: f64 = psi.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn hellinger_is_a_metric_sample() {
    let mut rng = seeded(0x47);
    for _ in 0..CASES {
        let draw = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let v: Vec<f64> = (0..4).map(|_| rng.gen_range(0.01..1.0)).collect();
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect()
        };
        let p = draw(&mut rng);
        let q = draw(&mut rng);
        let r = draw(&mut rng);
        let (pq, qr, pr) = (
            hellinger_distance(&p, &q),
            hellinger_distance(&q, &r),
            hellinger_distance(&p, &r),
        );
        assert!((0.0..=1.0).contains(&pq));
        assert!((pq - hellinger_distance(&q, &p)).abs() < 1e-12, "symmetry");
        assert!(pr <= pq + qr + 1e-12, "triangle inequality");
        assert!(hellinger_distance(&p, &p) < 1e-12, "identity");
    }
}

#[test]
fn hermitian_eigendecomposition_reconstructs() {
    let mut rng = seeded(0x48);
    for _ in 0..CASES {
        // Build a 4×4 Hermitian matrix from raw random entries.
        let mut h = CMat::zeros(4, 4);
        for r in 0..4 {
            for col in r..4 {
                let re = rng.gen_range(-1.0..1.0);
                if r == col {
                    h[(r, col)] = C64::real(re);
                } else {
                    let im = rng.gen_range(-1.0..1.0);
                    h[(r, col)] = C64::new(re, im);
                    h[(col, r)] = C64::new(re, -im);
                }
            }
        }
        let eig = eigh(&h);
        let lambda: Vec<C64> = eig.values.iter().map(|&v| C64::real(v)).collect();
        let recon = &(&eig.vectors * &CMat::diag(&lambda)) * &eig.vectors.dagger();
        assert!(recon.max_abs_diff(&h) < 1e-8);
    }
}

#[test]
fn qasm_print_parse_round_trips() {
    use openpulse_repro::circuit::qasm;
    let mut rng = seeded(0x49);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        let text = qasm::print(&c);
        let back = qasm::parse(&text).expect("printer output must parse");
        assert_eq!(c.num_qubits(), back.num_qubits());
        assert!(
            c.unitary().phase_invariant_diff(&back.unitary()) < 1e-9,
            "round trip changed the circuit"
        );
    }
}

#[test]
fn routing_preserves_semantics() {
    use openpulse_repro::compiler::{route, CouplingMap};
    let mut rng = seeded(0x4A);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        let map = CouplingMap::linear(3);
        let routed = route(&c, &map).expect("3-qubit chain is routable");
        for op in routed.circuit.ops() {
            if op.qubits.len() == 2 {
                assert!(map.adjacent(op.qubits[0], op.qubits[1]));
            }
        }
        // Compare distributions through the final layout permutation.
        let ideal = c.output_distribution();
        let got = routed.circuit.output_distribution();
        let mut expect = vec![0.0; got.len()];
        for (idx, &p) in ideal.iter().enumerate() {
            let mut phys = 0usize;
            for (lq, &pq) in routed.final_layout.iter().enumerate() {
                if (idx >> lq) & 1 == 1 {
                    phys |= 1 << pq;
                }
            }
            expect[phys] += p;
        }
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn circuit_inverse_composes_to_identity() {
    let mut rng = seeded(0x4B);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng);
        let mut full = c.clone();
        full.extend(&c.inverse());
        let mut psi = StateVector::zero_qubits(3);
        full.apply_to(&mut psi);
        assert!(psi.probabilities()[0] > 1.0 - 1e-9);
    }
}
