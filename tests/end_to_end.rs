//! End-to-end integration tests across the whole stack: circuits are
//! compiled by both flows, lowered to pulses, integrated against the
//! device physics, and compared with ideal quantum mechanics.

use openpulse_repro::algorithms::{molecules, trotter, vqe, LineGraph};
use openpulse_repro::characterization::hellinger_distance;
use openpulse_repro::circuit::Circuit;
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, Calibration, DeviceModel, PulseExecutor};
use openpulse_repro::math::seeded;

fn ideal_setup(n: usize) -> (DeviceModel, Calibration) {
    let device = DeviceModel::ideal(n);
    let mut rng = seeded(99);
    let cal = calibrate(&device, &mut rng);
    (device, cal)
}

fn pulse_distribution(
    device: &DeviceModel,
    cal: &Calibration,
    circuit: &Circuit,
    mode: CompileMode,
) -> Vec<f64> {
    let compiled = Compiler::new(device, cal, mode).compile(circuit).unwrap();
    let exec = PulseExecutor::noiseless(device);
    let mut rng = seeded(1);
    exec.run(&compiled.program, &mut rng).probabilities
}

#[test]
fn both_flows_match_ideal_on_benchmark_circuits() {
    let (device, cal) = ideal_setup(3);
    let mut circuits: Vec<(String, Circuit)> = Vec::new();

    let mut ghz = Circuit::new(3);
    ghz.h(0).cnot(0, 1).cnot(1, 2);
    circuits.push(("ghz".into(), ghz));

    let solved = vqe::solve(&molecules::h2().hamiltonian);
    circuits.push(("vqe_h2".into(), vqe::ucc_ansatz(solved.theta)));

    circuits.push((
        "trotter_h2o".into(),
        trotter::trotter_circuit(&molecules::water().hamiltonian, 1.0, 2),
    ));

    let g = LineGraph::new(3);
    circuits.push(("qaoa3".into(), g.qaoa_circuit(&[(0.8, 0.4)])));

    for (name, circuit) in circuits {
        let ideal = circuit.output_distribution();
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let got = pulse_distribution(&device, &cal, &circuit, mode);
            let h = hellinger_distance(&ideal, &got);
            assert!(h < 0.12, "{name} / {mode:?}: Hellinger {h:.4} vs ideal");
        }
    }
}

#[test]
fn optimized_flow_is_never_slower() {
    let (device, cal) = ideal_setup(3);
    let workloads: Vec<Circuit> = vec![
        {
            let mut c = Circuit::new(1);
            c.x(0);
            c
        },
        {
            let mut c = Circuit::new(2);
            c.cnot(0, 1).rz(1, 0.7).cnot(0, 1);
            c
        },
        {
            let mut c = Circuit::new(3);
            c.h(0).h(1).h(2).cnot(0, 1).rz(1, 0.4).cnot(0, 1).cnot(1, 2);
            c
        },
    ];
    for circuit in &workloads {
        let std = Compiler::new(&device, &cal, CompileMode::Standard)
            .compile(circuit)
            .unwrap();
        let opt = Compiler::new(&device, &cal, CompileMode::Optimized)
            .compile(circuit)
            .unwrap();
        assert!(
            opt.duration() <= std.duration(),
            "optimized slower: {} vs {} dt\n{circuit}",
            opt.duration(),
            std.duration()
        );
        assert!(opt.pulse_count() <= std.pulse_count());
    }
}

#[test]
fn noisy_execution_beats_worst_case_on_almaden() {
    // Sanity: a noisy Bell pair still shows dominant |00⟩/|11⟩ weight.
    let mut rng = seeded(3);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let cal = calibrate(&device, &mut rng);
    let mut bell = Circuit::new(2);
    bell.h(0).cnot(0, 1);
    let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
        .compile(&bell)
        .unwrap();
    let exec = PulseExecutor::new(&device);
    let out = exec.run(&compiled.program, &mut rng);
    let p = &out.probabilities;
    assert!(p[0] + p[3] > 0.85, "Bell weight too low: {p:?}");
    assert!((p[0] - p[3]).abs() < 0.15, "Bell asymmetry: {p:?}");
}

#[test]
fn error_reduction_on_noisy_device() {
    // The headline claim in miniature: on the noisy device the optimized
    // flow has lower *mean* Hellinger error for a ZZ-heavy circuit.
    // Averaged over several drift realizations — a single draw can favour
    // either flow.
    let mut c = Circuit::new(2);
    c.h(0).h(1);
    for _ in 0..3 {
        c.cnot(0, 1).rz(1, 0.8).cnot(0, 1);
        // Mixers keep the ZZ layers from merging into one rotation.
        c.rx(0, 0.6).rx(1, 0.6);
    }
    c.h(0).h(1);
    let ideal = c.output_distribution();
    let mut total = [0.0_f64; 2];
    for seed in 0..4u64 {
        let mut rng = seeded(40 + seed);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let cal = calibrate(&device, &mut rng);
        for (m, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let compiled = Compiler::new(&device, &cal, mode).compile(&c).unwrap();
            let exec = PulseExecutor::new(&device);
            let out = exec.run(&compiled.program, &mut rng);
            total[m] += hellinger_distance(&ideal, &out.probabilities);
        }
    }
    assert!(
        total[1] < total[0],
        "optimized should beat standard on average: {total:?}"
    );
}

#[test]
fn compile_preserves_stage_equivalence() {
    let (_, _) = ideal_setup(2);
    let mut c = Circuit::new(2);
    c.h(0).cnot(0, 1).rz(1, 1.1).cnot(0, 1).rx(0, 0.5);
    let assembly = openpulse_repro::compiler::optimize(&c);
    assert!(
        c.unitary().phase_invariant_diff(&assembly.unitary()) < 1e-9,
        "optimizer changed the unitary"
    );
}

#[test]
fn routed_circuit_compiles_and_runs() {
    use openpulse_repro::compiler::{route, CouplingMap};
    // A long-range CNOT on a 3-qubit chain: the router inserts a SWAP,
    // the compiler lowers everything (SWAP → CNOTs), and the executor
    // reproduces the permuted ideal distribution.
    let (device, cal) = ideal_setup(3);
    let mut c = Circuit::new(3);
    c.h(0).cnot(0, 2);
    let routed = route(&c, &CouplingMap::linear(3)).expect("routable");
    assert!(routed.swaps_inserted >= 1);
    let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
        .compile(&routed.circuit)
        .expect("compile routed");
    let exec = PulseExecutor::noiseless(&device);
    let mut rng = seeded(8);
    let out = exec.run(&compiled.program, &mut rng);
    // Ideal: Bell pair between logical 0 and 2; remap through the layout.
    let ideal = c.output_distribution();
    let mut expect = vec![0.0; 8];
    for (idx, &p) in ideal.iter().enumerate() {
        let mut phys = 0usize;
        for (lq, &pq) in routed.final_layout.iter().enumerate() {
            if (idx >> lq) & 1 == 1 {
                phys |= 1 << pq;
            }
        }
        expect[phys] += p;
    }
    let h = hellinger_distance(&expect, &out.probabilities);
    assert!(h < 0.1, "routed execution Hellinger {h}");
}

#[test]
fn qutrit_counter_end_to_end() {
    use openpulse_repro::algorithms::{calibrate_qutrit, counter_schedule};
    let (device, cal) = ideal_setup(1);
    let pulses = calibrate_qutrit(&device, &cal);
    let exec = PulseExecutor::noiseless(&device);
    let mut rng = seeded(5);
    let out = exec.run_qutrit(&counter_schedule(&pulses, 3), &mut rng);
    assert!(
        out.populations[0] > 0.8,
        "3 cycles should return near |0⟩: {:?}",
        out.populations
    );
}

#[test]
fn kernel_executor_reproduces_reference_counts_on_fig12_benchmark() {
    // A Fig. 12-class workload (compiled H2 VQE on a noisy Almaden-like
    // device): the stride-kernel executor must sample counts bit-identical
    // to the embed-based reference path at the same seed.
    let mut rng = seeded(77);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let cal = calibrate(&device, &mut rng);
    let solved = vqe::solve(&molecules::h2().hamiltonian);
    let circuit = vqe::ucc_ansatz(solved.theta);
    let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
        .compile(&circuit)
        .unwrap();

    let fast = PulseExecutor::new(&device).run(&compiled.program, &mut seeded(123));
    let slow = PulseExecutor::new(&device)
        .with_reference_path()
        .run(&compiled.program, &mut seeded(123));
    for (a, b) in fast.probabilities.iter().zip(&slow.probabilities) {
        assert!((a - b).abs() < 1e-12, "kernel drift: {a} vs {b}");
    }
    assert_eq!(
        fast.sample_counts_deterministic(0xF16, 16_000),
        slow.sample_counts_deterministic(0xF16, 16_000),
        "kernel swap changed fig12-class counts"
    );
}
