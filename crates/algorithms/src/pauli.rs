//! Pauli-string operator algebra.
//!
//! Near-term algorithm Hamiltonians are sums of Pauli strings. This module
//! provides the string/sum types, their matrices, expectation values, and
//! the circuit constructions every benchmark in the paper is built from:
//! basis-change circuits for measuring a string, and the exponential
//! `exp(−iθP)` rotation (which for two-local strings reduces to a dressed
//! ZZ interaction — the operation the paper's Optimization 3 accelerates).

use quant_circuit::{Circuit, Gate};
use quant_math::{CMat, C64};
use quant_sim::{gates, StateVector};
use std::fmt;

/// A single-qubit Pauli factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The 2×2 matrix.
    pub fn matrix(&self) -> CMat {
        match self {
            Pauli::I => CMat::identity(2),
            Pauli::X => gates::x(),
            Pauli::Y => gates::y(),
            Pauli::Z => gates::z(),
        }
    }
}

/// A weighted Pauli string on `n` qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliString {
    /// Real coefficient.
    pub coeff: f64,
    /// One factor per qubit (qubit 0 first).
    pub ops: Vec<Pauli>,
}

impl PauliString {
    /// Builds a string from a compact spec like `"ZZI"` (qubit 0 first).
    ///
    /// # Panics
    ///
    /// Panics on characters outside `IXYZ`.
    pub fn parse(coeff: f64, spec: &str) -> Self {
        let ops = spec
            .chars()
            .map(|ch| match ch {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => panic!("invalid Pauli character '{other}'"),
            })
            .collect();
        PauliString { coeff, ops }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// Indices of non-identity factors.
    pub fn support(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Pauli::I)
            .map(|(i, _)| i)
            .collect()
    }

    /// The full 2ⁿ×2ⁿ matrix including the coefficient.
    ///
    /// A Pauli string is a monomial matrix — one nonzero per column, at
    /// `row = col ^ x_mask` — so it is filled directly in O(4ⁿ) zeroed
    /// entries + O(2ⁿ·n) phases, with no embed-and-multiply chain.
    pub fn matrix(&self) -> CMat {
        let n = self.num_qubits();
        let dim = 1usize << n;
        let mut x_mask = 0usize;
        for (q, p) in self.ops.iter().enumerate() {
            if matches!(p, Pauli::X | Pauli::Y) {
                x_mask |= 1 << q;
            }
        }
        let mut full = CMat::zeros(dim, dim);
        for col in 0..dim {
            let mut phase = C64::real(self.coeff);
            for (q, p) in self.ops.iter().enumerate() {
                let bit = (col >> q) & 1;
                match p {
                    // Y[1,0] = i (column bit 0), Y[0,1] = −i (column bit 1).
                    Pauli::Y => phase *= if bit == 0 { C64::I } else { -C64::I },
                    Pauli::Z if bit == 1 => phase = -phase,
                    _ => {}
                }
            }
            full[(col ^ x_mask, col)] = phase;
        }
        full
    }

    /// ⟨ψ|c·P|ψ⟩.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        let mut rotated = psi.clone();
        self.append_basis_change(&mut rotated);
        // In the rotated frame the string is a Z-string: expectation from
        // populations with parity signs.
        let probs = rotated.probabilities();
        let support = self.support();
        let mut total = 0.0;
        for (idx, &p) in probs.iter().enumerate() {
            let parity = support.iter().filter(|&&q| (idx >> q) & 1 == 1).count();
            total += if parity % 2 == 0 { p } else { -p };
        }
        self.coeff * total
    }

    /// Applies the basis change mapping this string to a Z-string, in
    /// place on a state (H for X, Rx(π/2)-style for Y).
    fn append_basis_change(&self, psi: &mut StateVector) {
        for (q, p) in self.ops.iter().enumerate() {
            match p {
                Pauli::X => psi.apply_unitary(&gates::h(), &[q]),
                Pauli::Y => {
                    // Rotate Y → Z: apply Sdg then H.
                    psi.apply_unitary(&gates::sdg(), &[q]);
                    psi.apply_unitary(&gates::h(), &[q]);
                }
                _ => {}
            }
        }
    }

    /// Appends to `circuit` the basis-change gates that map this string to
    /// a Z-string (used before a computational-basis measurement).
    pub fn append_measurement_basis(&self, circuit: &mut Circuit) {
        for (q, p) in self.ops.iter().enumerate() {
            match p {
                Pauli::X => {
                    circuit.h(q as u32);
                }
                Pauli::Y => {
                    circuit.push(Gate::Sdg, &[q as u32]);
                    circuit.h(q as u32);
                }
                _ => {}
            }
        }
    }

    /// Expectation of the (Z-rotated) string from a measured distribution
    /// over basis states — the post-basis-change readout path used with
    /// hardware counts.
    pub fn expectation_from_distribution(&self, probs: &[f64]) -> f64 {
        let support = self.support();
        let mut total = 0.0;
        for (idx, &p) in probs.iter().enumerate() {
            let parity = support.iter().filter(|&&q| (idx >> q) & 1 == 1).count();
            total += if parity % 2 == 0 { p } else { -p };
        }
        self.coeff * total
    }

    /// Appends `exp(−iθ·P)` (for the *unweighted* string `P`) to a
    /// circuit.
    ///
    /// Two-local strings use the ZZ-interaction core the paper optimizes;
    /// longer strings use a CNOT parity ladder.
    ///
    /// # Panics
    ///
    /// Panics on the identity string.
    pub fn append_rotation(&self, circuit: &mut Circuit, theta: f64) {
        let support = self.support();
        assert!(!support.is_empty(), "cannot rotate by the identity string");
        // Basis changes into Z-land.
        self.append_measurement_basis(circuit);
        match support.as_slice() {
            [q] => {
                circuit.rz(*q as u32, 2.0 * theta);
            }
            [a, b] => {
                // exp(−iθ Z⊗Z) = Zz(2θ).
                circuit.zz(*a as u32, *b as u32, 2.0 * theta);
            }
            many => {
                // Parity ladder.
                let last = *many.last().unwrap() as u32;
                for w in many.windows(2) {
                    circuit.cnot(w[0] as u32, w[1] as u32);
                }
                circuit.rz(last, 2.0 * theta);
                for w in many.windows(2).rev() {
                    circuit.cnot(w[0] as u32, w[1] as u32);
                }
            }
        }
        // Undo basis changes.
        self.append_inverse_basis(circuit);
    }

    fn append_inverse_basis(&self, circuit: &mut Circuit) {
        for (q, p) in self.ops.iter().enumerate() {
            match p {
                Pauli::X => {
                    circuit.h(q as u32);
                }
                Pauli::Y => {
                    circuit.h(q as u32);
                    circuit.push(Gate::S, &[q as u32]);
                }
                _ => {}
            }
        }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}·", self.coeff)?;
        for p in &self.ops {
            let ch = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

/// A sum of Pauli strings (a qubit Hamiltonian).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PauliSum {
    terms: Vec<PauliString>,
}

impl PauliSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        PauliSum::default()
    }

    /// Builds from `(coeff, spec)` pairs.
    pub fn from_terms(terms: &[(f64, &str)]) -> Self {
        let parsed: Vec<PauliString> = terms
            .iter()
            .map(|&(c, s)| PauliString::parse(c, s))
            .collect();
        if let Some(first) = parsed.first() {
            assert!(
                parsed.iter().all(|t| t.num_qubits() == first.num_qubits()),
                "all terms must act on the same register"
            );
        }
        PauliSum { terms: parsed }
    }

    /// The terms.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.terms.first().map_or(0, |t| t.num_qubits())
    }

    /// Adds a term.
    pub fn push(&mut self, term: PauliString) {
        if let Some(first) = self.terms.first() {
            assert_eq!(first.num_qubits(), term.num_qubits());
        }
        self.terms.push(term);
    }

    /// The full Hamiltonian matrix.
    pub fn matrix(&self) -> CMat {
        let n = self.num_qubits();
        let mut h = CMat::zeros(1 << n, 1 << n);
        for t in &self.terms {
            h = &h + &t.matrix();
        }
        h
    }

    /// ⟨ψ|H|ψ⟩.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        self.terms.iter().map(|t| t.expectation(psi)).sum()
    }

    /// The exact ground-state energy (smallest eigenvalue).
    pub fn ground_energy(&self) -> f64 {
        let eig = quant_math::eigh(&self.matrix());
        eig.values[0]
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Whether two strings are *qubit-wise commuting*: on every qubit the
/// factors are equal or at least one is the identity. QWC groups share a
/// single measurement basis, so a VQE energy needs one circuit per group
/// instead of one per term.
pub fn qubit_wise_commuting(a: &PauliString, b: &PauliString) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits());
    a.ops
        .iter()
        .zip(&b.ops)
        .all(|(x, y)| *x == Pauli::I || *y == Pauli::I || x == y)
}

/// A group of qubit-wise-commuting strings plus the shared basis (the
/// non-identity factor on each qubit).
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementGroup {
    /// The member terms.
    pub terms: Vec<PauliString>,
    /// The merged basis string (identity where no member acts).
    pub basis: PauliString,
}

impl MeasurementGroup {
    /// Appends the group's shared basis-change gates to a circuit.
    pub fn append_measurement_basis(&self, circuit: &mut Circuit) {
        self.basis.append_measurement_basis(circuit);
    }

    /// Sums the members' expectations from one measured distribution taken
    /// in the group's basis.
    pub fn expectation_from_distribution(&self, probs: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|t| t.expectation_from_distribution(probs))
            .sum()
    }
}

/// Greedily partitions a Hamiltonian's non-identity terms into
/// qubit-wise-commuting measurement groups (first-fit).
pub fn group_commuting(hamiltonian: &PauliSum) -> Vec<MeasurementGroup> {
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    'terms: for term in hamiltonian.terms() {
        if term.support().is_empty() {
            continue;
        }
        for group in &mut groups {
            if group
                .terms
                .iter()
                .all(|member| qubit_wise_commuting(member, term))
            {
                // Merge the term's factors into the group's basis.
                for (slot, p) in group.basis.ops.iter_mut().zip(&term.ops) {
                    if *slot == Pauli::I {
                        *slot = *p;
                    }
                }
                group.terms.push(term.clone());
                continue 'terms;
            }
        }
        groups.push(MeasurementGroup {
            terms: vec![term.clone()],
            basis: PauliString {
                coeff: 1.0,
                ops: term.ops.clone(),
            },
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = PauliString::parse(0.5, "XZI");
        assert_eq!(p.support(), vec![0, 1]);
        assert_eq!(p.to_string(), "+0.500000·XZI");
    }

    #[test]
    fn matrix_of_zz() {
        let p = PauliString::parse(1.0, "ZZ");
        let expect = gates::z().kron(&gates::z());
        assert!(p.matrix().max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn expectation_of_z_strings() {
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::x(), &[0]);
        // |01⟩ (q0=1): ⟨Z0⟩ = −1, ⟨Z1⟩ = +1, ⟨Z0Z1⟩ = −1.
        assert!((PauliString::parse(1.0, "ZI").expectation(&psi) + 1.0).abs() < 1e-10);
        assert!((PauliString::parse(1.0, "IZ").expectation(&psi) - 1.0).abs() < 1e-10);
        assert!((PauliString::parse(2.0, "ZZ").expectation(&psi) + 2.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_of_x_and_y() {
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&gates::h(), &[0]);
        assert!((PauliString::parse(1.0, "X").expectation(&psi) - 1.0).abs() < 1e-10);
        assert!(PauliString::parse(1.0, "Y").expectation(&psi).abs() < 1e-10);
        // |+i⟩ state.
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::s(), &[0]);
        assert!((PauliString::parse(1.0, "Y").expectation(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_matches_matrix() {
        let h = PauliSum::from_terms(&[(0.3, "XZ"), (-0.7, "YY"), (0.2, "ZI"), (0.4, "XX")]);
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 1]);
        psi.apply_unitary(&gates::rz(0.6), &[1]);
        let via_terms = h.expectation(&psi);
        let via_matrix = psi.expectation(&h.matrix(), &[0, 1]);
        assert!((via_terms - via_matrix).abs() < 1e-9);
    }

    #[test]
    fn rotation_matches_exponential() {
        use quant_math::unitary_exp;
        for spec in ["ZZ", "XX", "XY", "YZ", "XI", "IY"] {
            let p = PauliString::parse(1.0, spec);
            let theta = 0.437;
            let mut c = Circuit::new(2);
            p.append_rotation(&mut c, theta);
            let expect = unitary_exp(&p.matrix(), theta);
            let diff = c.unitary().phase_invariant_diff(&expect);
            assert!(diff < 1e-9, "{spec}: diff = {diff}");
        }
    }

    #[test]
    fn rotation_three_qubit_ladder() {
        use quant_math::unitary_exp;
        let p = PauliString::parse(1.0, "ZXZ");
        let theta = -0.91;
        let mut c = Circuit::new(3);
        p.append_rotation(&mut c, theta);
        let expect = unitary_exp(&p.matrix(), theta);
        assert!(c.unitary().phase_invariant_diff(&expect) < 1e-9);
    }

    #[test]
    fn ground_energy_of_simple_hamiltonian() {
        // H = Z: ground energy −1.
        let h = PauliSum::from_terms(&[(1.0, "Z")]);
        assert!((h.ground_energy() + 1.0).abs() < 1e-10);
        // H = X + Z: ground energy −√2.
        let h = PauliSum::from_terms(&[(1.0, "X"), (1.0, "Z")]);
        assert!((h.ground_energy() + 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn qwc_predicate() {
        let zz = PauliString::parse(1.0, "ZZ");
        let zi = PauliString::parse(1.0, "ZI");
        let xx = PauliString::parse(1.0, "XX");
        let xi = PauliString::parse(1.0, "XI");
        assert!(qubit_wise_commuting(&zz, &zi));
        assert!(qubit_wise_commuting(&xx, &xi));
        assert!(!qubit_wise_commuting(&zz, &xx));
        assert!(!qubit_wise_commuting(&zi, &xi));
    }

    #[test]
    fn grouping_h2_needs_two_circuits() {
        // H2's {ZI, IZ, ZZ} share the Z basis; {XX} and {YY} are separate
        // → 3 groups instead of 5 measurement circuits.
        let h = crate::molecules::h2().hamiltonian;
        let groups = group_commuting(&h);
        assert_eq!(groups.len(), 3, "{groups:#?}");
        let z_group = groups
            .iter()
            .find(|g| g.terms.len() == 3)
            .expect("Z-basis group");
        assert_eq!(z_group.basis.ops, vec![Pauli::Z, Pauli::Z]);
    }

    #[test]
    fn grouped_energy_matches_term_by_term() {
        let h = crate::molecules::h2().hamiltonian;
        let mut prep = Circuit::new(2);
        prep.x(0);
        PauliString::parse(1.0, "XY").append_rotation(&mut prep, 0.21);

        let identity: f64 = h
            .terms()
            .iter()
            .filter(|t| t.support().is_empty())
            .map(|t| t.coeff)
            .sum();
        // Term-by-term reference (state-vector expectations).
        let psi = prep.simulate();
        let reference = h.expectation(&psi);
        // Grouped path: one measured distribution per group.
        let mut grouped = identity;
        for group in group_commuting(&h) {
            let mut c = prep.clone();
            group.append_measurement_basis(&mut c);
            grouped += group.expectation_from_distribution(&c.output_distribution());
        }
        assert!(
            (grouped - reference).abs() < 1e-9,
            "grouped {grouped} vs reference {reference}"
        );
    }

    #[test]
    fn measurement_basis_reduces_to_parity() {
        // Measuring XX on a Bell pair gives +1 deterministically.
        let mut prep = Circuit::new(2);
        prep.h(0).cnot(0, 1);
        let p = PauliString::parse(1.0, "XX");
        let mut with_basis = prep.clone();
        p.append_measurement_basis(&mut with_basis);
        let probs = with_basis.output_distribution();
        let exp = p.expectation_from_distribution(&probs);
        assert!((exp - 1.0).abs() < 1e-10);
    }
}
