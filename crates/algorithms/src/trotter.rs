//! Trotterized Hamiltonian dynamics — the paper's methane/water
//! simulation benchmarks (6 Trotter steps each).

use crate::pauli::PauliSum;
use quant_circuit::Circuit;
use quant_math::{unitary_exp, CMat};
use quant_sim::StateVector;

/// Builds the first-order Trotter circuit `(Π_j exp(−i·c_j·P_j·t/n))ⁿ`
/// approximating `exp(−iHt)`. Identity terms contribute only global phase
/// and are skipped.
pub fn trotter_circuit(hamiltonian: &PauliSum, time: f64, steps: usize) -> Circuit {
    assert!(steps >= 1, "need at least one Trotter step");
    let n = hamiltonian.num_qubits() as u32;
    let dt = time / steps as f64;
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for term in hamiltonian.terms() {
            if term.support().is_empty() {
                continue;
            }
            // exp(−i·coeff·P·dt): rotation angle θ = coeff·dt for the
            // unweighted string.
            let unweighted = crate::pauli::PauliString {
                coeff: 1.0,
                ops: term.ops.clone(),
            };
            unweighted.append_rotation(&mut c, term.coeff * dt);
        }
    }
    c
}

/// The exact propagator `exp(−iHt)`.
pub fn exact_propagator(hamiltonian: &PauliSum, time: f64) -> CMat {
    unitary_exp(&hamiltonian.matrix(), time)
}

/// Fidelity between the Trotterized state and the exact evolution from
/// `|0…0⟩`.
pub fn trotter_state_fidelity(hamiltonian: &PauliSum, time: f64, steps: usize) -> f64 {
    let n = hamiltonian.num_qubits();
    let approx = trotter_circuit(hamiltonian, time, steps).simulate();
    let mut exact = StateVector::zero_qubits(n);
    let targets: Vec<usize> = (0..n).collect();
    exact.apply_unitary(&exact_propagator(hamiltonian, time), &targets);
    approx.fidelity(&exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules;

    #[test]
    fn trotter_converges_with_steps() {
        let h = molecules::h2().hamiltonian;
        let t = 1.0;
        let f1 = trotter_state_fidelity(&h, t, 1);
        let f6 = trotter_state_fidelity(&h, t, 6);
        let f24 = trotter_state_fidelity(&h, t, 24);
        assert!(f6 >= f1 - 1e-9, "f1={f1}, f6={f6}");
        assert!(f24 >= f6 - 1e-9);
        assert!(f24 > 0.9999, "24 steps should be nearly exact: {f24}");
    }

    #[test]
    fn six_step_benchmark_is_accurate() {
        // The paper's benchmarks use 6 Trotter steps; verify that's in the
        // high-fidelity regime for the methane/water surrogates.
        for m in [molecules::methane(), molecules::water()] {
            let f = trotter_state_fidelity(&m.hamiltonian, 0.5, 6);
            assert!(f > 0.999, "{}: 6-step fidelity {f}", m.name);
        }
    }

    #[test]
    fn trotter_circuit_has_zz_cores() {
        let h = molecules::water().hamiltonian;
        let c = trotter_circuit(&h, 0.5, 6);
        // Each step: ZZ + XX + YY → three 2-local rotations → 3 ZZ cores.
        assert_eq!(c.count_gate("zz"), 18);
    }

    #[test]
    fn single_term_matches_exact() {
        let h = PauliSum::from_terms(&[(0.7, "ZZ")]);
        // One term → Trotter is exact at any step count.
        let f = trotter_state_fidelity(&h, 2.0, 1);
        assert!((f - 1.0).abs() < 1e-10);
    }
}
