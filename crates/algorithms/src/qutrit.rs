//! The base-3 counter (paper §7): qudit control via frequency-shifted
//! pulses.
//!
//! Standard basis gates only address the |0⟩↔|1⟩ subspace because the
//! local oscillator sits at f01. Shifting the drive frequency by the
//! anharmonicity α reaches the |1⟩↔|2⟩ transition (f12), and shifting by
//! α/2 drives the two-photon |0⟩↔|2⟩ transition (f02/2) at higher power —
//! Eq. 1 of the paper. One counter cycle is three hops:
//! `|0⟩ → |1⟩ → |2⟩ → |0⟩`.

use quant_device::{Calibration, DeviceModel, DriveState};
use quant_pulse::{Channel, GaussianSquare, Instruction, Schedule, Waveform};

/// Calibrated pulses for the three qutrit transitions.
#[derive(Clone, Debug)]
pub struct QutritPulses {
    /// π pulse on |0⟩↔|1⟩ (the ordinary calibrated X pulse).
    pub x01: Waveform,
    /// π pulse on |1⟩↔|2⟩, played with the LO shifted by `f12_offset`.
    pub x12: Waveform,
    /// LO offset for the x12 pulse (Hz; ≈ α).
    pub f12_offset: f64,
    /// Two-photon π pulse on |0⟩↔|2⟩, played with the LO shifted by
    /// `f02_offset`.
    pub x02: Waveform,
    /// LO offset for the x02 pulse (Hz; ≈ α/2 plus a Stark correction).
    pub f02_offset: f64,
}

/// Calibrates the qutrit transition pulses against the device (a small
/// spectroscopy + amplitude tune-up, as described in the paper's §7.2).
pub fn calibrate_qutrit(device: &DeviceModel, cal: &Calibration) -> QutritPulses {
    let transmon = device.transmon_cal(0);
    let p = device.qubit(0);

    let x01 = cal.qubit(0).rx180_waveform("x01");

    // --- x12: scaled X pulse at Δf = α --------------------------------
    // The 1↔2 matrix element is √2 stronger, so start from amp/√2 and
    // polish. Objective: |⟨2|U|1⟩|².
    let transfer_12 = |scale: f64, df: f64| -> f64 {
        let mut state = DriveState {
            freq_offset: df,
            ..Default::default()
        };
        let u = transmon.integrate_play(&mut state, &x01.scaled(scale));
        u[(2, 1)].norm_sqr()
    };
    let mut best12 = (1.0 / std::f64::consts::SQRT_2, p.alpha, 0.0);
    for ds in -6..=6 {
        let scale = (1.0 / std::f64::consts::SQRT_2) * (1.0 + ds as f64 * 0.02);
        for df_k in -6..=6 {
            let df = p.alpha + df_k as f64 * 0.4e6;
            let t = transfer_12(scale, df);
            if t > best12.2 {
                best12 = (scale, df, t);
            }
        }
    }
    let x12 = x01.scaled(best12.0);
    let f12_offset = best12.1;

    // --- x02: two-photon pulse at Δf ≈ α/2 ------------------------------
    // Strong constant drive; sweep amplitude, duration and a Stark-shifted
    // frequency offset. Objective: |⟨2|U|0⟩|².
    let mk_x02 = |amp: f64, dur: u64| -> Waveform {
        // Smooth flat-top: abrupt edges splatter spectrally and cap the
        // two-photon transfer well below 1.
        GaussianSquare {
            duration: dur + 120,
            amp,
            sigma: 15.0,
            width: dur,
        }
        .waveform("x02")
    };
    let transfer_02 = |amp: f64, dur: u64, df: f64| -> f64 {
        let w = mk_x02(amp, dur);
        let mut state = DriveState {
            freq_offset: df,
            ..Default::default()
        };
        let u = transmon.integrate_play(&mut state, &w);
        u[(2, 0)].norm_sqr()
    };
    let mut best02 = (0.4_f64, 480_u64, p.alpha / 2.0, 0.0_f64);
    for amp_k in 0..8 {
        let amp = 0.3 + amp_k as f64 * 0.05;
        for dur_k in 0..8 {
            let dur = 240 + dur_k * 120;
            for df_k in -10..=10 {
                let df = p.alpha / 2.0 + df_k as f64 * 1.0e6;
                let t = transfer_02(amp, dur, df);
                if t > best02.3 {
                    best02 = (amp, dur, df, t);
                }
            }
        }
    }
    // Alternating coordinate polish: frequency (the sharpest axis), then
    // amplitude, then duration, iterated — the two-photon transition is
    // doubly sensitive to amplitude (rate ∝ amp²), so coarse gridding
    // alone leaves percent-level infidelity.
    let (mut amp, mut dur, mut df, mut best_t) = best02;
    for round in 0..4 {
        let f_step = 0.4e6 / (1 << round) as f64;
        for _ in 0..12 {
            let up = transfer_02(amp, dur, df + f_step);
            let down = transfer_02(amp, dur, df - f_step);
            if up > best_t {
                df += f_step;
                best_t = up;
            } else if down > best_t {
                df -= f_step;
                best_t = down;
            } else {
                break;
            }
        }
        let a_step = 0.02 / (1 << round) as f64;
        for _ in 0..12 {
            let up = transfer_02(amp + a_step, dur, df);
            let down = transfer_02(amp - a_step, dur, df);
            if up > best_t {
                amp += a_step;
                best_t = up;
            } else if down > best_t && amp > a_step {
                amp -= a_step;
                best_t = down;
            } else {
                break;
            }
        }
        let d_step = (60 >> round).max(4) as u64;
        for _ in 0..8 {
            let up = transfer_02(amp, dur + d_step, df);
            let down = if dur > d_step + 60 {
                transfer_02(amp, dur - d_step, df)
            } else {
                0.0
            };
            if up > best_t {
                dur += d_step;
                best_t = up;
            } else if down > best_t {
                dur -= d_step;
                best_t = down;
            } else {
                break;
            }
        }
    }
    let x02 = mk_x02(amp, dur);

    QutritPulses {
        x01,
        x12,
        f12_offset,
        x02,
        f02_offset: df,
    }
}

/// Builds the counter schedule: `cycles` full cycles (3 hops each) on the
/// drive channel of qubit 0, with the LO shifted around each off-subspace
/// pulse.
pub fn counter_schedule(pulses: &QutritPulses, cycles: usize) -> Schedule {
    let ch = Channel::Drive(0);
    let mut s = Schedule::new(format!("base3_counter_{cycles}cycles"));
    for _ in 0..cycles {
        // |0⟩ → |1⟩ at f01.
        s.append(Instruction::Play {
            waveform: pulses.x01.clone(),
            channel: ch,
        });
        // |1⟩ → |2⟩ at f12.
        s.append(Instruction::ShiftFrequency {
            delta: pulses.f12_offset,
            channel: ch,
        });
        s.append(Instruction::Play {
            waveform: pulses.x12.clone(),
            channel: ch,
        });
        s.append(Instruction::ShiftFrequency {
            delta: -pulses.f12_offset,
            channel: ch,
        });
        // |2⟩ → |0⟩ via the two-photon transition.
        s.append(Instruction::ShiftFrequency {
            delta: pulses.f02_offset,
            channel: ch,
        });
        s.append(Instruction::Play {
            waveform: pulses.x02.clone(),
            channel: ch,
        });
        s.append(Instruction::ShiftFrequency {
            delta: -pulses.f02_offset,
            channel: ch,
        });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_device::{calibrate, PulseExecutor};
    use quant_math::seeded;

    fn setup() -> (DeviceModel, QutritPulses) {
        let device = DeviceModel::ideal(1);
        let mut rng = seeded(17);
        let cal = calibrate(&device, &mut rng);
        let pulses = calibrate_qutrit(&device, &cal);
        (device, pulses)
    }

    #[test]
    fn x12_pulse_transfers_population() {
        let (device, pulses) = setup();
        let t = device.transmon_cal(0);
        let mut state = DriveState {
            freq_offset: pulses.f12_offset,
            ..Default::default()
        };
        let u = t.integrate_play(&mut state, &pulses.x12);
        assert!(u[(2, 1)].norm_sqr() > 0.98, "1→2: {}", u[(2, 1)].norm_sqr());
    }

    #[test]
    fn x02_two_photon_transfers_population() {
        let (device, pulses) = setup();
        let t = device.transmon_cal(0);
        let mut state = DriveState {
            freq_offset: pulses.f02_offset,
            ..Default::default()
        };
        let u = t.integrate_play(&mut state, &pulses.x02);
        assert!(
            u[(2, 0)].norm_sqr() > 0.985,
            "0→2: {}",
            u[(2, 0)].norm_sqr()
        );
    }

    #[test]
    fn one_cycle_returns_to_ground() {
        let (device, pulses) = setup();
        let s = counter_schedule(&pulses, 1);
        let exec = PulseExecutor::noiseless(&device);
        let mut rng = seeded(1);
        let out = exec.run_qutrit(&s, &mut rng);
        assert!(
            out.populations[0] > 0.85,
            "one full cycle should return |0⟩: {:?}",
            out.populations
        );
    }

    #[test]
    fn partial_cycle_lands_midway() {
        let (device, pulses) = setup();
        // Two hops: |0⟩→|1⟩→|2⟩.
        let mut s = Schedule::new("two_hops");
        let ch = Channel::Drive(0);
        s.append(Instruction::Play {
            waveform: pulses.x01.clone(),
            channel: ch,
        });
        s.append(Instruction::ShiftFrequency {
            delta: pulses.f12_offset,
            channel: ch,
        });
        s.append(Instruction::Play {
            waveform: pulses.x12.clone(),
            channel: ch,
        });
        let exec = PulseExecutor::noiseless(&device);
        let mut rng = seeded(2);
        let out = exec.run_qutrit(&s, &mut rng);
        assert!(
            out.populations[2] > 0.9,
            "two hops should reach |2⟩: {:?}",
            out.populations
        );
    }

    #[test]
    fn counter_survives_many_noiseless_cycles() {
        let (device, pulses) = setup();
        let exec = PulseExecutor::noiseless(&device);
        let mut rng = seeded(3);
        let p5 = exec
            .run_qutrit(&counter_schedule(&pulses, 5), &mut rng)
            .populations[0];
        assert!(p5 > 0.5, "5 noiseless cycles: p0 = {p5}");
    }
}
