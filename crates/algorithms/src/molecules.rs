//! Molecular Hamiltonians for the paper's Fig. 12 benchmarks.
//!
//! The paper generated these with OpenFermion and orbital reductions down
//! to two qubits. We have no chemistry stack, so per the reproduction's
//! substitution rules:
//!
//! * **H₂** uses the published Bravyi–Kitaev-reduced two-qubit coefficients
//!   of O'Malley et al. (PRX 6, 031007, 2016) at the equilibrium bond
//!   length R = 0.7414 Å — the same benchmark the paper replicates.
//! * **LiH**, **CH₄** (methane) and **H₂O** (water) are two-qubit
//!   *surrogates*: Hamiltonians with the same operator content
//!   (I, Z, ZZ, XX, YY — the structure every orbital-reduced two-electron
//!   problem shares) and coefficient magnitudes representative of the
//!   published reductions. Fig. 12 measures compiled-circuit error against
//!   each benchmark's own ideal distribution, so the reproduction's shape
//!   depends on the circuit structure, not on chemical accuracy.

use crate::pauli::PauliSum;

/// A named molecular benchmark.
#[derive(Clone, Debug)]
pub struct Molecule {
    /// Display name.
    pub name: &'static str,
    /// The qubit Hamiltonian.
    pub hamiltonian: PauliSum,
}

/// H₂ at R = 0.7414 Å, BK-reduced to 2 qubits (O'Malley et al. 2016).
pub fn h2() -> Molecule {
    Molecule {
        name: "H2",
        hamiltonian: PauliSum::from_terms(&[
            (-0.4804, "II"),
            (0.3435, "ZI"),
            (-0.4347, "IZ"),
            (0.5716, "ZZ"),
            (0.0910, "XX"),
            (0.0910, "YY"),
        ]),
    }
}

/// LiH two-qubit surrogate (active-space reduction shape, scaled to the
/// published ~−7.8 Ha region via the identity term).
pub fn lih() -> Molecule {
    Molecule {
        name: "LiH",
        hamiltonian: PauliSum::from_terms(&[
            (-7.4989, "II"),
            (0.0130, "ZI"),
            (0.0130, "IZ"),
            (0.1812, "ZZ"),
            (0.0440, "XX"),
            (0.0440, "YY"),
        ]),
    }
}

/// Methane (CH₄) two-qubit surrogate.
pub fn methane() -> Molecule {
    Molecule {
        name: "CH4",
        hamiltonian: PauliSum::from_terms(&[
            (-35.2654, "II"),
            (0.2141, "ZI"),
            (-0.1903, "IZ"),
            (0.3811, "ZZ"),
            (0.0672, "XX"),
            (0.0672, "YY"),
        ]),
    }
}

/// Water (H₂O) two-qubit surrogate.
pub fn water() -> Molecule {
    Molecule {
        name: "H2O",
        hamiltonian: PauliSum::from_terms(&[
            (-73.2341, "II"),
            (0.1486, "ZI"),
            (-0.1286, "IZ"),
            (0.2954, "ZZ"),
            (0.0583, "XX"),
            (0.0583, "YY"),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_ground_energy_matches_fci() {
        // The exact 2-qubit diagonalization at R = 0.7414 Å is ≈ −1.85 Ha
        // for these published coefficients (electronic + constant term).
        let e = h2().hamiltonian.ground_energy();
        assert!((-2.0..=-1.6).contains(&e), "H2 ground energy = {e}");
    }

    #[test]
    fn all_molecules_are_two_qubit_hermitian() {
        for m in [h2(), lih(), methane(), water()] {
            assert_eq!(m.hamiltonian.num_qubits(), 2, "{}", m.name);
            assert!(m.hamiltonian.matrix().is_hermitian(1e-12), "{}", m.name);
        }
    }

    #[test]
    fn hamiltonian_structure_is_chemistry_shaped() {
        // Every benchmark has the XX+YY hopping pair with equal weights —
        // the structure the UCC ansatz and Trotter circuits exploit.
        for m in [h2(), lih(), methane(), water()] {
            let xx = m
                .hamiltonian
                .terms()
                .iter()
                .find(|t| t.to_string().ends_with("XX"))
                .unwrap()
                .coeff;
            let yy = m
                .hamiltonian
                .terms()
                .iter()
                .find(|t| t.to_string().ends_with("YY"))
                .unwrap()
                .coeff;
            assert!((xx - yy).abs() < 1e-12, "{}", m.name);
        }
    }
}
