//! Near-term quantum algorithms — the paper's benchmark workloads.
//!
//! * [`pauli`] — Pauli-string operator algebra, measurement-basis circuits
//!   and `exp(−iθP)` rotations (whose two-local core is the ZZ interaction
//!   the paper's compiler optimizes).
//! * [`molecules`] — the Fig. 12 molecular Hamiltonians: the published H₂
//!   two-qubit reduction plus documented LiH/CH₄/H₂O surrogates.
//! * [`vqe`] — variational eigensolver with the UCC-style ansatz.
//! * [`qaoa`] — QAOA-MAXCUT on line graphs.
//! * [`trotter`] — Trotterized Hamiltonian dynamics (6-step benchmarks).
//! * [`qutrit`] — the §7 base-3 counter: qutrit pulses via
//!   frequency-shifted drives.
//!
//! ```
//! use quant_algos::{molecules, vqe};
//!
//! let h2 = molecules::h2().hamiltonian;
//! let solved = vqe::solve(&h2);
//! assert!((solved.energy - h2.ground_energy()).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod molecules;
pub mod pauli;
pub mod qaoa;
pub mod qutrit;
pub mod trotter;
pub mod vqe;

pub use molecules::Molecule;
pub use pauli::{
    group_commuting, qubit_wise_commuting, MeasurementGroup, Pauli, PauliString, PauliSum,
};
pub use qaoa::LineGraph;
pub use qutrit::{calibrate_qutrit, counter_schedule, QutritPulses};
