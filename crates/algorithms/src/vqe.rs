//! Variational quantum eigensolver with a UCC-style two-qubit ansatz.
//!
//! The paper's H₂ and LiH benchmarks (Fig. 12) replicate O'Malley et al.
//! and Hempel et al., both built on the unitary coupled-cluster ansatz.
//! For the two-qubit reduced problems that ansatz collapses to a single
//! parametrized excitation
//!
//! ```text
//! |ψ(θ)⟩ = exp(−iθ·X₀Y₁) |01⟩
//! ```
//!
//! whose circuit contains exactly one ZZ-interaction core — the operation
//! the paper's compiler optimizes hardest.

use crate::pauli::{PauliString, PauliSum};
use quant_circuit::Circuit;
use quant_math::{nelder_mead, NelderMeadOptions};

/// The UCC-style ansatz circuit `exp(−iθ·X₀Y₁)` applied to `|01⟩`
/// (reference state: qubit 0 excited).
pub fn ucc_ansatz(theta: f64) -> Circuit {
    let mut c = Circuit::new(2);
    c.x(0); // Hartree–Fock reference |01⟩ (q0 = 1)
    PauliString::parse(1.0, "XY").append_rotation(&mut c, theta);
    c
}

/// The ideal (noise-free) energy of the ansatz at `theta`.
pub fn energy(hamiltonian: &PauliSum, theta: f64) -> f64 {
    let psi = ucc_ansatz(theta).simulate();
    hamiltonian.expectation(&psi)
}

/// Result of the classical outer loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VqeResult {
    /// Optimal ansatz parameter.
    pub theta: f64,
    /// Energy at the optimum (ideal simulation).
    pub energy: f64,
}

/// Minimizes the ansatz energy over θ with Nelder–Mead (the classical
/// outer loop runs on the ideal simulator, as when benchmark circuits are
/// prepared at known-good parameters).
pub fn solve(hamiltonian: &PauliSum) -> VqeResult {
    let opts = NelderMeadOptions {
        max_evals: 400,
        initial_step: 0.3,
        ..Default::default()
    };
    let mut best: Option<VqeResult> = None;
    for start in [-1.0, -0.3, 0.1, 0.5, 1.2] {
        let r = nelder_mead(|x| energy(hamiltonian, x[0]), &[start], &opts);
        if best.as_ref().is_none_or(|b| r.fx < b.energy) {
            best = Some(VqeResult {
                theta: r.x[0],
                energy: r.fx,
            });
        }
    }
    best.unwrap()
}

/// The benchmark circuits of a solved VQE instance: one circuit per
/// Hamiltonian term (ansatz + measurement basis change), as executed on
/// hardware. Identity terms need no circuit.
pub fn measurement_circuits(hamiltonian: &PauliSum, theta: f64) -> Vec<(PauliString, Circuit)> {
    hamiltonian
        .terms()
        .iter()
        .filter(|t| !t.support().is_empty())
        .map(|t| {
            let mut c = ucc_ansatz(theta);
            t.append_measurement_basis(&mut c);
            (t.clone(), c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules;

    #[test]
    fn ansatz_at_zero_is_reference_state() {
        let psi = ucc_ansatz(0.0).simulate();
        let p = psi.probabilities();
        assert!((p[1] - 1.0).abs() < 1e-10, "|01⟩ reference, p = {p:?}");
    }

    #[test]
    fn vqe_reaches_h2_ground_state() {
        let h = molecules::h2().hamiltonian;
        let exact = h.ground_energy();
        let r = solve(&h);
        assert!(
            (r.energy - exact).abs() < 1e-6,
            "VQE {} vs exact {exact}",
            r.energy
        );
    }

    #[test]
    fn vqe_reaches_lih_ground_state() {
        let h = molecules::lih().hamiltonian;
        let exact = h.ground_energy();
        let r = solve(&h);
        assert!((r.energy - exact).abs() < 1e-6);
    }

    #[test]
    fn energy_curve_is_smooth_and_has_minimum() {
        let h = molecules::h2().hamiltonian;
        let r = solve(&h);
        // Energy rises on either side of the optimum.
        assert!(energy(&h, r.theta + 0.3) > r.energy);
        assert!(energy(&h, r.theta - 0.3) > r.energy);
    }

    #[test]
    fn measurement_circuits_cover_non_identity_terms() {
        let h = molecules::h2().hamiltonian;
        let circuits = measurement_circuits(&h, 0.2);
        assert_eq!(circuits.len(), 5); // ZI, IZ, ZZ, XX, YY
                                       // Reconstruct the energy from the circuits' ideal distributions.
        let id_term: f64 = h
            .terms()
            .iter()
            .filter(|t| t.support().is_empty())
            .map(|t| t.coeff)
            .sum();
        let mut total = id_term;
        for (term, c) in &circuits {
            total += term.expectation_from_distribution(&c.output_distribution());
        }
        assert!((total - energy(&h, 0.2)).abs() < 1e-9);
    }
}
