//! QAOA for MAXCUT on line graphs — the paper's N-qubit QAOA benchmarks.
//!
//! The cost Hamiltonian for MAXCUT on edges E is
//! `C = Σ_(i,j)∈E (1 − Z_i Z_j)/2`; the depth-p QAOA circuit alternates
//! `exp(−iγC)` (a chain of ZZ interactions — textbook CNOT·Rz·CNOT blocks
//! in user code) with the mixer `exp(−iβ Σ X)`.

use quant_circuit::Circuit;
use quant_math::{nelder_mead, NelderMeadOptions};
use quant_sim::StateVector;

/// A MAXCUT instance on a line graph `0—1—…—(n−1)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineGraph {
    /// Number of vertices (qubits).
    pub n: usize,
}

impl LineGraph {
    /// Creates an `n`-vertex line graph.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least one edge");
        LineGraph { n }
    }

    /// The edges `(i, i+1)`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        (0..self.n as u32 - 1).map(|i| (i, i + 1)).collect()
    }

    /// Cut value of a bitstring (little-endian basis index).
    pub fn cut_value(&self, bits: usize) -> usize {
        self.edges()
            .iter()
            .filter(|&&(a, b)| ((bits >> a) ^ (bits >> b)) & 1 == 1)
            .count()
    }

    /// The maximum cut (`n − 1` for a line: alternate the partition).
    pub fn max_cut(&self) -> usize {
        self.n - 1
    }

    /// The depth-p QAOA circuit, written the "textbook" way: each cost
    /// edge is CNOT·Rz·CNOT (which the paper's ABGD pass re-detects as a
    /// ZZ interaction).
    pub fn qaoa_circuit(&self, params: &[(f64, f64)]) -> Circuit {
        let mut c = Circuit::new(self.n as u32);
        for q in 0..self.n as u32 {
            c.h(q);
        }
        for &(gamma, beta) in params {
            for (a, b) in self.edges() {
                // exp(−iγ(1−Z_a Z_b)/2) ≅ ZZ(−γ) up to phase.
                c.cnot(a, b).rz(b, -gamma).cnot(a, b);
            }
            for q in 0..self.n as u32 {
                c.rx(q, 2.0 * beta);
            }
        }
        c
    }

    /// Expected cut value of a distribution over bitstrings.
    pub fn expected_cut(&self, probs: &[f64]) -> f64 {
        probs
            .iter()
            .enumerate()
            .map(|(bits, &p)| p * self.cut_value(bits) as f64)
            .sum()
    }

    /// Ideal expected cut at the given parameters.
    pub fn ideal_expected_cut(&self, params: &[(f64, f64)]) -> f64 {
        let psi: StateVector = self.qaoa_circuit(params).simulate();
        self.expected_cut(&psi.probabilities())
    }

    /// Optimizes depth-1 parameters `(γ, β)` on the ideal simulator.
    pub fn solve_p1(&self) -> ((f64, f64), f64) {
        let opts = NelderMeadOptions {
            max_evals: 600,
            initial_step: 0.4,
            ..Default::default()
        };
        let mut best: Option<((f64, f64), f64)> = None;
        for start in [(0.4, 0.3), (0.8, 0.6), (1.2, 0.2), (0.3, 0.9)] {
            let r = nelder_mead(
                |x| -self.ideal_expected_cut(&[(x[0], x[1])]),
                &[start.0, start.1],
                &opts,
            );
            let cut = -r.fx;
            if best.as_ref().is_none_or(|b| cut > b.1) {
                best = Some(((r.x[0], r.x[1]), cut));
            }
        }
        best.unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_values_on_line4() {
        let g = LineGraph::new(4);
        // 0101 (little-endian index 0b1010 = 10? bits: q0=0,q1=1,q2=0,q3=1
        // → index 0b1010 = 10): alternating → full cut 3.
        assert_eq!(g.cut_value(0b1010), 3);
        assert_eq!(g.cut_value(0b0101), 3);
        assert_eq!(g.cut_value(0), 0);
        assert_eq!(g.cut_value(0b1111), 0);
        assert_eq!(g.cut_value(0b0011), 1);
        assert_eq!(g.max_cut(), 3);
    }

    #[test]
    fn qaoa_beats_random_guessing() {
        let g = LineGraph::new(4);
        // Random guessing: each edge cut with probability ½ → expected 1.5.
        let ((gamma, beta), cut) = g.solve_p1();
        assert!(
            cut > 2.2,
            "p=1 QAOA should clearly beat random: cut = {cut} at ({gamma},{beta})"
        );
        assert!(cut < g.max_cut() as f64 + 1e-9);
    }

    #[test]
    fn qaoa_circuit_structure() {
        let g = LineGraph::new(5);
        let c = g.qaoa_circuit(&[(0.5, 0.4)]);
        assert_eq!(c.count_gate("cx"), 8); // 4 edges × 2 CNOTs
        assert_eq!(c.count_gate("h"), 5);
        assert_eq!(c.count_gate("rx"), 5);
    }

    #[test]
    fn uniform_superposition_gives_half_edges() {
        let g = LineGraph::new(5);
        let cut = g.ideal_expected_cut(&[(0.0, 0.0)]);
        assert!((cut - 2.0).abs() < 1e-9, "H-only state cuts E/2: {cut}");
    }

    #[test]
    fn expected_cut_of_point_mass() {
        let g = LineGraph::new(3);
        let mut probs = vec![0.0; 8];
        probs[0b010] = 1.0; // q1 different from q0, q2 → cut 2
        assert!((g.expected_cut(&probs) - 2.0).abs() < 1e-12);
    }
}
