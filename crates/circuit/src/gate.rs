//! The gate set.
//!
//! [`Gate`] spans three layers of the paper's Table 1:
//!
//! * **assembly-level** gates programmers write (X, H, CNOT, Rz…),
//! * **standard basis gates** hardware calibrates (U3, CNOT), and
//! * **augmented basis gates** the paper's compiler adds (`DirectX`,
//!   `DirectRx(θ)`, `Cr(θ)`, `SqrtISwap`), which map one-to-one onto pulse
//!   primitives.
//!
//! Every gate knows its exact unitary; the distinction between the layers
//! lives in the compiler's basis-set configuration, not the type.

use quant_math::CMat;
use quant_sim::gates as g;
use std::fmt;

/// A quantum gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S.
    S,
    /// S†.
    Sdg,
    /// T gate.
    T,
    /// T†.
    Tdg,
    /// Rotation about X by radians.
    Rx(f64),
    /// Rotation about Y by radians.
    Ry(f64),
    /// Rotation about Z by radians (virtual-Z at the pulse level).
    Rz(f64),
    /// Generic single-qubit gate U3(θ, φ, λ).
    U3(f64, f64, f64),
    /// Augmented basis gate: single-pulse X via the calibrated Rx(180°)
    /// pulse (paper §4.1).
    DirectX,
    /// Augmented basis gate: single-pulse Rx(θ) via amplitude scaling
    /// (paper §4.2).
    DirectRx(f64),
    /// CNOT, first operand is the control.
    Cnot,
    /// Open-controlled NOT: flips target when control is |0⟩ (paper §5.2).
    OpenCnot,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// iSWAP.
    ISwap,
    /// √iSWAP — the "half gate" of Table 2.
    SqrtISwap,
    /// bSWAP (two-photon gate).
    BSwap,
    /// MAP (microwave-activated conditional phase).
    Map,
    /// Augmented basis gate: parametrized cross-resonance CR(θ) =
    /// exp(-iθ/2·Z⊗X), first operand is the Z (control) qubit (paper §6).
    Cr(f64),
    /// ZZ interaction: exp(-iθ/2·Z⊗Z) — the dominant near-term two-qubit
    /// operation.
    Zz(f64),
    /// Fermionic-simulation gate fSim(θ, φ).
    FSim(f64, f64),
    /// Qutrit subspace gate: X on the |1⟩↔|2⟩ transition (pulse-only).
    QutritX12,
    /// Qutrit subspace gate: X on the |0⟩↔|2⟩ two-photon transition
    /// (pulse-only).
    QutritX02,
    /// A single-wire barrier: an identity that no transpiler pass may
    /// merge, cancel or commute across (used by RB-style experiments to
    /// keep deliberately redundant gates intact).
    Barrier,
}

impl Gate {
    /// Number of operands.
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::U3(..)
            | Gate::DirectX
            | Gate::DirectRx(_)
            | Gate::QutritX12
            | Gate::QutritX02
            | Gate::Barrier => 1,
            _ => 2,
        }
    }

    /// Lower-case mnemonic, matching OpenQASM / cmd_def names where one
    /// exists.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U3(..) => "u3",
            Gate::DirectX => "direct_x",
            Gate::DirectRx(_) => "direct_rx",
            Gate::Cnot => "cx",
            Gate::OpenCnot => "open_cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::ISwap => "iswap",
            Gate::SqrtISwap => "sqrt_iswap",
            Gate::BSwap => "bswap",
            Gate::Map => "map",
            Gate::Cr(_) => "cr",
            Gate::Zz(_) => "zz",
            Gate::FSim(..) => "fsim",
            Gate::QutritX12 => "qutrit_x12",
            Gate::QutritX02 => "qutrit_x02",
            Gate::Barrier => "barrier",
        }
    }

    /// The gate's unitary in the computational basis. Qutrit gates return
    /// 3×3 matrices; everything else is 2×2 or 4×4 with the first operand
    /// as the least-significant index digit.
    pub fn matrix(&self) -> CMat {
        match *self {
            Gate::I => g::id2(),
            Gate::X | Gate::DirectX => g::x(),
            Gate::Y => g::y(),
            Gate::Z => g::z(),
            Gate::H => g::h(),
            Gate::S => g::s(),
            Gate::Sdg => g::sdg(),
            Gate::T => g::t(),
            Gate::Tdg => g::t().dagger(),
            Gate::Rx(t) | Gate::DirectRx(t) => g::rx(t),
            Gate::Ry(t) => g::ry(t),
            Gate::Rz(t) => g::rz(t),
            Gate::U3(t, p, l) => g::u3(t, p, l),
            Gate::Cnot => g::cnot(),
            Gate::OpenCnot => g::open_cnot(),
            Gate::Cz => g::cz(),
            Gate::Swap => g::swap(),
            Gate::ISwap => g::iswap(),
            Gate::SqrtISwap => g::sqrt_iswap(),
            Gate::BSwap => g::bswap(),
            Gate::Map => g::map_gate(),
            Gate::Cr(t) => g::cr(t),
            Gate::Zz(t) => g::zz(t),
            Gate::FSim(t, p) => g::fsim(t, p),
            Gate::QutritX12 => g::qutrit_x12(),
            Gate::QutritX02 => g::qutrit_x02(),
            Gate::Barrier => g::id2(),
        }
    }

    /// The inverse gate, kept within the gate set where possible.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::DirectRx(t) => Gate::DirectRx(-t),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::Cr(t) => Gate::Cr(-t),
            Gate::Zz(t) => Gate::Zz(-t),
            Gate::FSim(t, p) => Gate::FSim(-t, -p),
            Gate::ISwap | Gate::SqrtISwap | Gate::BSwap | Gate::QutritX02 | Gate::QutritX12 => {
                // No in-set inverse; callers needing exact inverses of these
                // should use `matrix().dagger()` via a U3/KAK resynthesis.
                // For the self-inverse qutrit X gates, the gate itself.
                match *self {
                    Gate::QutritX02 => Gate::QutritX02,
                    Gate::QutritX12 => Gate::QutritX12,
                    Gate::ISwap => Gate::ISwap, // caller must add Z⊗Z correction
                    Gate::SqrtISwap => Gate::SqrtISwap,
                    Gate::BSwap => Gate::BSwap,
                    _ => unreachable!(),
                }
            }
            other => other, // self-inverse: I, X, Y, Z, H, CNOT, CZ, SWAP, …
        }
    }

    /// Whether this gate is diagonal in the computational basis (commutes
    /// with Z-basis structure) — used by the commutativity-detection pass.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Cz
                | Gate::Zz(_)
        )
    }

    /// Whether the gate carries continuous parameters.
    pub fn is_parametrized(&self) -> bool {
        matches!(
            self,
            Gate::Rx(_)
                | Gate::Ry(_)
                | Gate::Rz(_)
                | Gate::U3(..)
                | Gate::DirectRx(_)
                | Gate::Cr(_)
                | Gate::Zz(_)
                | Gate::FSim(..)
        )
    }

    /// Whether the gate belongs to the paper's augmented basis set.
    pub fn is_augmented(&self) -> bool {
        matches!(
            self,
            Gate::DirectX | Gate::DirectRx(_) | Gate::Cr(_) | Gate::SqrtISwap
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Rx(t) => write!(f, "rx({t:.4})"),
            Gate::Ry(t) => write!(f, "ry({t:.4})"),
            Gate::Rz(t) => write!(f, "rz({t:.4})"),
            Gate::DirectRx(t) => write!(f, "direct_rx({t:.4})"),
            Gate::U3(t, p, l) => write!(f, "u3({t:.4},{p:.4},{l:.4})"),
            Gate::Cr(t) => write!(f, "cr({t:.4})"),
            Gate::Zz(t) => write!(f, "zz({t:.4})"),
            Gate::FSim(t, p) => write!(f, "fsim({t:.4},{p:.4})"),
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::CMat;

    #[test]
    fn arity_consistency() {
        assert_eq!(Gate::X.arity(), 1);
        assert_eq!(Gate::U3(0.1, 0.2, 0.3).arity(), 1);
        assert_eq!(Gate::Cnot.arity(), 2);
        assert_eq!(Gate::Cr(0.5).arity(), 2);
        assert_eq!(Gate::QutritX12.arity(), 1);
    }

    #[test]
    fn matrices_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::H,
            Gate::T,
            Gate::Rx(0.3),
            Gate::U3(1.0, 2.0, 3.0),
            Gate::DirectX,
            Gate::DirectRx(0.9),
            Gate::Cnot,
            Gate::OpenCnot,
            Gate::Cr(1.2),
            Gate::Zz(0.4),
            Gate::FSim(0.5, 0.6),
            Gate::SqrtISwap,
            Gate::QutritX02,
        ];
        for gate in gates {
            assert!(gate.matrix().is_unitary(1e-10), "{gate} not unitary");
        }
    }

    #[test]
    fn inverse_gates_compose_to_identity() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Rz(-1.1),
            Gate::U3(0.5, 1.5, 2.5),
            Gate::Cnot,
            Gate::Cz,
            Gate::Cr(0.8),
            Gate::Zz(0.9),
        ];
        for gate in gates {
            let m = gate.matrix();
            let inv = gate.inverse().matrix();
            let prod = &m * &inv;
            assert!(
                prod.phase_invariant_diff(&CMat::identity(m.rows())) < 1e-10,
                "{gate} inverse wrong"
            );
        }
    }

    #[test]
    fn direct_gates_match_standard_unitaries() {
        assert!(Gate::DirectX.matrix().max_abs_diff(&Gate::X.matrix()) < 1e-12);
        assert!(
            Gate::DirectRx(0.33)
                .matrix()
                .max_abs_diff(&Gate::Rx(0.33).matrix())
                < 1e-12
        );
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(0.5).is_diagonal());
        assert!(Gate::Zz(0.5).is_diagonal());
        assert!(Gate::Cz.is_diagonal());
        assert!(!Gate::Rx(0.5).is_diagonal());
        assert!(!Gate::Cnot.is_diagonal());
    }

    #[test]
    fn augmented_classification() {
        assert!(Gate::DirectX.is_augmented());
        assert!(Gate::Cr(0.2).is_augmented());
        assert!(!Gate::Cnot.is_augmented());
        assert!(!Gate::X.is_augmented());
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.5000)");
        assert_eq!(Gate::Cnot.to_string(), "cx");
    }
}
