//! Gate-level circuit IR: the "assembly" and "basis gates" stages.
//!
//! * [`Gate`] — the full gate set: textbook assembly gates, standard basis
//!   gates (U3/CNOT), the paper's augmented basis gates (DirectX,
//!   DirectRx(θ), CR(θ), √iSWAP), and qutrit subspace gates.
//! * [`Circuit`] — ordered gate lists with a builder API, simulation and
//!   unitary extraction.
//! * [`CircuitDag`] — wire-dependency DAG with commutation analysis, the
//!   substrate for the compiler's transpiler passes.
//!
//! # Example
//!
//! ```
//! use quant_circuit::Circuit;
//!
//! let mut qaoa_edge = Circuit::new(2);
//! // A textbook ZZ interaction, as a programmer would write it:
//! qaoa_edge.cnot(0, 1).rz(1, 0.8).cnot(0, 1);
//! // ...is exactly the zz(0.8) primitive the compiler will detect:
//! let mut direct = Circuit::new(2);
//! direct.zz(0, 1, 0.8);
//! assert!(qaoa_edge.unitary().phase_invariant_diff(&direct.unitary()) < 1e-10);
//! ```

#![warn(missing_docs)]

mod circuit;
mod dag;
mod gate;
pub mod qasm;

pub use circuit::{Circuit, Operation};
pub use dag::{matrices_commute, operations_commute, CircuitDag, NodeId};
pub use gate::Gate;
