//! Quantum circuits: ordered gate lists with a builder API.

use crate::gate::Gate;
use quant_math::CMat;
use quant_sim::{KernelScratch, StateVector};
use std::fmt;

/// One gate application.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; length equals `gate.arity()`.
    pub qubits: Vec<u32>,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q[{q}]")?;
        }
        Ok(())
    }
}

/// A gate-level quantum circuit (the paper's "assembly" stage).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: u32,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, out-of-range or duplicate qubits.
    pub fn push(&mut self, gate: Gate, qubits: &[u32]) -> &mut Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "{gate} expects {} operand(s), got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(&q), "duplicate operand qubit {q}");
        }
        self.ops.push(Operation {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    // Builder conveniences for the common gates.

    /// X gate.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X, &[q])
    }

    /// Y gate.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Y, &[q])
    }

    /// Z gate.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z, &[q])
    }

    /// Hadamard gate.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H, &[q])
    }

    /// Rx rotation.
    pub fn rx(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }

    /// Ry rotation.
    pub fn ry(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }

    /// Rz rotation.
    pub fn rz(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }

    /// CNOT with `control → target`.
    pub fn cnot(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Cnot, &[control, target])
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Cz, &[a, b])
    }

    /// ZZ interaction by angle θ.
    pub fn zz(&mut self, a: u32, b: u32, theta: f64) -> &mut Self {
        self.push(Gate::Zz(theta), &[a, b])
    }

    /// Appends all operations of `other` (qubit indices unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `other` touches qubits outside this circuit.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.num_qubits <= self.num_qubits, "circuit too wide");
        for op in &other.ops {
            self.push(op.gate, &op.qubits);
        }
        self
    }

    /// The adjoint circuit: inverse gates in reverse order.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.num_qubits);
        for op in self.ops.iter().rev() {
            inv.push(op.gate.inverse(), &op.qubits);
        }
        inv
    }

    /// Counts operations by gate name.
    pub fn count_gate(&self, name: &str) -> usize {
        self.ops.iter().filter(|op| op.gate.name() == name).count()
    }

    /// Counts two-qubit operations — the paper's Table 2 cost unit.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.arity() == 2).count()
    }

    /// Circuit depth: longest path in qubit-dependency order.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        for op in &self.ops {
            let l = op
                .qubits
                .iter()
                .map(|&q| level[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in &op.qubits {
                level[q as usize] = l;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Applies the circuit to a state vector in place.
    ///
    /// # Panics
    ///
    /// Panics when the register is narrower than the circuit or contains
    /// non-qubit subsystems while the circuit has qubit gates.
    pub fn apply_to(&self, state: &mut StateVector) {
        assert!(
            state.num_subsystems() >= self.num_qubits as usize,
            "register narrower than circuit"
        );
        for op in &self.ops {
            let targets: Vec<usize> = op.qubits.iter().map(|&q| q as usize).collect();
            state.apply_unitary(&op.gate.matrix(), &targets);
        }
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state.
    pub fn simulate(&self) -> StateVector {
        let mut psi = StateVector::zero_qubits(self.num_qubits as usize);
        self.apply_to(&mut psi);
        psi
    }

    /// The circuit's full unitary matrix (dimension `2^n`); practical for
    /// small `n`.
    pub fn unitary(&self) -> CMat {
        let dims = vec![2usize; self.num_qubits as usize];
        let mut u = CMat::identity(1 << self.num_qubits);
        let mut scratch = KernelScratch::new();
        for op in &self.ops {
            let targets: Vec<usize> = op.qubits.iter().map(|&q| q as usize).collect();
            scratch.apply_left(&mut u, &op.gate.matrix(), &targets, &dims);
        }
        u
    }

    /// Ideal output distribution over basis states from `|0…0⟩`.
    pub fn output_distribution(&self) -> Vec<f64> {
        self.simulate().probabilities()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits) {{", self.num_qubits)?;
        for op in &self.ops {
            writeln!(f, "  {op};")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_sim::gates as g;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2).rz(2, 0.4).zz(0, 2, 0.7);
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_count(), 3);
        assert_eq!(c.count_gate("cx"), 2);
        // h → cnot01 → cnot12 → rz(2) → zz(0,2): the zz waits on the rz.
        assert_eq!(c.depth(), 5);
    }

    #[test]
    fn ghz_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let p = c.output_distribution();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[7] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn unitary_of_bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let u = c.unitary();
        // Column 0 = (|00⟩ + |11⟩)/√2.
        assert!((u[(0, 0)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((u[(3, 0)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn inverse_restores_identity() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.3).cnot(0, 1).ry(1, -0.8).zz(0, 1, 0.55);
        let mut full = c.clone();
        full.extend(&c.inverse());
        let u = full.unitary();
        assert!(u.phase_invariant_diff(&CMat::identity(4)) < 1e-9);
    }

    #[test]
    fn apply_matches_unitary() {
        let mut c = Circuit::new(2);
        c.h(1).cnot(1, 0).rx(0, 0.9);
        let psi = c.simulate();
        let u = c.unitary();
        let from_unitary = u.mul_vec(&{
            let mut v = vec![quant_math::C64::ZERO; 4];
            v[0] = quant_math::C64::ONE;
            v
        });
        for (a, b) in psi.amplitudes().iter().zip(&from_unitary) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn zz_via_textbook_decomposition() {
        // zz(θ) == cnot, rz(target), cnot.
        let theta = 1.234;
        let mut a = Circuit::new(2);
        a.zz(0, 1, theta);
        let mut b = Circuit::new(2);
        b.cnot(0, 1).rz(1, theta).cnot(0, 1);
        assert!(a.unitary().phase_invariant_diff(&b.unitary()) < 1e-10);
        let _ = g::zz(theta);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubit() {
        let mut c = Circuit::new(1);
        c.x(1);
    }

    #[test]
    #[should_panic(expected = "expects 2 operand")]
    fn rejects_arity_mismatch() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot, &[0]);
    }

    #[test]
    fn display_lists_operations() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let text = c.to_string();
        assert!(text.contains("h q[0]"));
        assert!(text.contains("cx q[0], q[1]"));
    }
}
