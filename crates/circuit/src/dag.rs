//! DAG representation of circuits.
//!
//! The paper's transpiler passes (§3.3) traverse a DAG of operations whose
//! edges are qubit-wire dependencies, pattern-matching templates like the
//! ZZ-interaction and hoisting gates past false dependencies detected by
//! commutation analysis. This module provides the data structure plus the
//! numeric commutation predicate; the passes themselves live in
//! `pulse-compiler`.

use crate::circuit::{Circuit, Operation};
use quant_math::CMat;
use quant_sim::embed;
use std::collections::BTreeMap;

/// Node identifier within a [`CircuitDag`].
pub type NodeId = usize;

/// A DAG over a circuit's operations.
///
/// Node `i` corresponds to the i-th surviving operation; removed nodes stay
/// allocated but inert. Edges are implicit in the per-qubit wire orderings.
#[derive(Clone, Debug)]
pub struct CircuitDag {
    num_qubits: u32,
    nodes: Vec<Option<Operation>>,
    /// For each qubit, the ordered list of live node ids on that wire.
    wires: BTreeMap<u32, Vec<NodeId>>,
}

impl CircuitDag {
    /// Builds the DAG from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut dag = CircuitDag {
            num_qubits: circuit.num_qubits(),
            nodes: Vec::with_capacity(circuit.len()),
            wires: BTreeMap::new(),
        };
        for op in circuit.ops() {
            dag.push(op.clone());
        }
        dag
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Appends an operation as a new node at the end of its wires.
    pub fn push(&mut self, op: Operation) -> NodeId {
        let id = self.nodes.len();
        for &q in &op.qubits {
            self.wires.entry(q).or_default().push(id);
        }
        self.nodes.push(Some(op));
        id
    }

    /// The operation at a node, if it is still live.
    pub fn op(&self, id: NodeId) -> Option<&Operation> {
        self.nodes.get(id).and_then(|n| n.as_ref())
    }

    /// Live node ids in topological order derived from the wire orderings
    /// (Kahn's algorithm, smallest-id-first for determinism).
    pub fn topological(&self) -> Vec<NodeId> {
        use std::collections::BTreeSet;
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut edges: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for wire in self.wires.values() {
            for pair in wire.windows(2) {
                edges[pair[0]].push(pair[1]);
                indegree[pair[1]] += 1;
            }
        }
        let mut ready: BTreeSet<NodeId> = (0..n)
            .filter(|&i| self.nodes[i].is_some() && indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(&id) = ready.iter().next() {
            ready.remove(&id);
            order.push(id);
            for &next in &edges[id] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    ready.insert(next);
                }
            }
        }
        order
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Whether no live nodes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes a node from the DAG.
    pub fn remove(&mut self, id: NodeId) {
        if let Some(op) = self.nodes[id].take() {
            for &q in &op.qubits {
                if let Some(wire) = self.wires.get_mut(&q) {
                    wire.retain(|&n| n != id);
                }
            }
        }
    }

    /// Replaces a node's operation in place (same qubits required).
    ///
    /// # Panics
    ///
    /// Panics if the node is dead or the qubit sets differ.
    pub fn replace(&mut self, id: NodeId, op: Operation) {
        let old = self.nodes[id].as_ref().expect("replace on dead node");
        assert_eq!(old.qubits, op.qubits, "replace must preserve operands");
        self.nodes[id] = Some(op);
    }

    /// The next live node after `id` on wire `q`, if any.
    pub fn successor_on_wire(&self, id: NodeId, q: u32) -> Option<NodeId> {
        let wire = self.wires.get(&q)?;
        let pos = wire.iter().position(|&n| n == id)?;
        wire.get(pos + 1).copied()
    }

    /// The previous live node before `id` on wire `q`, if any.
    pub fn predecessor_on_wire(&self, id: NodeId, q: u32) -> Option<NodeId> {
        let wire = self.wires.get(&q)?;
        let pos = wire.iter().position(|&n| n == id)?;
        pos.checked_sub(1).map(|p| wire[p])
    }

    /// All live nodes on a wire in order.
    pub fn wire(&self, q: u32) -> &[NodeId] {
        self.wires.get(&q).map(|w| w.as_slice()).unwrap_or(&[])
    }

    /// Converts back to a circuit in topological order.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        // `topological` only yields live ids (wires are purged on remove),
        // so the filter is a no-op that keeps this path panic-free.
        for id in self.topological() {
            if let Some(op) = self.op(id) {
                c.push(op.gate, &op.qubits);
            }
        }
        c
    }

    /// Swaps the order of two *adjacent* commuting nodes on every wire they
    /// share. Returns false (and changes nothing) if they don't commute or
    /// are not adjacent on some shared wire.
    pub fn try_transpose(&mut self, first: NodeId, second: NodeId) -> bool {
        let (Some(a), Some(b)) = (self.op(first).cloned(), self.op(second).cloned()) else {
            return false;
        };
        let shared: Vec<u32> = a
            .qubits
            .iter()
            .copied()
            .filter(|q| b.qubits.contains(q))
            .collect();
        if shared.is_empty() {
            return true; // disjoint ops: order is irrelevant
        }
        for &q in &shared {
            if self.successor_on_wire(first, q) != Some(second) {
                return false;
            }
        }
        if !operations_commute(&a, &b) {
            return false;
        }
        // Locate `first` on every shared wire before mutating any of them,
        // so a failed lookup (impossible after the adjacency check above,
        // but cheap to guard) leaves the DAG untouched.
        let mut swaps: Vec<(u32, usize)> = Vec::with_capacity(shared.len());
        for &q in &shared {
            let Some(pos) = self
                .wires
                .get(&q)
                .and_then(|w| w.iter().position(|&n| n == first))
            else {
                return false;
            };
            swaps.push((q, pos));
        }
        for (q, i) in swaps {
            if let Some(wire) = self.wires.get_mut(&q) {
                wire.swap(i, i + 1);
            }
        }
        // Node ids no longer reflect program order on those wires, but
        // `topological` derives order from wires only when converting; keep
        // a canonical order by rebuilding indices lazily in to_circuit.
        true
    }
}

/// Numerically tests whether two operations commute, by comparing `AB` and
/// `BA` on the joint qubit space (≤ 3 qubits in practice).
pub fn operations_commute(a: &Operation, b: &Operation) -> bool {
    let mut union: Vec<u32> = a.qubits.clone();
    for &q in &b.qubits {
        if !union.contains(&q) {
            union.push(q);
        }
    }
    if union.len() == a.qubits.len() + b.qubits.len() {
        return true; // disjoint supports always commute
    }
    union.sort_unstable();
    let dims = vec![2usize; union.len()];
    let pos = |q: u32| union.iter().position(|&u| u == q).unwrap();
    let ta: Vec<usize> = a.qubits.iter().map(|&q| pos(q)).collect();
    let tb: Vec<usize> = b.qubits.iter().map(|&q| pos(q)).collect();
    let ma = embed(&a.gate.matrix(), &ta, &dims);
    let mb = embed(&b.gate.matrix(), &tb, &dims);
    let ab = &ma * &mb;
    let ba = &mb * &ma;
    ab.max_abs_diff(&ba) < 1e-9
}

/// Numerically tests whether an operation commutes with a concrete matrix
/// on the same qubit tuple.
pub fn matrices_commute(a: &CMat, b: &CMat) -> bool {
    (&(a * b) - &(b * a)).frobenius_norm() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn op(gate: Gate, qubits: &[u32]) -> Operation {
        Operation {
            gate,
            qubits: qubits.to_vec(),
        }
    }

    #[test]
    fn round_trip_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, 0.5).cnot(1, 2);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.to_circuit(), c);
    }

    #[test]
    fn wire_structure() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).x(1);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.wire(0), &[0, 1]);
        assert_eq!(dag.wire(1), &[1, 2]);
        assert_eq!(dag.successor_on_wire(0, 0), Some(1));
        assert_eq!(dag.predecessor_on_wire(2, 1), Some(1));
        assert_eq!(dag.successor_on_wire(2, 1), None);
    }

    #[test]
    fn remove_rewires() {
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1).x(0);
        let mut dag = CircuitDag::from_circuit(&c);
        dag.remove(1);
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.successor_on_wire(0, 0), Some(2));
        let back = dag.to_circuit();
        assert_eq!(back.len(), 2);
        assert_eq!(back.count_gate("x"), 2);
    }

    #[test]
    fn commutation_disjoint_supports() {
        assert!(operations_commute(&op(Gate::X, &[0]), &op(Gate::H, &[1])));
    }

    #[test]
    fn commutation_z_family() {
        // Rz commutes with the control of a CNOT.
        assert!(operations_commute(
            &op(Gate::Rz(0.7), &[0]),
            &op(Gate::Cnot, &[0, 1])
        ));
        // X commutes with the *target* of a CNOT.
        assert!(operations_commute(
            &op(Gate::X, &[1]),
            &op(Gate::Cnot, &[0, 1])
        ));
        // ...but not with the control.
        assert!(!operations_commute(
            &op(Gate::X, &[0]),
            &op(Gate::Cnot, &[0, 1])
        ));
        // Rz on target does NOT commute with CNOT.
        assert!(!operations_commute(
            &op(Gate::Rz(0.7), &[1]),
            &op(Gate::Cnot, &[0, 1])
        ));
    }

    #[test]
    fn commutation_two_qubit_pairs() {
        // ZZ interactions on overlapping pairs commute (diagonal).
        assert!(operations_commute(
            &op(Gate::Zz(0.3), &[0, 1]),
            &op(Gate::Zz(0.9), &[1, 2])
        ));
        // CNOTs sharing a control commute.
        assert!(operations_commute(
            &op(Gate::Cnot, &[0, 1]),
            &op(Gate::Cnot, &[0, 2])
        ));
        // CNOTs chained control→target do not.
        assert!(!operations_commute(
            &op(Gate::Cnot, &[0, 1]),
            &op(Gate::Cnot, &[1, 2])
        ));
    }

    #[test]
    fn transpose_commuting_neighbors() {
        // x(1); cnot(0,1) — X on target commutes with CNOT.
        let mut c = Circuit::new(2);
        c.x(1).cnot(0, 1);
        let mut dag = CircuitDag::from_circuit(&c);
        assert!(dag.try_transpose(0, 1));
        let out = dag.to_circuit();
        assert_eq!(out.ops()[0].gate, Gate::Cnot);
        assert_eq!(out.ops()[1].gate, Gate::X);
        // Unitary is preserved.
        assert!(out.unitary().max_abs_diff(&c.unitary()) < 1e-9);
    }

    #[test]
    fn transpose_refuses_noncommuting() {
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1);
        let mut dag = CircuitDag::from_circuit(&c);
        assert!(!dag.try_transpose(0, 1));
        assert_eq!(dag.to_circuit(), c);
    }

    #[test]
    fn replace_preserves_wiring() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.5).cnot(0, 1);
        let mut dag = CircuitDag::from_circuit(&c);
        dag.replace(0, op(Gate::Rz(1.0), &[0]));
        let out = dag.to_circuit();
        assert_eq!(out.ops()[0].gate, Gate::Rz(1.0));
    }
}
