//! A small OpenQASM 2.0 dialect: parser and printer.
//!
//! The paper's Table 1 places OpenQASM at the assembly stage; this module
//! lets programs enter and leave the compiler as text. Supported subset:
//! one quantum register, the standard single- and two-qubit gates,
//! parameter expressions over literals and `pi` with `*`, `/` and unary
//! minus, `barrier`, and `//` comments. `OPENQASM`/`include` headers are
//! accepted and ignored.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError {
        line,
        message: message.into(),
    }
}

/// Parses a program in the supported OpenQASM subset.
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name = String::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let (name, size) = parse_reg(rest, line_no)?;
                if circuit.is_some() {
                    return Err(err(line_no, "only one quantum register is supported"));
                }
                reg_name = name;
                circuit = Some(Circuit::new(size));
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("measure") {
                // Classical registers and measurement are accepted and
                // ignored: this IR measures every qubit at the end.
                continue;
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| err(line_no, "gate before qreg declaration"))?;
            parse_gate_statement(c, &reg_name, stmt, line_no)?;
        }
    }
    circuit.ok_or_else(|| err(0, "no qreg declaration found"))
}

fn parse_reg(rest: &str, line: usize) -> Result<(String, u32), QasmError> {
    // name[size]
    let open = rest.find('[').ok_or_else(|| err(line, "expected `[` in qreg"))?;
    let close = rest.find(']').ok_or_else(|| err(line, "expected `]` in qreg"))?;
    let name = rest[..open].trim().to_string();
    let size: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, "invalid register size"))?;
    if name.is_empty() || size == 0 {
        return Err(err(line, "invalid qreg declaration"));
    }
    Ok((name, size))
}

fn parse_gate_statement(
    c: &mut Circuit,
    reg: &str,
    stmt: &str,
    line: usize,
) -> Result<(), QasmError> {
    // gate-name [ (params) ] operand [, operand]
    let (head, operands_text) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') && !stmt.contains('(') => {
            (stmt[..pos].trim(), stmt[pos..].trim())
        }
        _ => {
            // Parameterized form: name(p1,p2) ops — split at the closing paren.
            if let Some(close) = stmt.find(')') {
                (stmt[..=close].trim(), stmt[close + 1..].trim())
            } else {
                let pos = stmt
                    .find(|ch: char| ch.is_whitespace())
                    .ok_or_else(|| err(line, "malformed statement"))?;
                (stmt[..pos].trim(), stmt[pos..].trim())
            }
        }
    };

    let (name, params) = if let Some(open) = head.find('(') {
        let close = head
            .rfind(')')
            .ok_or_else(|| err(line, "unterminated parameter list"))?;
        let name = head[..open].trim();
        let params: Vec<f64> = head[open + 1..close]
            .split(',')
            .map(|p| parse_expr(p.trim(), line))
            .collect::<Result<_, _>>()?;
        (name, params)
    } else {
        (head, Vec::new())
    };

    let qubits: Vec<u32> = operands_text
        .split(',')
        .map(|op| parse_operand(op.trim(), reg, c.num_qubits(), line))
        .collect::<Result<_, _>>()?;

    let p = |i: usize| -> Result<f64, QasmError> {
        params
            .get(i)
            .copied()
            .ok_or_else(|| err(line, format!("`{name}` missing parameter {i}")))
    };
    let gate = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "rx" => Gate::Rx(p(0)?),
        "ry" => Gate::Ry(p(0)?),
        "rz" | "u1" => Gate::Rz(p(0)?),
        "u3" => Gate::U3(p(0)?, p(1)?, p(2)?),
        "cx" | "CX" => Gate::Cnot,
        "cz" => Gate::Cz,
        "swap" => Gate::Swap,
        "iswap" => Gate::ISwap,
        "rzz" | "zz" => Gate::Zz(p(0)?),
        "barrier" => {
            // Barrier on each listed qubit.
            for &q in &qubits {
                c.push(Gate::Barrier, &[q]);
            }
            return Ok(());
        }
        other => return Err(err(line, format!("unsupported gate `{other}`"))),
    };
    if qubits.len() != gate.arity() {
        return Err(err(
            line,
            format!(
                "`{name}` expects {} operand(s), got {}",
                gate.arity(),
                qubits.len()
            ),
        ));
    }
    c.push(gate, &qubits);
    Ok(())
}

fn parse_operand(op: &str, reg: &str, n: u32, line: usize) -> Result<u32, QasmError> {
    let open = op
        .find('[')
        .ok_or_else(|| err(line, format!("expected indexed operand, got `{op}`")))?;
    let close = op
        .find(']')
        .ok_or_else(|| err(line, "unterminated operand index"))?;
    let name = op[..open].trim();
    if name != reg {
        return Err(err(line, format!("unknown register `{name}`")));
    }
    let q: u32 = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, "invalid qubit index"))?;
    if q >= n {
        return Err(err(line, format!("qubit index {q} out of range (size {n})")));
    }
    Ok(q)
}

/// Parses a parameter expression: products/quotients of signed literals and
/// `pi` (e.g. `pi/2`, `-3*pi/4`, `0.25`).
fn parse_expr(text: &str, line: usize) -> Result<f64, QasmError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(line, "empty parameter expression"));
    }
    // Tokenize into factors around * and /.
    let mut value = 1.0_f64;
    let mut negate = false;
    let mut rest = text;
    if let Some(stripped) = rest.strip_prefix('-') {
        negate = true;
        rest = stripped.trim_start();
    } else if let Some(stripped) = rest.strip_prefix('+') {
        rest = stripped.trim_start();
    }
    let mut op = '*';
    for token in tokenize_factors(rest) {
        let token = token.trim();
        match token {
            "*" | "/" => op = token.chars().next().unwrap(),
            _ => {
                let v = if token == "pi" {
                    std::f64::consts::PI
                } else {
                    token
                        .parse::<f64>()
                        .map_err(|_| err(line, format!("invalid number `{token}`")))?
                };
                match op {
                    '*' => value *= v,
                    '/' => value /= v,
                    _ => unreachable!(),
                }
            }
        }
    }
    Ok(if negate { -value } else { value })
}

fn tokenize_factors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch == '*' || ch == '/' {
            if !cur.trim().is_empty() {
                out.push(cur.trim().to_string());
            }
            out.push(ch.to_string());
            cur.clear();
        } else {
            cur.push(ch);
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Prints a circuit in the supported dialect.
pub fn print(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for op in circuit.ops() {
        let operands: Vec<String> = op.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let operands = operands.join(", ");
        let stmt = match op.gate {
            Gate::Rx(t) => format!("rx({t}) {operands}"),
            Gate::Ry(t) => format!("ry({t}) {operands}"),
            Gate::Rz(t) => format!("rz({t}) {operands}"),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) {operands}"),
            Gate::Zz(t) => format!("rzz({t}) {operands}"),
            Gate::Cnot => format!("cx {operands}"),
            ref g => format!("{} {operands}", g.name()),
        };
        out.push_str(&stmt);
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bell_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0], q[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 2);
        let p = c.output_distribution();
        assert!((p[0] - 0.5).abs() < 1e-10 && (p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn parse_parameter_expressions() {
        let src = "qreg q[1]; rx(pi/2) q[0]; rz(-3*pi/4) q[0]; ry(0.25) q[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.ops()[0].gate, Gate::Rx(std::f64::consts::FRAC_PI_2));
        assert_eq!(
            c.ops()[1].gate,
            Gate::Rz(-3.0 * std::f64::consts::FRAC_PI_4)
        );
        assert_eq!(c.ops()[2].gate, Gate::Ry(0.25));
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let src = "// header\nqreg q[1];\n\nx q[0]; // flip\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parse_u3_and_rzz() {
        let src = "qreg q[2]; u3(pi/2, 0, pi) q[0]; rzz(0.8) q[0], q[1];";
        let c = parse(src).unwrap();
        assert!(matches!(c.ops()[0].gate, Gate::U3(..)));
        assert_eq!(c.ops()[1].gate, Gate::Zz(0.8));
    }

    #[test]
    fn round_trip_through_printer() {
        let src = "qreg q[3]; h q[0]; cx q[0], q[1]; rzz(0.7) q[1], q[2]; rx(1.25) q[2]; barrier q[0];";
        let c = parse(src).unwrap();
        let printed = print(&c);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(c, reparsed);
        assert!(
            c.unitary().phase_invariant_diff(&reparsed.unitary()) < 1e-12
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("qreg q[2];\nfrobnicate q[0];").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse("qreg q[1];\nx q[3];").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse("x q[0];").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let e = parse("qreg q[2]; cx q[0];").unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn measure_and_creg_ignored() {
        let src = "qreg q[1]; creg c[1]; x q[0]; measure q[0] -> c[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }
}
