//! A small OpenQASM 2.0 dialect: parser and printer.
//!
//! The paper's Table 1 places OpenQASM at the assembly stage; this module
//! lets programs enter and leave the compiler as text. Supported subset:
//! one quantum register, the standard single- and two-qubit gates,
//! parameter expressions over literals and `pi` with `*`, `/` and unary
//! minus, `barrier`, and `//` comments. `include` headers are accepted
//! and ignored; `OPENQASM` headers are validated — versions 2.x and 3.x
//! pass, anything else is a typed [`QasmError`] (the header is optional,
//! as in the dialect's own history of headerless fragments).

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt;

/// A parse error with its 1-based line and column. Parsing untrusted
/// input never panics: every malformed program — including oversized
/// registers, non-finite parameter arithmetic and duplicate operands —
/// comes back as a value, so a service can answer with a 4xx-style
/// rejection instead of dying.
#[derive(Clone, Debug, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column of the statement the error is in (`0` for
    /// whole-program errors like a missing `qreg`).
    pub column: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, col {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for QasmError {}

/// Largest accepted `qreg` size. Far above what the simulators can take,
/// but low enough that a hostile declaration cannot make downstream
/// consumers size anything astronomical (ideal distributions are `O(2ⁿ)`).
pub const MAX_QREG_QUBITS: u32 = 64;

/// A statement's source position: 1-based line, 1-based byte column.
#[derive(Clone, Copy)]
struct Pos {
    line: usize,
    column: usize,
}

fn err(pos: Pos, message: impl Into<String>) -> QasmError {
    QasmError {
        line: pos.line,
        column: pos.column,
        message: message.into(),
    }
}

/// Parses a program in the supported OpenQASM subset.
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name = String::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim_end();
        // Column of a statement = its byte offset within the raw line + 1.
        // `split(';')` and `trim` hand back subslices of `raw`, so the
        // offset is pointer arithmetic on the same allocation.
        let col_of = |stmt: &str| stmt.as_ptr() as usize - raw.as_ptr() as usize + 1;
        if line.trim().is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let pos = Pos {
                line: line_no,
                column: col_of(stmt),
            };
            if let Some(rest) = stmt.strip_prefix("OPENQASM") {
                check_version_header(rest, pos)?;
                continue;
            }
            if stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let (name, size) = parse_reg(rest, pos)?;
                if circuit.is_some() {
                    return Err(err(pos, "only one quantum register is supported"));
                }
                reg_name = name;
                circuit = Some(Circuit::new(size));
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("measure") {
                // Classical registers and measurement are accepted and
                // ignored: this IR measures every qubit at the end.
                continue;
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| err(pos, "gate before qreg declaration"))?;
            parse_gate_statement(c, &reg_name, stmt, pos)?;
        }
    }
    circuit.ok_or_else(|| err(Pos { line: 0, column: 0 }, "no qreg declaration found"))
}

/// Validates the text after the `OPENQASM` keyword: whitespace, then a
/// version whose major is `2` or `3` with an optional all-digit minor
/// (`2`, `2.0`, `3.1`, …). Anything else — a glued suffix (`OPENQASMX`),
/// a missing version, `1.0`, `2.q` — is a typed error pointing at the
/// header, so bad headers fail loudly instead of being skipped.
fn check_version_header(rest: &str, pos: Pos) -> Result<(), QasmError> {
    let version = rest.trim();
    if !rest.starts_with(|ch: char| ch.is_whitespace()) || version.is_empty() {
        return Err(err(
            pos,
            "malformed OPENQASM header: expected a version, e.g. `OPENQASM 2.0;`",
        ));
    }
    let (major, minor) = match version.split_once('.') {
        Some((maj, min)) => (maj, Some(min)),
        None => (version, None),
    };
    let minor_ok = minor.is_none_or(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_digit()));
    if !matches!(major, "2" | "3") || !minor_ok {
        return Err(err(
            pos,
            format!("unsupported OPENQASM version `{version}` (2.x and 3.x are accepted)"),
        ));
    }
    Ok(())
}

fn parse_reg(rest: &str, pos: Pos) -> Result<(String, u32), QasmError> {
    // name[size]
    let open = rest
        .find('[')
        .ok_or_else(|| err(pos, "expected `[` in qreg"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| err(pos, "expected `]` in qreg"))?;
    if close < open {
        return Err(err(pos, "expected `[` before `]` in qreg"));
    }
    let name = rest[..open].trim().to_string();
    let size: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(pos, "invalid register size"))?;
    if name.is_empty() || size == 0 {
        return Err(err(pos, "invalid qreg declaration"));
    }
    if size > MAX_QREG_QUBITS {
        return Err(err(
            pos,
            format!("register size {size} exceeds the supported maximum {MAX_QREG_QUBITS}"),
        ));
    }
    Ok((name, size))
}

fn parse_gate_statement(c: &mut Circuit, reg: &str, stmt: &str, pos: Pos) -> Result<(), QasmError> {
    // gate-name [ (params) ] operand [, operand]
    let (head, operands_text) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(split) if !stmt[..split].contains('(') && !stmt.contains('(') => {
            (stmt[..split].trim(), stmt[split..].trim())
        }
        _ => {
            // Parameterized form: name(p1,p2) ops — split at the closing paren.
            if let Some(close) = stmt.find(')') {
                (stmt[..=close].trim(), stmt[close + 1..].trim())
            } else {
                let split = stmt
                    .find(|ch: char| ch.is_whitespace())
                    .ok_or_else(|| err(pos, "malformed statement"))?;
                (stmt[..split].trim(), stmt[split..].trim())
            }
        }
    };

    let (name, params) = if let Some(open) = head.find('(') {
        let close = head
            .rfind(')')
            .ok_or_else(|| err(pos, "unterminated parameter list"))?;
        if close < open {
            return Err(err(pos, "`)` before `(` in parameter list"));
        }
        let name = head[..open].trim();
        let params: Vec<f64> = head[open + 1..close]
            .split(',')
            .map(|p| parse_expr(p.trim(), pos))
            .collect::<Result<_, _>>()?;
        (name, params)
    } else {
        (head, Vec::new())
    };

    let qubits: Vec<u32> = operands_text
        .split(',')
        .map(|op| parse_operand(op.trim(), reg, c.num_qubits(), pos))
        .collect::<Result<_, _>>()?;
    for (i, &q) in qubits.iter().enumerate() {
        if qubits[..i].contains(&q) {
            // `Circuit::push` would assert on this; reject it as a parse
            // error so malformed input can never abort the process.
            return Err(err(pos, format!("duplicate operand qubit {q}")));
        }
    }

    let p = |i: usize| -> Result<f64, QasmError> {
        params
            .get(i)
            .copied()
            .ok_or_else(|| err(pos, format!("`{name}` missing parameter {i}")))
    };
    let gate = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "rx" => Gate::Rx(p(0)?),
        "ry" => Gate::Ry(p(0)?),
        "rz" | "u1" => Gate::Rz(p(0)?),
        "u3" => Gate::U3(p(0)?, p(1)?, p(2)?),
        "cx" | "CX" => Gate::Cnot,
        "cz" => Gate::Cz,
        "swap" => Gate::Swap,
        "iswap" => Gate::ISwap,
        "rzz" | "zz" => Gate::Zz(p(0)?),
        "barrier" => {
            // Barrier on each listed qubit.
            for &q in &qubits {
                c.push(Gate::Barrier, &[q]);
            }
            return Ok(());
        }
        other => return Err(err(pos, format!("unsupported gate `{other}`"))),
    };
    if qubits.len() != gate.arity() {
        return Err(err(
            pos,
            format!(
                "`{name}` expects {} operand(s), got {}",
                gate.arity(),
                qubits.len()
            ),
        ));
    }
    c.push(gate, &qubits);
    Ok(())
}

fn parse_operand(op: &str, reg: &str, n: u32, pos: Pos) -> Result<u32, QasmError> {
    let open = op
        .find('[')
        .ok_or_else(|| err(pos, format!("expected indexed operand, got `{op}`")))?;
    let close = op
        .find(']')
        .ok_or_else(|| err(pos, "unterminated operand index"))?;
    if close < open {
        return Err(err(pos, "expected `[` before `]` in operand"));
    }
    let name = op[..open].trim();
    if name != reg {
        return Err(err(pos, format!("unknown register `{name}`")));
    }
    let q: u32 = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(pos, "invalid qubit index"))?;
    if q >= n {
        return Err(err(pos, format!("qubit index {q} out of range (size {n})")));
    }
    Ok(q)
}

/// Parses a parameter expression: products/quotients of signed literals and
/// `pi` (e.g. `pi/2`, `-3*pi/4`, `0.25`).
fn parse_expr(text: &str, pos: Pos) -> Result<f64, QasmError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(pos, "empty parameter expression"));
    }
    // Tokenize into factors around * and /.
    let mut value = 1.0_f64;
    let mut negate = false;
    let mut rest = text;
    if let Some(stripped) = rest.strip_prefix('-') {
        negate = true;
        rest = stripped.trim_start();
    } else if let Some(stripped) = rest.strip_prefix('+') {
        rest = stripped.trim_start();
    }
    let mut divide = false;
    for token in tokenize_factors(rest) {
        let token = token.trim();
        match token {
            "*" => divide = false,
            "/" => divide = true,
            _ => {
                let v = if token == "pi" {
                    std::f64::consts::PI
                } else {
                    token
                        .parse::<f64>()
                        .map_err(|_| err(pos, format!("invalid number `{token}`")))?
                };
                if divide {
                    value /= v;
                } else {
                    value *= v;
                }
            }
        }
    }
    let value = if negate { -value } else { value };
    if !value.is_finite() {
        // Catches literal inf/NaN and overflow/division-by-zero results —
        // a non-finite angle would poison every pulse envelope downstream.
        return Err(err(
            pos,
            format!("parameter expression `{text}` is not finite"),
        ));
    }
    Ok(value)
}

fn tokenize_factors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch == '*' || ch == '/' {
            if !cur.trim().is_empty() {
                out.push(cur.trim().to_string());
            }
            out.push(ch.to_string());
            cur.clear();
        } else {
            cur.push(ch);
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Prints a circuit in the supported dialect.
pub fn print(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for op in circuit.ops() {
        let operands: Vec<String> = op.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let operands = operands.join(", ");
        let stmt = match op.gate {
            Gate::Rx(t) => format!("rx({t}) {operands}"),
            Gate::Ry(t) => format!("ry({t}) {operands}"),
            Gate::Rz(t) => format!("rz({t}) {operands}"),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) {operands}"),
            Gate::Zz(t) => format!("rzz({t}) {operands}"),
            Gate::Cnot => format!("cx {operands}"),
            ref g => format!("{} {operands}", g.name()),
        };
        out.push_str(&stmt);
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bell_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0], q[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 2);
        let p = c.output_distribution();
        assert!((p[0] - 0.5).abs() < 1e-10 && (p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn parse_parameter_expressions() {
        let src = "qreg q[1]; rx(pi/2) q[0]; rz(-3*pi/4) q[0]; ry(0.25) q[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.ops()[0].gate, Gate::Rx(std::f64::consts::FRAC_PI_2));
        assert_eq!(
            c.ops()[1].gate,
            Gate::Rz(-3.0 * std::f64::consts::FRAC_PI_4)
        );
        assert_eq!(c.ops()[2].gate, Gate::Ry(0.25));
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let src = "// header\nqreg q[1];\n\nx q[0]; // flip\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parse_u3_and_rzz() {
        let src = "qreg q[2]; u3(pi/2, 0, pi) q[0]; rzz(0.8) q[0], q[1];";
        let c = parse(src).unwrap();
        assert!(matches!(c.ops()[0].gate, Gate::U3(..)));
        assert_eq!(c.ops()[1].gate, Gate::Zz(0.8));
    }

    #[test]
    fn round_trip_through_printer() {
        let src =
            "qreg q[3]; h q[0]; cx q[0], q[1]; rzz(0.7) q[1], q[2]; rx(1.25) q[2]; barrier q[0];";
        let c = parse(src).unwrap();
        let printed = print(&c);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(c, reparsed);
        assert!(c.unitary().phase_invariant_diff(&reparsed.unitary()) < 1e-12);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse("qreg q[2];\nfrobnicate q[0];").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 1);
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.to_string(), format!("line 2, col 1: {}", e.message));

        // Second statement on the line → column points past the first.
        let e = parse("qreg q[2]; frobnicate q[0];").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 12);

        let e = parse("qreg q[1];\nx q[3];").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse("x q[0];").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let e = parse("qreg q[2]; cx q[0];").unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn hostile_input_is_rejected_not_fatal() {
        // Duplicate operands would trip `Circuit::push`'s assert.
        let e = parse("qreg q[2]; cx q[0], q[0];").unwrap_err();
        assert!(e.message.contains("duplicate operand"));

        // Oversized register declarations are capped.
        let e = parse("qreg q[4000000000];").unwrap_err();
        assert!(e.message.contains("maximum"), "{}", e.message);

        // Non-finite parameter arithmetic (division by zero, literal inf,
        // overflow) is a parse error, not a poisoned angle.
        for src in [
            "qreg q[1]; rx(1/0) q[0];",
            "qreg q[1]; rx(inf) q[0];",
            "qreg q[1]; rx(NaN) q[0];",
            "qreg q[1]; rx(1e308*1e308) q[0];",
        ] {
            let e = parse(src).unwrap_err();
            assert!(e.message.contains("not finite"), "{src}: {}", e.message);
        }

        // Reversed brackets and empty heads must error, not slice-panic.
        for src in [
            "qreg q]2[;",
            "qreg q[2]; x q]0[;",
            "qreg q[2]; rx)0.5( q[0];",
            "qreg q[2]; ( q[0];",
        ] {
            assert!(parse(src).is_err(), "accepted: {src}");
        }
    }

    #[test]
    fn version_headers_are_validated() {
        for src in [
            "OPENQASM 2.0;\nqreg q[1]; x q[0];",
            "OPENQASM 2;\nqreg q[1]; x q[0];",
            "OPENQASM 3.1;\nqreg q[1]; x q[0];",
            "qreg q[1]; x q[0];", // headerless fragments stay legal
        ] {
            assert!(parse(src).is_ok(), "rejected: {src}");
        }
        for (src, needle) in [
            ("OPENQASM 1.0;\nqreg q[1];", "unsupported OPENQASM version"),
            ("OPENQASM 2.q;\nqreg q[1];", "unsupported OPENQASM version"),
            ("OPENQASM 2.;\nqreg q[1];", "unsupported OPENQASM version"),
            ("OPENQASM;\nqreg q[1];", "malformed OPENQASM header"),
            ("OPENQASMX;\nqreg q[1];", "malformed OPENQASM header"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(e.message.contains(needle), "{src}: {}", e.message);
            assert_eq!((e.line, e.column), (1, 1), "{src}");
        }
    }

    #[test]
    fn measure_and_creg_ignored() {
        let src = "qreg q[1]; creg c[1]; x q[0]; measure q[0] -> c[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }
}
