//! Fixture-driven QASM parser conformance suite.
//!
//! `tests/fixtures/qasm/bad/*.qasm` are malformed programs annotated with
//! the exact error the parser must produce:
//!
//! ```text
//! // expect: line=4 col=1
//! // expect-contains: duplicate operand
//! ```
//!
//! `tests/fixtures/qasm/valid/*.qasm` must parse. The same fixture tree
//! is consumed by `crates/service/tests/qasm_conformance.rs`, which pins
//! the service frontend to byte-identical accept/reject behavior — add a
//! fixture here and both frontends are covered.

use quant_circuit::qasm;
use std::path::{Path, PathBuf};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/qasm")
        .join(kind)
}

/// Sorted fixture list, so failures reproduce in a stable order.
fn fixtures(kind: &str) -> Vec<PathBuf> {
    let dir = fixture_dir(kind);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "qasm"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures under {}", dir.display());
    paths
}

/// Parses `// expect:` / `// expect-contains:` directives.
fn directives(text: &str, path: &Path) -> ((usize, usize), Vec<String>) {
    let mut pos = None;
    let mut contains = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("// expect:") {
            let mut lineno = None;
            let mut col = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("line=") {
                    lineno = v.parse::<usize>().ok();
                }
                if let Some(v) = tok.strip_prefix("col=") {
                    col = v.parse::<usize>().ok();
                }
            }
            pos = Some((
                lineno.unwrap_or_else(|| panic!("{}: bad line= directive", path.display())),
                col.unwrap_or_else(|| panic!("{}: bad col= directive", path.display())),
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("// expect-contains:") {
            contains.push(rest.trim().to_string());
        }
    }
    (
        pos.unwrap_or_else(|| panic!("{}: missing `// expect:` directive", path.display())),
        contains,
    )
}

#[test]
fn bad_fixtures_fail_with_exact_positions() {
    for path in fixtures("bad") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let ((line, col), contains) = directives(&text, &path);
        let err = match qasm::parse(&text) {
            Ok(_) => panic!("{}: parsed successfully, expected an error", path.display()),
            Err(e) => e,
        };
        assert_eq!(
            (err.line, err.column),
            (line, col),
            "{}: wrong position ({})",
            path.display(),
            err
        );
        for needle in &contains {
            assert!(
                err.message.contains(needle),
                "{}: message `{}` missing `{needle}`",
                path.display(),
                err.message
            );
        }
    }
}

#[test]
fn valid_fixtures_parse() {
    for path in fixtures("valid") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let circuit =
            qasm::parse(&text).unwrap_or_else(|e| panic!("{}: rejected: {e}", path.display()));
        assert!(circuit.num_qubits() >= 1);
    }
}

#[test]
fn valid_fixtures_round_trip_through_the_printer() {
    for path in fixtures("valid") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let circuit = qasm::parse(&text).expect("valid fixture");
        let printed = qasm::print(&circuit);
        let reparsed = qasm::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: printer output rejected: {e}", path.display()));
        assert_eq!(circuit, reparsed, "{}", path.display());
    }
}
