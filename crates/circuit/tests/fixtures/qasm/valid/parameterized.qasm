OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
rx(pi/2) q[0];
rz(-3*pi/4) q[1];
u3(pi/2, 0, pi) q[2];
rzz(0.8) q[0], q[1];
ry(0.25) q[2];
