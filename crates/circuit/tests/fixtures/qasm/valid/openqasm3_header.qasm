OPENQASM 3;
qreg q[2];
h q[0];
cz q[0], q[1];
