qreg q[2];
h q[0];
cx q[0], q[1];
rz(pi/8) q[1];
