// expect: line=5 col=1
// expect-contains: unsupported gate `frobnicate`
OPENQASM 2.0;
qreg q[2];
frobnicate q[0];
