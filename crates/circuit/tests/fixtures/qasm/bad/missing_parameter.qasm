// expect: line=5 col=1
// expect-contains: missing parameter
OPENQASM 2.0;
qreg q[1];
u3(pi/2) q[0];
