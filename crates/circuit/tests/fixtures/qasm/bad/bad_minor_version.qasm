// expect: line=3 col=1
// expect-contains: unsupported OPENQASM version
OPENQASM 2.q;
qreg q[1];
