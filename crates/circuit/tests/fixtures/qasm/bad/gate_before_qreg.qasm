// expect: line=4 col=1
// expect-contains: gate before qreg
OPENQASM 2.0;
x q[0];
