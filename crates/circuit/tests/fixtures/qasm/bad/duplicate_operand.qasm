// expect: line=5 col=1
// expect-contains: duplicate operand
OPENQASM 2.0;
qreg q[2];
cx q[0], q[0];
