// expect: line=3 col=1
// expect-contains: unsupported OPENQASM version
OPENQASM 1.0;
qreg q[1];
x q[0];
