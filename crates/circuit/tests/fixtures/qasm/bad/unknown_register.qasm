// expect: line=5 col=1
// expect-contains: unknown register `r`
OPENQASM 2.0;
qreg q[2];
x r[0];
