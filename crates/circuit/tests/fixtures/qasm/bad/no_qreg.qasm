// expect: line=0 col=0
// expect-contains: no qreg declaration
OPENQASM 2.0;
