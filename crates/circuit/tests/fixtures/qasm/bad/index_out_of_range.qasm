// expect: line=5 col=1
// expect-contains: out of range
OPENQASM 2.0;
qreg q[2];
x q[5];
