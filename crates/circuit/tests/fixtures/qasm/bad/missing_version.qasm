// expect: line=3 col=1
// expect-contains: malformed OPENQASM header
OPENQASM;
qreg q[1];
