// expect: line=5 col=1
// expect-contains: expects 2 operand(s), got 1
OPENQASM 2.0;
qreg q[2];
cx q[0];
