// expect: line=4 col=1
// expect-contains: expected `[` before `]`
OPENQASM 2.0;
qreg q]2[;
