// expect: line=3 col=1
// expect-contains: malformed OPENQASM header
OPENQASMX;
qreg q[1];
