// expect: line=4 col=1
// expect-contains: exceeds the supported maximum
OPENQASM 2.0;
qreg q[4000000000];
