// expect: line=5 col=1
// expect-contains: not finite
OPENQASM 2.0;
qreg q[1];
rx(1/0) q[0];
