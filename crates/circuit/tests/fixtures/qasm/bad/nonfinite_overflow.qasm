// expect: line=5 col=1
// expect-contains: not finite
OPENQASM 2.0;
qreg q[1];
ry(1e308*1e308) q[0];
