// expect: line=5 col=1
// expect-contains: only one quantum register
OPENQASM 2.0;
qreg q[2];
qreg r[2];
