// expect: line=3 col=12
// expect-contains: unsupported gate
qreg q[2]; frobnicate q[0];
