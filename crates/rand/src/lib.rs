//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this local
//! path crate (named `rand`) provides exactly the surface the workspace
//! uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, float/integer
//! `gen`/`gen_range`, and a deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64, so nearby
//! seeds (e.g. `seed ^ shot_index` streams used by the parallel shot
//! engine) produce decorrelated streams. Streams differ numerically from
//! upstream `rand`'s ChaCha-based `StdRng`, but every consumer in this
//! workspace only requires determinism for a fixed seed, which this
//! implementation guarantees on every platform.

use std::ops::Range;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range requires start < end");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the (exclusive) end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end - self.start) as u64;
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let draw = rng.next_u64();
                    if draw < zone {
                        return self.start + (draw % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u64, u32, usize, i64, i32);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's standard RNG).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot emit
            // four zero words in a row, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
