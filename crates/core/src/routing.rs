//! Qubit routing: mapping circuits onto a device coupling map.
//!
//! The paper's compiler is a Qiskit fork and inherits its layout/routing
//! stages; our reproduction needs the same to target the 20-qubit
//! Almaden-like lattice (two-qubit gates only exist between coupled
//! pairs). This is a straightforward greedy router: walk the circuit, and
//! whenever a two-qubit gate spans non-adjacent physical qubits, insert
//! SWAPs along a BFS shortest path to bring them together, tracking the
//! evolving logical→physical layout.

use quant_circuit::{Circuit, Gate};
use std::collections::{BTreeSet, VecDeque};

/// An undirected device coupling map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    n: u32,
    edges: BTreeSet<(u32, u32)>,
}

impl CouplingMap {
    /// Builds a map from undirected edges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn new(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop edge");
            set.insert((a.min(b), a.max(b)));
        }
        CouplingMap { n, edges: set }
    }

    /// A linear chain `0—1—…—(n−1)`.
    pub fn linear(n: u32) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::new(n, &edges)
    }

    /// A rows×cols grid.
    pub fn grid(rows: u32, cols: u32) -> Self {
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::new(n, &edges)
    }

    /// An Almaden-like 20-qubit lattice: four rows of five with vertical
    /// couplers on alternating columns (the heavy-square family IBM's
    /// 20-qubit Penguin devices used; the exact published map differs in a
    /// couple of couplers but has the same connectivity character).
    pub fn almaden_twenty() -> Self {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for row in 0..4u32 {
            for col in 0..4u32 {
                edges.push((row * 5 + col, row * 5 + col + 1));
            }
        }
        // Vertical couplers: columns 0, 2, 4 between rows 0–1 and 2–3;
        // columns 1, 3 between rows 1–2.
        for &col in &[0u32, 2, 4] {
            edges.push((col, col + 5));
            edges.push((10 + col, 15 + col));
        }
        for &col in &[1u32, 3] {
            edges.push((5 + col, 10 + col));
        }
        CouplingMap::new(20, &edges)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// The undirected edge list.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether two physical qubits are coupled.
    pub fn adjacent(&self, a: u32, b: u32) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// BFS shortest path between two physical qubits (inclusive of both
    /// endpoints); `None` if disconnected.
    pub fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![u32::MAX; self.n as usize];
        let mut queue = VecDeque::from([from]);
        prev[from as usize] = from;
        while let Some(cur) = queue.pop_front() {
            for &(a, b) in &self.edges {
                let next = if a == cur {
                    b
                } else if b == cur {
                    a
                } else {
                    continue;
                };
                if prev[next as usize] == u32::MAX {
                    prev[next as usize] = cur;
                    if next == to {
                        let mut path = vec![to];
                        let mut node = to;
                        while node != from {
                            node = prev[node as usize];
                            path.push(node);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// A routed circuit plus its qubit bookkeeping.
#[derive(Clone, Debug)]
pub struct Routed {
    /// The physical circuit: every two-qubit gate acts on a coupled pair.
    pub circuit: Circuit,
    /// Final layout: `layout[logical] = physical`.
    pub final_layout: Vec<u32>,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
}

/// Errors from routing.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteError {
    /// The circuit has more qubits than the device.
    TooWide {
        /// Logical qubits required.
        logical: u32,
        /// Physical qubits available.
        physical: u32,
    },
    /// Two qubits have no connecting path.
    Disconnected(u32, u32),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::TooWide { logical, physical } => write!(
                f,
                "circuit needs {logical} qubits but the device has {physical}"
            ),
            RouteError::Disconnected(a, b) => {
                write!(f, "no coupling path between physical qubits {a} and {b}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Routes a logical circuit onto the coupling map with the trivial initial
/// layout (logical i → physical i) and greedy SWAP insertion.
pub fn route(circuit: &Circuit, map: &CouplingMap) -> Result<Routed, RouteError> {
    if circuit.num_qubits() > map.num_qubits() {
        return Err(RouteError::TooWide {
            logical: circuit.num_qubits(),
            physical: map.num_qubits(),
        });
    }
    let mut layout: Vec<u32> = (0..circuit.num_qubits()).collect();
    let mut out = Circuit::new(map.num_qubits());
    let mut swaps = 0usize;

    for op in circuit.ops() {
        match op.qubits.as_slice() {
            [q] => {
                out.push(op.gate, &[layout[*q as usize]]);
            }
            [a, b] => {
                let (la, lb) = (*a as usize, *b as usize);
                let (pa, pb) = (layout[la], layout[lb]);
                if !map.adjacent(pa, pb) {
                    let path = map.path(pa, pb).ok_or(RouteError::Disconnected(pa, pb))?;
                    // Walk `a` down the path until adjacent to b's position.
                    for window in path.windows(2) {
                        let (from, to) = (window[0], window[1]);
                        if map.adjacent(to, layout[lb]) || to == layout[lb] {
                            if to == layout[lb] {
                                // One hop short: stop before landing on b.
                                break;
                            }
                            out.push(Gate::Swap, &[from, to]);
                            swaps += 1;
                            swap_layout(&mut layout, from, to);
                            break;
                        }
                        out.push(Gate::Swap, &[from, to]);
                        swaps += 1;
                        swap_layout(&mut layout, from, to);
                    }
                }
                let (pa, pb) = (layout[la], layout[lb]);
                debug_assert!(map.adjacent(pa, pb), "routing failed to adjoin {pa},{pb}");
                out.push(op.gate, &[pa, pb]);
            }
            _ => unreachable!("gates have arity 1 or 2"),
        }
    }

    Ok(Routed {
        circuit: out,
        final_layout: layout,
        swaps_inserted: swaps,
    })
}

/// Updates the logical→physical layout after a physical SWAP.
fn swap_layout(layout: &mut [u32], pa: u32, pb: u32) {
    for slot in layout.iter_mut() {
        if *slot == pa {
            *slot = pb;
        } else if *slot == pb {
            *slot = pa;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Remaps a logical output distribution through the final layout so it
    /// can be compared with the routed circuit's physical distribution.
    fn remap_distribution(logical: &[f64], layout: &[u32], physical_qubits: u32) -> Vec<f64> {
        let mut out = vec![0.0; 1 << physical_qubits];
        for (idx, &p) in logical.iter().enumerate() {
            let mut phys_idx = 0usize;
            for (lq, &pq) in layout.iter().enumerate() {
                if (idx >> lq) & 1 == 1 {
                    phys_idx |= 1 << pq;
                }
            }
            out[phys_idx] += p;
        }
        out
    }

    fn assert_route_equivalent(circuit: &Circuit, map: &CouplingMap) {
        let routed = route(circuit, map).expect("routable");
        for op in routed.circuit.ops() {
            if op.qubits.len() == 2 {
                assert!(
                    map.adjacent(op.qubits[0], op.qubits[1]),
                    "unrouted 2q op {} on ({},{})",
                    op.gate,
                    op.qubits[0],
                    op.qubits[1]
                );
            }
        }
        let expect = remap_distribution(
            &circuit.output_distribution(),
            &routed.final_layout,
            map.num_qubits(),
        );
        let got = routed.circuit.output_distribution();
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "distribution mismatch at {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn adjacent_gates_untouched() {
        let map = CouplingMap::linear(3);
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let routed = route(&c, &map).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.final_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_cnot_gets_swapped_on_a_chain() {
        let map = CouplingMap::linear(4);
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 3);
        let routed = route(&c, &map).unwrap();
        assert!(routed.swaps_inserted >= 2);
        assert_route_equivalent(&c, &map);
    }

    #[test]
    fn ghz_on_grid() {
        let map = CouplingMap::grid(2, 3);
        let mut c = Circuit::new(6);
        c.h(0);
        for q in 0..5u32 {
            c.cnot(q, q + 1);
        }
        assert_route_equivalent(&c, &map);
    }

    #[test]
    fn random_style_circuit_on_almaden20() {
        let map = CouplingMap::almaden_twenty();
        assert_eq!(map.num_qubits(), 20);
        // A 8-qubit circuit with long-range interactions (fits the lattice
        // top rows; full 20-qubit state vectors are fine but slower).
        let mut c = Circuit::new(8);
        c.h(0);
        for (a, b) in [(0u32, 7u32), (2, 5), (7, 1), (3, 6), (4, 0)] {
            c.cnot(a, b);
            c.rz(b, 0.3);
        }
        assert_route_equivalent(&c, &map);
    }

    #[test]
    fn almaden_lattice_is_connected() {
        let map = CouplingMap::almaden_twenty();
        for q in 1..20u32 {
            assert!(map.path(0, q).is_some(), "qubit {q} unreachable");
        }
        // Spot-check distances: corner to corner takes several hops.
        let corner = map.path(0, 19).unwrap();
        assert!(corner.len() >= 6, "corner path {corner:?}");
    }

    #[test]
    fn too_wide_circuit_is_an_error() {
        let map = CouplingMap::linear(2);
        let c = Circuit::new(3);
        assert!(matches!(route(&c, &map), Err(RouteError::TooWide { .. })));
    }

    #[test]
    fn disconnected_pair_is_an_error() {
        let map = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        let mut c = Circuit::new(4);
        c.cnot(0, 3);
        assert!(matches!(route(&c, &map), Err(RouteError::Disconnected(..))));
    }

    #[test]
    fn layout_tracks_multiple_swaps() {
        let map = CouplingMap::linear(5);
        let mut c = Circuit::new(5);
        c.x(0).cnot(0, 4).cnot(0, 4).x(0);
        assert_route_equivalent(&c, &map);
    }
}
