//! Two-qubit local-equivalence analysis (KAK/Weyl-chamber machinery).
//!
//! Every two-qubit unitary factors as `K1 · A · K2` with `K` local and `A`
//! a canonical interaction (Khaneja–Glaser). Which `A` — the gate's
//! *local-equivalence class* — is captured by the Makhlin invariants
//! `(g1 ∈ ℂ, g2 ∈ ℝ)`, computed from the magic-basis form. The paper's
//! Table 2 groups native gates by exactly these classes: CNOT, CR(90°) and
//! MAP share CNOT's class; iSWAP and bSWAP share iSWAP's; √iSWAP is its
//! own "half-gate" class.
//!
//! We also expose the Shende–Bullock–Markov criterion for two-CNOT
//! synthesizability, which the decomposer uses to prune its search.

use quant_math::{eigenvalues, CMat, C64};

/// The magic (Bell) basis change `B`.
pub fn magic_basis() -> CMat {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_rows(&[
        &[C64::real(s), C64::ZERO, C64::ZERO, C64::imag(s)],
        &[C64::ZERO, C64::imag(s), C64::real(s), C64::ZERO],
        &[C64::ZERO, C64::imag(s), C64::real(-s), C64::ZERO],
        &[C64::real(s), C64::ZERO, C64::ZERO, C64::imag(-s)],
    ])
}

/// Normalizes a U(4) matrix to SU(4) by dividing out a fourth root of the
/// determinant.
pub fn to_su4(u: &CMat) -> CMat {
    assert_eq!(u.rows(), 4, "to_su4 expects a 4×4 unitary");
    let det = u.det();
    let phase = C64::cis(-det.arg() / 4.0);
    u.scale(phase)
}

/// The Makhlin invariants `(g1, g2)` of a two-qubit unitary.
///
/// `g1 = tr²(m)/(16·det U)` and `g2 = (tr²(m) − tr(m²))/(4·det U)` with
/// `m = Mᵀ M`, `M = B†UB`. Both are invariant under single-qubit rotations
/// on either side.
pub fn makhlin_invariants(u: &CMat) -> (C64, f64) {
    let su = to_su4(u);
    let b = magic_basis();
    let m_u = &(&b.dagger() * &su) * &b;
    let m = &m_u.transpose() * &m_u;
    let tr = m.trace();
    let tr2 = tr * tr;
    let tr_m2 = (&m * &m).trace();
    let g1 = tr2 * C64::real(1.0 / 16.0);
    let g2 = (tr2 - tr_m2) * C64::real(0.25);
    debug_assert!(
        g2.im.abs() < 1e-6,
        "g2 should be real for unitary input (got {g2})"
    );
    (g1, g2.re)
}

/// Whether two unitaries are locally equivalent (equal up to single-qubit
/// gates on either side).
pub fn locally_equivalent(u: &CMat, v: &CMat) -> bool {
    let (g1u, g2u) = makhlin_invariants(u);
    let (g1v, g2v) = makhlin_invariants(v);
    (g1u - g1v).abs() < 1e-8 && (g2u - g2v).abs() < 1e-8
}

/// Whether a unitary is local (a tensor product of single-qubit gates).
pub fn is_local(u: &CMat) -> bool {
    let (g1, g2) = makhlin_invariants(u);
    (g1 - C64::ONE).abs() < 1e-8 && (g2 - 3.0).abs() < 1e-8
}

/// Shende–Bullock–Markov: `U` is synthesizable with **two** CNOT-class
/// gates iff `tr(γ)` is real, where `γ = U·(Y⊗Y)·Uᵀ·(Y⊗Y)`.
pub fn two_cnot_synthesizable(u: &CMat) -> bool {
    let su = to_su4(u);
    let yy = {
        let y = quant_sim::gates::y();
        y.kron(&y)
    };
    let gamma = &(&su * &yy) * &(&su.transpose() * &yy);
    gamma.trace().im.abs() < 1e-8
}

/// Weyl-chamber interaction coordinates `(c1, c2, c3)` of a two-qubit
/// unitary, canonicalized so that `π/4 ≥ c1 ≥ c2 ≥ |c3|` and `c3 ≥ 0`
/// whenever `c1 < π/4`.
///
/// Computed from the angles of the magic-basis spectrum
/// `spec(MᵀM) = {e^{2i(±c1±c2±c3)}}` (even number of minus signs).
pub fn weyl_coordinates(u: &CMat) -> (f64, f64, f64) {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    let su = to_su4(u);
    let b = magic_basis();
    let m_u = &(&b.dagger() * &su) * &b;
    let m = &m_u.transpose() * &m_u;
    let evs = symmetric_unitary_eigenvalues(&m);
    // Halved angles θ_k with Σθ_k ≡ 0 (mod π).
    let mut thetas: Vec<f64> = evs.iter().map(|z| z.arg() / 2.0).collect();
    // Fix the branch so the sum is (close to) a multiple of π, then remove
    // the numerical residue by shifting one angle.
    let sum: f64 = thetas.iter().sum();
    let k = (sum / PI).round();
    thetas[0] -= sum - k * PI;
    // Candidate coordinates: c1 = (θa+θb)/?… Rather than solve the sign
    // assignment directly, exploit that {2c1, 2c2, 2c3} =
    // {θi+θj mod π adjustments}. A simpler robust route: the multiset
    // {|θ_k|} determines the coordinates after canonicalization, via
    //   c1 = (θ̂1 + θ̂2)/2, c2 = (θ̂1 + θ̂3)/2, c3 = (θ̂2 + θ̂3)/2,
    // where θ̂ are the three largest angles sorted descending after
    // folding into [−π/2, π/2].
    let fold = |t: f64| -> f64 {
        let mut x = (t + FRAC_PI_2).rem_euclid(PI) - FRAC_PI_2;
        if x <= -FRAC_PI_2 + 1e-12 {
            x += PI;
        }
        x
    };
    let mut th: Vec<f64> = thetas.iter().map(|&t| fold(t)).collect();
    th.sort_by(|a, b| b.total_cmp(a));
    let (t1, t2, t3) = (th[0], th[1], th[2]);
    let mut c1 = (t1 + t2) / 2.0;
    let mut c2 = (t1 + t3) / 2.0;
    let mut c3 = (t2 + t3) / 2.0;
    // Canonicalize into the Weyl chamber.
    let canon = |c: f64| -> f64 {
        let mut x = c.rem_euclid(FRAC_PI_2);
        if x > FRAC_PI_4 {
            x = FRAC_PI_2 - x;
        }
        x
    };
    c1 = canon(c1);
    c2 = canon(c2);
    c3 = canon(c3);
    let mut cs = [c1, c2, c3];
    cs.sort_by(|a, b| b.total_cmp(a));
    (cs[0], cs[1], cs[2])
}

/// Eigenvalues of a *symmetric unitary* matrix (`m = mᵀ`, `m†m = I`),
/// robust to degeneracies.
///
/// For such `m`, `Re(m)` and `Im(m)` are commuting real-symmetric matrices,
/// so a generic real combination `Re(m) + w·Im(m)` is Hermitian and shares
/// eigenvectors with `m`; Rayleigh quotients then recover the unit-modulus
/// eigenvalues exactly — unlike polynomial root finding, which loses
/// precision at repeated roots.
fn symmetric_unitary_eigenvalues(m: &CMat) -> Vec<C64> {
    debug_assert!(m.max_abs_diff(&m.transpose()) < 1e-6, "m must be symmetric");
    let n = m.rows();
    let re = CMat::from_fn(n, n, |r, c| C64::real(m[(r, c)].re));
    let im = CMat::from_fn(n, n, |r, c| C64::real(m[(r, c)].im));
    for w in [0.317_455_829, 0.730_241_812, 1.912_978_514] {
        let h = &re + &im.scale(C64::real(w));
        let eig = quant_math::eigh(&h);
        let mut out = Vec::with_capacity(n);
        let mut ok = true;
        for k in 0..n {
            let v: Vec<C64> = (0..n).map(|r| eig.vectors[(r, k)]).collect();
            let mv = m.mul_vec(&v);
            let lambda: C64 = v.iter().zip(&mv).map(|(a, b)| a.conj() * *b).sum();
            // Verify v is genuinely an eigenvector of m.
            let residual: f64 = mv
                .iter()
                .zip(&v)
                .map(|(a, b)| (*a - lambda * *b).norm_sqr())
                .sum::<f64>()
                .sqrt();
            if residual > 1e-7 {
                ok = false;
                break;
            }
            out.push(lambda);
        }
        if ok {
            return out;
        }
    }
    // Fall back to polynomial roots (non-degenerate spectra).
    eigenvalues(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_sim::gates as g;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn magic_basis_is_unitary() {
        assert!(magic_basis().is_unitary(1e-12));
    }

    #[test]
    fn invariants_of_identity_and_cnot() {
        let (g1, g2) = makhlin_invariants(&CMat::identity(4));
        assert!((g1 - C64::ONE).abs() < 1e-9);
        assert!((g2 - 3.0).abs() < 1e-9);
        let (g1, g2) = makhlin_invariants(&g::cnot());
        assert!(g1.abs() < 1e-9, "CNOT g1 = {g1}");
        assert!((g2 - 1.0).abs() < 1e-9, "CNOT g2 = {g2}");
    }

    #[test]
    fn invariants_are_local_invariant() {
        let local = g::u3(0.3, 1.0, -0.2).kron(&g::u3(1.1, -0.5, 0.9));
        let dressed = &(&local * &g::cnot()) * &local.dagger();
        assert!(locally_equivalent(&dressed, &g::cnot()));
    }

    #[test]
    fn gate_classes_match_table2_grouping() {
        // CNOT ~ CZ ~ CR(90°) ~ MAP.
        assert!(locally_equivalent(&g::cnot(), &g::cz()));
        assert!(locally_equivalent(&g::cnot(), &g::cr(FRAC_PI_2)));
        assert!(locally_equivalent(&g::cnot(), &g::map_gate()));
        // iSWAP ~ bSWAP, but not CNOT.
        assert!(locally_equivalent(&g::iswap(), &g::bswap()));
        assert!(!locally_equivalent(&g::iswap(), &g::cnot()));
        // √iSWAP is its own class.
        assert!(!locally_equivalent(&g::sqrt_iswap(), &g::cnot()));
        assert!(!locally_equivalent(&g::sqrt_iswap(), &g::iswap()));
        // ZZ(θ) ~ CR(θ).
        assert!(locally_equivalent(&g::zz(0.7), &g::cr(0.7)));
        // SWAP is its own class.
        assert!(!locally_equivalent(&g::swap(), &g::cnot()));
        assert!(!locally_equivalent(&g::swap(), &g::iswap()));
    }

    #[test]
    fn locality_detection() {
        assert!(is_local(&CMat::identity(4)));
        assert!(is_local(&g::h().kron(&g::t())));
        assert!(!is_local(&g::cnot()));
        assert!(!is_local(&g::zz(0.4)));
        // ZZ(2π) wraps back to local (global phase).
        assert!(is_local(&g::zz(2.0 * std::f64::consts::PI)));
    }

    #[test]
    fn two_cnot_criterion() {
        // ZZ(θ) needs exactly 2 CNOTs (criterion satisfied, not local,
        // not CNOT-class).
        assert!(two_cnot_synthesizable(&g::zz(0.8)));
        // CNOT itself trivially satisfies it.
        assert!(two_cnot_synthesizable(&g::cnot()));
        // SWAP requires 3.
        assert!(!two_cnot_synthesizable(&g::swap()));
        // The fermionic-simulation class generally needs 3.
        let fsim = g::fsim(0.5, 0.9);
        assert!(!two_cnot_synthesizable(&fsim));
    }

    #[test]
    fn weyl_coordinates_of_known_gates() {
        let (c1, c2, c3) = weyl_coordinates(&CMat::identity(4));
        assert!(c1 < 1e-6 && c2 < 1e-6 && c3 < 1e-6);

        let (c1, c2, c3) = weyl_coordinates(&g::cnot());
        assert!((c1 - FRAC_PI_4).abs() < 1e-6, "CNOT c1 = {c1}");
        assert!(c2.abs() < 1e-6 && c3.abs() < 1e-6);

        let (c1, c2, c3) = weyl_coordinates(&g::iswap());
        assert!((c1 - FRAC_PI_4).abs() < 1e-6, "iSWAP c = {c1},{c2},{c3}");
        assert!((c2 - FRAC_PI_4).abs() < 1e-6);
        assert!(c3.abs() < 1e-6);

        let (c1, c2, c3) = weyl_coordinates(&g::swap());
        assert!((c1 - FRAC_PI_4).abs() < 1e-6, "SWAP c = {c1},{c2},{c3}");
        assert!((c2 - FRAC_PI_4).abs() < 1e-6);
        assert!((c3 - FRAC_PI_4).abs() < 1e-6);

        let (c1, c2, c3) = weyl_coordinates(&g::sqrt_iswap());
        assert!((c1 - FRAC_PI_2 / 4.0).abs() < 1e-6, "√iSWAP c1 = {c1}");
        assert!((c2 - FRAC_PI_2 / 4.0).abs() < 1e-6);
        assert!(c3.abs() < 1e-6);
    }

    #[test]
    fn weyl_coordinates_invariant_under_locals() {
        let local = g::u3(0.4, 0.1, 0.9).kron(&g::u3(-0.3, 0.8, 0.2));
        let u = &local * &g::zz(0.83);
        let (a1, a2, a3) = weyl_coordinates(&u);
        let (b1, b2, b3) = weyl_coordinates(&g::zz(0.83));
        assert!((a1 - b1).abs() < 1e-6);
        assert!((a2 - b2).abs() < 1e-6);
        assert!((a3 - b3).abs() < 1e-6);
    }
}
