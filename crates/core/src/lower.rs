//! Lowering: basis-gate circuits → pulse programs.
//!
//! This is the paper's final compilation stage (Table 1, row 4). The
//! lowering pass owns the **virtual-Z frame** of every qubit: `Rz` gates
//! cost nothing — they advance the frame — and every emitted pulse is
//! rotated by the frame in effect when it plays (McKay et al.'s virtual-Z
//! scheme). Frames are *baked into the waveform samples* of single-qubit
//! pulses and prepended as `ShiftPhase`s to two-qubit blocks, so the
//! executor never needs cross-block frame state.
//!
//! With `PulseCancellation` enabled (the paper's Optimization 2), a
//! `DirectX` on a CNOT/CR control qubit immediately before the block is
//! absorbed into the block's leading echo X pulse.

use quant_circuit::{Circuit, Gate};
use quant_device::{Block, Calibration, DeviceModel, LoweredProgram};
use quant_math::C64;
use quant_pulse::{Channel, Instruction, Schedule, ScheduleFinding, Waveform};
use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Errors from lowering.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// A gate reached lowering that is not in a lowered basis set.
    UnsupportedGate(String),
    /// A two-qubit gate addressed a pair with no CR coupling.
    UncoupledPair(u32, u32),
    /// The lowered schedule failed static verification (`pulse::verify`).
    /// Carries every finding; the lowering that produced them is a
    /// compiler bug, not a user error.
    InvalidSchedule(Vec<ScheduleFinding>),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnsupportedGate(g) => {
                write!(
                    f,
                    "gate `{g}` cannot be lowered; translate to a basis set first"
                )
            }
            LowerError::UncoupledPair(a, b) => {
                write!(f, "qubits {a} and {b} are not coupled on this device")
            }
            LowerError::InvalidSchedule(findings) => {
                write!(
                    f,
                    "lowered schedule failed verification ({} finding(s)",
                    findings.len()
                )?;
                match findings.first() {
                    Some(first) => write!(f, "; first: {first})"),
                    None => write!(f, ")"),
                }
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Options controlling lowering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerOptions {
    /// Enable the cross-gate pulse cancellation peephole (Optimization 2).
    pub pulse_cancellation: bool,
}

/// The lowering context.
pub struct Lowering<'a> {
    device: &'a DeviceModel,
    calibration: &'a Calibration,
    options: LowerOptions,
}

impl<'a> Lowering<'a> {
    /// Creates a lowering context.
    pub fn new(
        device: &'a DeviceModel,
        calibration: &'a Calibration,
        options: LowerOptions,
    ) -> Self {
        Lowering {
            device,
            calibration,
            options,
        }
    }

    /// Lowers a basis-gate circuit into an executable pulse program.
    ///
    /// Accepted gates: `Rz`, `U3` (standard two-pulse form), `DirectX`,
    /// `DirectRx`, `Cnot`, `Cr`. Anything else is a [`LowerError`].
    pub fn lower(&self, circuit: &Circuit) -> Result<LoweredProgram, LowerError> {
        let n = circuit.num_qubits();
        let mut frames = vec![0.0_f64; n as usize];
        let mut blocks: Vec<Block> = Vec::new();

        let ops = circuit.ops();
        let mut i = 0usize;
        while i < ops.len() {
            let op = &ops[i];
            match op.gate {
                Gate::I | Gate::Barrier => {}
                Gate::Rz(lambda) => {
                    frames[op.qubits[0] as usize] += -lambda;
                }
                Gate::U3(theta, phi, lambda) => {
                    // Eq. 2 analog: U3 = Rz(φ+π)·Rx90·Rz(θ+π)·Rx90·Rz(λ).
                    let q = op.qubits[0];
                    let mut waveforms = Vec::with_capacity(2);
                    frames[q as usize] += -lambda;
                    self.emit_rx90(q, &mut frames, &mut waveforms);
                    frames[q as usize] += -(theta + PI);
                    self.emit_rx90(q, &mut frames, &mut waveforms);
                    frames[q as usize] += -(phi + PI);
                    blocks.push(Block::Gate1Q {
                        qubit: q,
                        waveforms,
                    });
                }
                Gate::DirectX => {
                    let q = op.qubits[0];
                    let cal = self.calibration.qubit(q);
                    let (a, c) = cal.rx180_phase;
                    let phase = frames[q as usize] + c;
                    let w = cal
                        .rx180_waveform(format!("x_d{q}"))
                        .scaled_complex(C64::cis(phase));
                    frames[q as usize] += a + c;
                    blocks.push(Block::Gate1Q {
                        qubit: q,
                        waveforms: vec![w],
                    });
                }
                Gate::DirectRx(theta) => {
                    let q = op.qubits[0];
                    let theta = normalize_angle(theta);
                    if theta.abs() < 1e-12 {
                        i += 1;
                        continue;
                    }
                    let cal = self.calibration.qubit(q);
                    let (a, c) = cal.direct_rx_phase(theta);
                    let phase = frames[q as usize] + c;
                    let w = cal
                        .direct_rx_waveform(theta, format!("rx({theta:.3})_d{q}"))
                        .scaled_complex(C64::cis(phase));
                    frames[q as usize] += a + c;
                    blocks.push(Block::Gate1Q {
                        qubit: q,
                        waveforms: vec![w],
                    });
                }
                Gate::Cnot | Gate::Cr(_) => {
                    let (control, target) = (op.qubits[0], op.qubits[1]);
                    // Optimization 2 peephole: was the previous block a
                    // lone DirectX on this control?
                    let cancel = self.options.pulse_cancellation
                        && matches!(op.gate, Gate::Cnot | Gate::Cr(_))
                        && pop_cancellable_x(&mut blocks, control);
                    let mut schedule = match op.gate {
                        Gate::Cnot => self.cnot_schedule(control, target, cancel)?,
                        Gate::Cr(theta) => {
                            let s = if cancel {
                                self.calibration.echoed_cr_schedule_cancelled(
                                    self.device,
                                    control,
                                    target,
                                    theta,
                                )
                            } else {
                                self.calibration.echoed_cr_schedule(
                                    self.device,
                                    control,
                                    target,
                                    theta,
                                )
                            };
                            s.ok_or(LowerError::UncoupledPair(control, target))?
                        }
                        _ => unreachable!(),
                    };
                    // Entry frames (before every t = 0 pulse), then harvest
                    // the block's net frame advance per drive channel: the
                    // prepended entry phase equals the old tracker value,
                    // so the net sum *is* the new tracker value.
                    //
                    // The *target's* frame must also rotate the CR control
                    // channel: the CR pulse drives at the target qubit's
                    // frequency, so its X axis lives in the target's frame
                    // (Qiskit shifts every channel in the qubit's channel
                    // group for exactly this reason).
                    let u_ch = self
                        .device
                        .control_channel(control, target)
                        .ok_or(LowerError::UncoupledPair(control, target))?;
                    // opclint: allow(float-literal-eq): exact sentinel — skip the frame change only when the accumulated phase is still the 0.0 it was initialized to
                    if frames[target as usize] != 0.0 {
                        schedule.prepend(Instruction::ShiftPhase {
                            phase: frames[target as usize],
                            channel: u_ch,
                        });
                    }
                    for &q in &[control, target] {
                        let phase = frames[q as usize];
                        // opclint: allow(float-literal-eq): exact sentinel — 0.0 means "no frame change accumulated", never a computed near-zero
                        if phase != 0.0 {
                            schedule.prepend(Instruction::ShiftPhase {
                                phase,
                                channel: Channel::Drive(q),
                            });
                        }
                    }
                    for &q in &[control, target] {
                        frames[q as usize] = net_phase(&schedule, Channel::Drive(q));
                    }
                    blocks.push(Block::Gate2Q {
                        control,
                        target,
                        schedule,
                    });
                }
                ref other => {
                    return Err(LowerError::UnsupportedGate(other.to_string()));
                }
            }
            i += 1;
        }

        // Rebuild the display schedule from the final block list (blocks
        // may have been popped by the cancellation peephole).
        let mut display = Schedule::new("program");
        for block in &blocks {
            match block {
                Block::Gate1Q { qubit, waveforms } => {
                    for w in waveforms {
                        display.append(Instruction::Play {
                            waveform: w.clone(),
                            channel: Channel::Drive(*qubit),
                        });
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    // Align after *all* channels associated with the pair,
                    // not just the ones the block plays on — a CR echo has
                    // no target-drive pulses, but the executor still
                    // synchronizes both qubits at the block boundary.
                    let mut barrier = schedule.channels();
                    barrier.push(Channel::Drive(*control));
                    barrier.push(Channel::Drive(*target));
                    let offset = barrier
                        .iter()
                        .map(|&ch| display.channel_duration(ch))
                        .max()
                        .unwrap_or(0);
                    display.insert_schedule(offset, schedule);
                    // Occupy both qubits' drive channels to the block end
                    // so later gates on either qubit cannot overlap it.
                    let end = offset + schedule.duration();
                    for &q in &[*control, *target] {
                        let busy = display.channel_duration(Channel::Drive(q));
                        if busy < end {
                            display.insert(
                                busy,
                                Instruction::Delay {
                                    duration: end - busy,
                                    channel: Channel::Drive(q),
                                },
                            );
                        }
                    }
                }
                Block::Idle { qubit, duration } => display.append(Instruction::Delay {
                    duration: *duration,
                    channel: Channel::Drive(*qubit),
                }),
            }
        }

        // Mandatory post-lowering pass: the schedule the compiler just
        // built must verify clean against the device it targets. Any
        // finding here is a compiler bug surfaced at compile time instead
        // of a corrupted simulation. `OPC_VERIFY=0` skips the pass (e.g.
        // to inspect a deliberately broken lowering).
        if quant_device::knobs::verify() {
            let findings = quant_pulse::verify(&display, &self.device.verify_spec());
            if !findings.is_empty() {
                return Err(LowerError::InvalidSchedule(findings));
            }
        }

        Ok(LoweredProgram {
            num_qubits: n,
            blocks,
            schedule: display,
        })
    }

    /// Emits one rx90 pulse at the current frame, updating the frame with
    /// the pulse's phase-correction wrapper.
    fn emit_rx90(&self, q: u32, frames: &mut [f64], out: &mut Vec<Waveform>) {
        let cal = self.calibration.qubit(q);
        let (a, c) = cal.rx90_phase;
        let phase = frames[q as usize] + c;
        out.push(
            cal.rx90_waveform(format!("rx90_d{q}"))
                .scaled_complex(C64::cis(phase)),
        );
        frames[q as usize] += a + c;
    }

    /// CNOT = Rz_c(90°)·Rx90_t·CR(−90°): the echoed block plus a target
    /// rx90 and a virtual Z on the control (already part of the cmd_def
    /// entry, which we rebuild here so the cancellation variant is
    /// available).
    fn cnot_schedule(
        &self,
        control: u32,
        target: u32,
        cancel_leading_x: bool,
    ) -> Result<Schedule, LowerError> {
        let mut s = if cancel_leading_x {
            self.calibration
                .echoed_cr_schedule_cancelled(self.device, control, target, -FRAC_PI_2)
        } else {
            self.calibration
                .echoed_cr_schedule(self.device, control, target, -FRAC_PI_2)
        }
        .ok_or(LowerError::UncoupledPair(control, target))?;
        let barrier = [
            Channel::Drive(control),
            Channel::Drive(target),
            self.device
                .control_channel(control, target)
                .ok_or(LowerError::UncoupledPair(control, target))?,
        ];
        self.calibration.qubit(target).append_rx90(
            &mut s,
            Channel::Drive(target),
            &barrier,
            &format!("rx90_d{target}"),
        );
        // Virtual Rz(90°) on the control.
        s.append(Instruction::ShiftPhase {
            phase: -FRAC_PI_2,
            channel: Channel::Drive(control),
        });
        Ok(s.named(format!("cx q{control},q{target}")))
    }
}

/// Reduces an angle to `(−π, π]`.
fn normalize_angle(theta: f64) -> f64 {
    let mut t = theta.rem_euclid(TAU);
    if t > PI {
        t -= TAU;
    }
    t
}

/// Sum of all `ShiftPhase` instructions on one channel of a schedule.
fn net_phase(schedule: &Schedule, channel: Channel) -> f64 {
    schedule
        .instructions()
        .iter()
        .filter_map(|ti| match &ti.instruction {
            Instruction::ShiftPhase { phase, channel: ch } if *ch == channel => Some(*phase),
            _ => None,
        })
        .sum()
}

/// If the last block is a single-waveform `Gate1Q` on `qubit` that is an
/// X-like pulse (the DirectX form), pop it and return true.
fn pop_cancellable_x(blocks: &mut Vec<Block>, qubit: u32) -> bool {
    let cancellable = matches!(
        blocks.last(),
        Some(Block::Gate1Q { qubit: q, waveforms })
            if *q == qubit
                && waveforms.len() == 1
                && waveforms[0].name().starts_with(&format!("x_d{qubit}"))
    );
    if cancellable {
        blocks.pop();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{to_basis, BasisKind};
    use quant_device::{calibrate, PulseExecutor};
    use quant_math::seeded;

    struct Ctx {
        device: DeviceModel,
        calibration: Calibration,
    }

    fn ctx(n: usize) -> Ctx {
        let device = DeviceModel::ideal(n);
        let mut rng = seeded(42);
        let calibration = calibrate(&device, &mut rng);
        Ctx {
            device,
            calibration,
        }
    }

    fn lower_and_run(
        ctx: &Ctx,
        circuit: &Circuit,
        kind: BasisKind,
        cancellation: bool,
    ) -> (Vec<f64>, LoweredProgram) {
        let basis = to_basis(circuit, kind);
        let lowering = Lowering::new(
            &ctx.device,
            &ctx.calibration,
            LowerOptions {
                pulse_cancellation: cancellation,
            },
        );
        let program = lowering.lower(&basis).expect("lowering failed");
        let exec = PulseExecutor::noiseless(&ctx.device);
        let mut rng = seeded(7);
        let out = exec.run(&program, &mut rng);
        (out.probabilities, program)
    }

    fn assert_distribution(ctx: &Ctx, circuit: &Circuit, kind: BasisKind, tol: f64) {
        let ideal = circuit.output_distribution();
        let (got, _) = lower_and_run(ctx, circuit, kind, kind == BasisKind::Augmented);
        for (i, (a, b)) in ideal.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() < tol,
                "{kind:?} outcome {i}: ideal {a:.4} vs pulse {b:.4}\n{circuit}"
            );
        }
    }

    #[test]
    fn lower_x_both_flows() {
        let c1 = ctx(1);
        let mut c = Circuit::new(1);
        c.x(0);
        assert_distribution(&c1, &c, BasisKind::Standard, 0.01);
        assert_distribution(&c1, &c, BasisKind::Augmented, 0.01);
    }

    #[test]
    fn direct_x_half_the_duration() {
        let c1 = ctx(1);
        let mut c = Circuit::new(1);
        c.x(0);
        let (_, std) = lower_and_run(&c1, &c, BasisKind::Standard, false);
        let (_, aug) = lower_and_run(&c1, &c, BasisKind::Augmented, false);
        // Fig. 4: standard X = 2 pulses, DirectX = 1 pulse, half duration.
        assert_eq!(std.pulse_count(), 2);
        assert_eq!(aug.pulse_count(), 1);
        assert_eq!(std.duration(), 2 * aug.duration());
    }

    #[test]
    fn lower_hadamard_superposition() {
        let c1 = ctx(1);
        let mut c = Circuit::new(1);
        c.h(0);
        assert_distribution(&c1, &c, BasisKind::Standard, 0.01);
        assert_distribution(&c1, &c, BasisKind::Augmented, 0.01);
    }

    #[test]
    fn lower_rotation_sweep() {
        let c1 = ctx(1);
        for k in 1..8 {
            let theta = k as f64 * 0.41;
            let mut c = Circuit::new(1);
            c.rx(0, theta).ry(0, -theta / 2.0).rz(0, 0.3).rx(0, 0.2);
            assert_distribution(&c1, &c, BasisKind::Standard, 0.01);
            assert_distribution(&c1, &c, BasisKind::Augmented, 0.01);
        }
    }

    #[test]
    fn virtual_z_frames_thread_through_pulses() {
        // Rz between rotations must change the outcome correctly.
        let c1 = ctx(1);
        let mut c = Circuit::new(1);
        c.rx(0, FRAC_PI_2).rz(0, FRAC_PI_2).rx(0, FRAC_PI_2);
        // This is Rx90·Rz90·Rx90: |0⟩ → superposition with p1 = 0.5.
        assert_distribution(&c1, &c, BasisKind::Standard, 0.01);
        assert_distribution(&c1, &c, BasisKind::Augmented, 0.01);
    }

    #[test]
    fn lower_bell_pair() {
        let c2 = ctx(2);
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        assert_distribution(&c2, &c, BasisKind::Standard, 0.03);
        assert_distribution(&c2, &c, BasisKind::Augmented, 0.03);
    }

    #[test]
    fn lower_zz_interaction_both_flows() {
        let c2 = ctx(2);
        for theta in [0.3, 0.9, FRAC_PI_2] {
            let mut c = Circuit::new(2);
            c.h(0).h(1).zz(0, 1, theta).h(0).h(1);
            // The standard flow uses two full CNOTs; each carries ~1–2 %
            // coherent error even on the drift-free device (as real CNOTs
            // do), so its tolerance is wider than the single-CR optimized
            // flow's.
            assert_distribution(&c2, &c, BasisKind::Standard, 0.07);
            assert_distribution(&c2, &c, BasisKind::Augmented, 0.035);
        }
    }

    #[test]
    fn optimized_zz_is_shorter() {
        // Optimization 3: ZZ via one stretched CR beats two CNOTs.
        let c2 = ctx(2);
        let mut c = Circuit::new(2);
        c.zz(0, 1, 0.6);
        let (_, std) = lower_and_run(&c2, &c, BasisKind::Standard, false);
        let (_, aug) = lower_and_run(&c2, &c, BasisKind::Augmented, false);
        assert!(
            aug.duration() * 3 < std.duration() * 2,
            "expected ≥1.5× speedup: std {} vs aug {}",
            std.duration(),
            aug.duration()
        );
    }

    #[test]
    fn open_cnot_cancellation_shortens_schedule() {
        // Fig. 8: open-CNOT with cancellation is ~24 % shorter.
        let c2 = ctx(2);
        let mut c = Circuit::new(2);
        c.push(Gate::OpenCnot, &[0, 1]);
        let basis = to_basis(&c, BasisKind::Augmented);
        let mk = |cancel: bool| {
            Lowering::new(
                &c2.device,
                &c2.calibration,
                LowerOptions {
                    pulse_cancellation: cancel,
                },
            )
            .lower(&basis)
            .unwrap()
        };
        let plain = mk(false);
        let cancelled = mk(true);
        assert!(
            cancelled.duration() < plain.duration(),
            "cancellation should shorten: {} vs {}",
            cancelled.duration(),
            plain.duration()
        );
        assert_eq!(cancelled.pulse_count(), plain.pulse_count() - 2);
        // And the distribution is still the open-CNOT's: |00⟩ → |10⟩…
        let exec = PulseExecutor::noiseless(&c2.device);
        let mut rng = seeded(3);
        let out = exec.run(&cancelled, &mut rng);
        // open-CNOT on |00⟩: control 0 is |0⟩ → target flips → index 2.
        assert!(out.probabilities[2] > 0.95, "p = {:?}", out.probabilities);
    }

    #[test]
    fn lowered_schedules_pass_static_verification() {
        // The mandatory post-lowering pass inside lower() would already
        // have failed the compile; pin the invariant explicitly so it
        // survives even with OPC_VERIFY=0 in the ambient environment.
        let c2 = ctx(2);
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.7).cnot(0, 1);
        let basis = crate::translate::to_basis(&c, crate::translate::BasisKind::Augmented);
        let lowering = Lowering::new(&c2.device, &c2.calibration, LowerOptions::default());
        let program = lowering.lower(&basis).unwrap();
        let findings = quant_pulse::verify(&program.schedule, &c2.device.verify_spec());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn invalid_schedule_error_reports_count_and_first_finding() {
        let mut s = Schedule::new("bad");
        s.insert(
            0,
            Instruction::Play {
                waveform: quant_pulse::Constant {
                    duration: 160,
                    amp: 0.1,
                }
                .waveform("p"),
                channel: Channel::Drive(9),
            },
        );
        let findings = quant_pulse::verify(&s, &quant_pulse::VerifySpec::new(2, vec![]));
        let err = LowerError::InvalidSchedule(findings);
        let text = err.to_string();
        assert!(text.contains("1 finding(s)"), "{text}");
        assert!(text.contains("unknown-channel"), "{text}");
    }

    #[test]
    fn rejects_untranslated_gates() {
        let c2 = ctx(2);
        let mut c = Circuit::new(2);
        c.push(Gate::Swap, &[0, 1]);
        let lowering = Lowering::new(&c2.device, &c2.calibration, LowerOptions::default());
        assert!(matches!(
            lowering.lower(&c),
            Err(LowerError::UnsupportedGate(_))
        ));
    }

    #[test]
    fn rejects_uncoupled_pairs() {
        let c3 = ctx(3);
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        let lowering = Lowering::new(&c3.device, &c3.calibration, LowerOptions::default());
        assert!(matches!(
            lowering.lower(&c),
            Err(LowerError::UncoupledPair(0, 2))
        ));
    }
}
