//! Basis-gate translation: assembly → standard or augmented basis.
//!
//! The **standard basis** is what IBM's stock compiler targets: `{Rz, U3,
//! CNOT}`, with every U3 lowered to two `Rx(90°)` pulses via the ZXZXZ
//! identity (the paper's Eq. 2; in this crate's rotation conventions:
//! `U3(θ,φ,λ) = Rz(φ+π)·Rx90·Rz(θ+π)·Rx90·Rz(λ)`).
//!
//! The **augmented basis** adds the paper's pulse-backed gates: `DirectX`,
//! `DirectRx(θ)` (single amplitude-scaled pulse, Eq. 3:
//! `U3(θ,φ,λ) = Rz(φ+π/2)·Rx(θ)·Rz(λ−π/2)`), and the parametrized `CR(θ)`
//! reached by horizontally stretching the calibrated echo.

use quant_circuit::{Circuit, Gate};
use std::f64::consts::{FRAC_PI_2, PI};

/// Which basis-gate set to translate into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BasisKind {
    /// `{Rz, U3, CNOT}` — two `Rx90` pulses per single-qubit gate.
    Standard,
    /// `{Rz, DirectRx(θ), DirectX, CR(θ), CNOT}` — the paper's augmented set.
    Augmented,
}

/// Rewrites every gate into the chosen basis. The output contains only:
///
/// * `Standard`: `Rz`, `U3`, `Cnot`
/// * `Augmented`: `Rz`, `DirectRx`, `DirectX`, `Cr`, `Cnot`
pub fn to_basis(circuit: &Circuit, kind: BasisKind) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.ops() {
        translate_op(&mut out, op.gate, &op.qubits, kind);
    }
    out
}

/// Emits a single-qubit gate given as U3 angles.
fn emit_u3(out: &mut Circuit, q: u32, theta: f64, phi: f64, lambda: f64, kind: BasisKind) {
    match kind {
        BasisKind::Standard => {
            // Zero-rotation gates collapse to a virtual Z.
            if theta.abs() < 1e-12 {
                emit_rz(out, q, phi + lambda);
            } else {
                out.push(Gate::U3(theta, phi, lambda), &[q]);
            }
        }
        BasisKind::Augmented => {
            // U3(θ,φ,λ) = Rz(φ+π/2)·Rx(θ)·Rz(λ−π/2)
            if theta.abs() < 1e-12 {
                emit_rz(out, q, phi + lambda);
                return;
            }
            emit_rz(out, q, lambda - FRAC_PI_2);
            if (theta - PI).abs() < 1e-12 {
                out.push(Gate::DirectX, &[q]);
            } else {
                out.push(Gate::DirectRx(theta), &[q]);
            }
            emit_rz(out, q, phi + FRAC_PI_2);
        }
    }
}

/// Emits an Rz, dropping angles that are multiples of 2π.
fn emit_rz(out: &mut Circuit, q: u32, angle: f64) {
    let reduced = angle.rem_euclid(2.0 * PI);
    if reduced.abs() > 1e-12 && (reduced - 2.0 * PI).abs() > 1e-12 {
        out.push(Gate::Rz(angle), &[q]);
    }
}

fn translate_op(out: &mut Circuit, gate: Gate, qubits: &[u32], kind: BasisKind) {
    let q = qubits[0];
    match gate {
        // --- single-qubit gates, expressed as U3 angles -------------------
        Gate::I => {}
        Gate::X => emit_u3(out, q, PI, 0.0, PI, kind),
        Gate::Y => emit_u3(out, q, PI, FRAC_PI_2, FRAC_PI_2, kind),
        Gate::Z => emit_rz(out, q, PI),
        Gate::H => emit_u3(out, q, FRAC_PI_2, 0.0, PI, kind),
        Gate::S => emit_rz(out, q, FRAC_PI_2),
        Gate::Sdg => emit_rz(out, q, -FRAC_PI_2),
        Gate::T => emit_rz(out, q, FRAC_PI_2 / 2.0),
        Gate::Tdg => emit_rz(out, q, -FRAC_PI_2 / 2.0),
        Gate::Rx(t) => emit_u3(out, q, t, -FRAC_PI_2, FRAC_PI_2, kind),
        Gate::Ry(t) => emit_u3(out, q, t, 0.0, 0.0, kind),
        Gate::Rz(t) => emit_rz(out, q, t),
        Gate::U3(t, p, l) => emit_u3(out, q, t, p, l, kind),
        Gate::DirectX => match kind {
            BasisKind::Standard => emit_u3(out, q, PI, 0.0, PI, kind),
            BasisKind::Augmented => {
                out.push(Gate::DirectX, &[q]);
            }
        },
        Gate::DirectRx(t) => match kind {
            BasisKind::Standard => emit_u3(out, q, t, -FRAC_PI_2, FRAC_PI_2, kind),
            BasisKind::Augmented => emit_u3(out, q, t, -FRAC_PI_2, FRAC_PI_2, kind),
        },
        Gate::Barrier => {
            out.push(Gate::Barrier, &[q]);
        }
        Gate::QutritX12 | Gate::QutritX02 => panic!(
            "qutrit subspace gates have no qubit basis translation; lower them \
             directly to frequency-shifted pulses"
        ),

        // --- two-qubit gates ----------------------------------------------
        Gate::Cnot => {
            out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
        }
        Gate::OpenCnot => {
            // X on control, CNOT, X on control.
            emit_u3(out, q, PI, 0.0, PI, kind);
            out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
            emit_u3(out, q, PI, 0.0, PI, kind);
        }
        Gate::Cz => {
            // H on target, CNOT, H on target.
            emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
            out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
            emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
        }
        Gate::Zz(t) => match kind {
            BasisKind::Standard => {
                // "Textbook": CNOT · Rz(θ) on target · CNOT.
                out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
                emit_rz(out, qubits[1], t);
                out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
            }
            BasisKind::Augmented => {
                // Paper §6.2: ZZ(θ) = H_t · CR(θ) · H_t exactly, since
                // H X H = Z conjugates the CR generator Z⊗X into Z⊗Z.
                emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
                out.push(Gate::Cr(t), &[qubits[0], qubits[1]]);
                emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
            }
        },
        Gate::Swap => {
            for (c, t) in [
                (qubits[0], qubits[1]),
                (qubits[1], qubits[0]),
                (qubits[0], qubits[1]),
            ] {
                out.push(Gate::Cnot, &[c, t]);
            }
        }
        Gate::Cr(t) => match kind {
            BasisKind::Standard => {
                // Standard flow has no CR access: conjugate the textbook ZZ
                // form by H on the target (H Z H = X).
                emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
                translate_op(out, Gate::Zz(t), qubits, kind);
                emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
            }
            BasisKind::Augmented => {
                out.push(Gate::Cr(t), &[qubits[0], qubits[1]]);
            }
        },
        // Remaining two-qubit gates go through their textbook CNOT + 1q
        // forms.
        Gate::ISwap => {
            // iSWAP = (S⊗S)·H_a·CNOT(a,b)·CNOT(b,a)·H_b (standard identity).
            emit_rz(out, qubits[0], FRAC_PI_2);
            emit_rz(out, qubits[1], FRAC_PI_2);
            emit_u3(out, qubits[0], FRAC_PI_2, 0.0, PI, kind);
            out.push(Gate::Cnot, &[qubits[0], qubits[1]]);
            out.push(Gate::Cnot, &[qubits[1], qubits[0]]);
            emit_u3(out, qubits[1], FRAC_PI_2, 0.0, PI, kind);
        }
        Gate::SqrtISwap | Gate::BSwap | Gate::Map | Gate::FSim(..) => {
            panic!(
                "{} has no fixed textbook translation here; use the two-qubit \
                 decomposer (pulse_compiler::decompose) to synthesize it",
                gate
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::CMat;

    fn equivalent_up_to_final_z(a: &Circuit, b: &Circuit) -> bool {
        // Allow a trailing virtual Z per qubit (frames that never get
        // realized): minimize over per-qubit Z angles via coarse grid +
        // refinement is overkill; instead compare on computational-basis
        // *column magnitudes* and a few probe states... Simplest robust
        // check for tests: full unitary equality up to global phase.
        a.unitary().phase_invariant_diff(&b.unitary()) < 1e-9
    }

    fn check_both(circuit: &Circuit) {
        for kind in [BasisKind::Standard, BasisKind::Augmented] {
            let translated = to_basis(circuit, kind);
            assert!(
                equivalent_up_to_final_z(circuit, &translated),
                "{kind:?} translation changed the unitary:\n{circuit}\n→\n{translated}"
            );
        }
    }

    #[test]
    fn single_qubit_gates_preserved() {
        for gate in [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.2),
            Gate::U3(0.9, 0.3, -0.8),
        ] {
            let mut c = Circuit::new(1);
            c.push(gate, &[0]);
            check_both(&c);
        }
    }

    #[test]
    fn two_qubit_gates_preserved() {
        for gate in [
            Gate::Cnot,
            Gate::OpenCnot,
            Gate::Cz,
            Gate::Zz(0.77),
            Gate::Swap,
            Gate::ISwap,
            Gate::Cr(1.1),
        ] {
            let mut c = Circuit::new(2);
            c.push(gate, &[0, 1]);
            check_both(&c);
        }
    }

    #[test]
    fn composite_circuit_preserved() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .zz(1, 2, 0.6)
            .ry(2, 1.3)
            .cz(0, 2)
            .rx(1, -0.4)
            .push(Gate::T, &[0]);
        check_both(&c);
    }

    #[test]
    fn standard_basis_gate_inventory() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).zz(0, 1, 0.5).rx(1, 0.3);
        let t = to_basis(&c, BasisKind::Standard);
        for op in t.ops() {
            assert!(
                matches!(op.gate, Gate::Rz(_) | Gate::U3(..) | Gate::Cnot),
                "unexpected standard-basis gate {}",
                op.gate
            );
        }
    }

    #[test]
    fn augmented_basis_gate_inventory() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).zz(0, 1, 0.5).rx(1, 0.3).x(0);
        let t = to_basis(&c, BasisKind::Augmented);
        for op in t.ops() {
            assert!(
                matches!(
                    op.gate,
                    Gate::Rz(_) | Gate::DirectRx(_) | Gate::DirectX | Gate::Cr(_) | Gate::Cnot
                ),
                "unexpected augmented-basis gate {}",
                op.gate
            );
        }
        // The ZZ interaction became a CR, not two CNOTs.
        assert_eq!(t.count_gate("cr"), 1);
        assert_eq!(t.count_gate("cx"), 1);
        // X became a single DirectX pulse-backed gate.
        assert!(t.count_gate("direct_x") >= 1);
    }

    #[test]
    fn zero_rotations_become_frame_changes_only() {
        let mut c = Circuit::new(1);
        c.push(Gate::U3(0.0, 0.4, 0.3), &[0]);
        let t = to_basis(&c, BasisKind::Standard);
        assert_eq!(t.len(), 1);
        assert!(matches!(t.ops()[0].gate, Gate::Rz(_)));
    }

    #[test]
    fn augmented_uses_fewer_pulses_for_x() {
        // Count pulse-backed gates (U3 counts as 2 pulses; DirectX as 1).
        let mut c = Circuit::new(1);
        c.x(0);
        let std = to_basis(&c, BasisKind::Standard);
        let aug = to_basis(&c, BasisKind::Augmented);
        let std_pulses: usize = std
            .ops()
            .iter()
            .map(|op| match op.gate {
                Gate::U3(..) => 2,
                Gate::Rz(_) => 0,
                _ => 1,
            })
            .sum();
        let aug_pulses: usize = aug
            .ops()
            .iter()
            .map(|op| match op.gate {
                Gate::U3(..) => 2,
                Gate::Rz(_) => 0,
                _ => 1,
            })
            .sum();
        assert_eq!(std_pulses, 2);
        assert_eq!(aug_pulses, 1);
    }

    #[test]
    fn zxzxz_identity_matches_u3() {
        // The Eq. 2 analog in our conventions.
        use quant_sim::gates::{rx, rz, u3};
        for &(t, p, l) in &[(0.7, 1.3, -0.4), (2.1, -0.9, 0.5)] {
            let cand =
                &(&(&(&rz(p + PI) * &rx(FRAC_PI_2)) * &rz(t + PI)) * &rx(FRAC_PI_2)) * &rz(l);
            assert!(cand.phase_invariant_diff(&u3(t, p, l)) < 1e-9);
        }
        let _ = CMat::identity(2);
    }
}
