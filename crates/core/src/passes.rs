//! Transpiler passes (the paper's §3.3).
//!
//! * [`CommutativityDetection`] (CD) — hoists gates past false data
//!   dependencies by transposing adjacent commuting operations, so that
//!   patterns obscured by intermediate gates become contiguous (Fig. 3b).
//! * [`AugmentedBasisGateDetection`] (ABGD) — template-matches gate
//!   sequences that reduce to an augmented basis gate, most importantly the
//!   textbook ZZ interaction `CNOT·Rz(target)·CNOT → ZZ(θ)` (Fig. 3c).
//! * [`CancelInverses`] — removes adjacent self-inverse pairs and merges
//!   adjacent rotations about the same axis; with the augmented basis this
//!   realizes §5's cross-gate pulse cancellation at the gate level.
//! * [`MergeSingleQubit`] — collapses runs of single-qubit gates into one
//!   U3 (→ one pulse in the augmented flow).

use quant_circuit::{operations_commute, Circuit, CircuitDag, Gate, Operation};
use quant_sim::euler_zxz;
use std::f64::consts::FRAC_PI_2;

/// A rewrite pass over a circuit DAG.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;
    /// Runs the pass; returns true if anything changed.
    fn run(&self, dag: &mut CircuitDag) -> bool;
}

/// Runs a pass pipeline to fixpoint (bounded), returning the final circuit.
pub fn run_pipeline(circuit: &Circuit, passes: &[&dyn Pass]) -> Circuit {
    let mut dag = CircuitDag::from_circuit(circuit);
    for _ in 0..16 {
        let mut changed = false;
        for pass in passes {
            changed |= pass.run(&mut dag);
        }
        if !changed {
            break;
        }
    }
    dag.to_circuit()
}

/// Commutativity detection: bubble commuting gates together.
///
/// For every pair of operations adjacent on a wire, if transposing them
/// brings an operation closer to a same-gate partner it could cancel or
/// merge with, transpose. The implementation is a simple bubble scheme: we
/// repeatedly try to move diagonal gates (Rz/Zz/Cz) later past commuting
/// neighbours, which is what un-obscures the paper's Fig. 3 example.
pub struct CommutativityDetection;

impl Pass for CommutativityDetection {
    fn name(&self) -> &'static str {
        "commutativity-detection"
    }

    fn run(&self, dag: &mut CircuitDag) -> bool {
        // Strategy: for each operation A with a successor B on some wire,
        // if A and B commute and swapping them makes B adjacent to an
        // operation identical in kind (cancellation fodder), transpose.
        // We approximate "useful" by: B is a two-qubit gate and A is a
        // single-qubit diagonal gate, or A and B are both diagonal.
        let mut changed = false;
        let order = dag.topological();
        for &node in &order {
            let Some(op) = dag.op(node).cloned() else {
                continue;
            };
            if !op.gate.is_diagonal() || op.gate == Gate::Barrier {
                continue;
            }
            for &q in &op.qubits {
                if let Some(next) = dag.successor_on_wire(node, q) {
                    let Some(next_op) = dag.op(next).cloned() else {
                        continue;
                    };
                    // Move the diagonal gate later past a commuting
                    // non-diagonal gate (e.g. Rz past a CNOT control).
                    if !next_op.gate.is_diagonal()
                        && operations_commute(&op, &next_op)
                        && dag.try_transpose(node, next)
                    {
                        changed = true;
                        break;
                    }
                }
            }
        }
        changed
    }
}

/// Augmented-basis-gate detection: rewrite `CNOT(c,t) · Rz(θ)@t · CNOT(c,t)`
/// into `Zz(θ)` on `(c, t)`.
pub struct AugmentedBasisGateDetection;

impl Pass for AugmentedBasisGateDetection {
    fn name(&self) -> &'static str {
        "augmented-basis-gate-detection"
    }

    fn run(&self, dag: &mut CircuitDag) -> bool {
        let mut changed = false;
        'outer: loop {
            let order = dag.topological();
            for &first in &order {
                let Some(op1) = dag.op(first).cloned() else {
                    continue;
                };
                if op1.gate != Gate::Cnot {
                    continue;
                }
                let (c, t) = (op1.qubits[0], op1.qubits[1]);
                // Next op on the target wire must be Rz(θ).
                let Some(mid) = dag.successor_on_wire(first, t) else {
                    continue;
                };
                let Some(op2) = dag.op(mid).cloned() else {
                    continue;
                };
                let Gate::Rz(theta) = op2.gate else {
                    continue;
                };
                // Then another CNOT(c,t) adjacent on both wires.
                let Some(last) = dag.successor_on_wire(mid, t) else {
                    continue;
                };
                let Some(op3) = dag.op(last).cloned() else {
                    continue;
                };
                if op3.gate != Gate::Cnot || op3.qubits != op1.qubits {
                    continue;
                }
                // The control wire must also be free between the CNOTs
                // (nothing on c between first and last).
                if dag.successor_on_wire(first, c) != Some(last) {
                    continue;
                }
                dag.remove(mid);
                dag.remove(last);
                dag.replace(
                    first,
                    Operation {
                        gate: Gate::Zz(theta),
                        qubits: op1.qubits.clone(),
                    },
                );
                changed = true;
                continue 'outer;
            }
            break;
        }
        changed
    }
}

/// Cancels adjacent inverse pairs and merges same-axis rotations.
pub struct CancelInverses;

impl Pass for CancelInverses {
    fn name(&self) -> &'static str {
        "cancel-inverses"
    }

    fn run(&self, dag: &mut CircuitDag) -> bool {
        let mut changed = false;
        'outer: loop {
            let order = dag.topological();
            for &node in &order {
                let Some(op) = dag.op(node).cloned() else {
                    continue;
                };
                // Find the op immediately following on *all* of this op's
                // wires.
                let next = op
                    .qubits
                    .iter()
                    .map(|&q| dag.successor_on_wire(node, q))
                    .collect::<Option<Vec<_>>>()
                    .and_then(|succs| {
                        let first = succs[0];
                        succs.iter().all(|&s| s == first).then_some(first)
                    });
                let Some(next) = next else {
                    continue;
                };
                let Some(next_op) = dag.op(next).cloned() else {
                    continue;
                };
                if next_op.qubits != op.qubits {
                    continue;
                }
                // Self-inverse pair?
                if is_self_inverse_pair(&op.gate, &next_op.gate) {
                    dag.remove(node);
                    dag.remove(next);
                    changed = true;
                    continue 'outer;
                }
                // Mergeable rotations?
                if let Some(merged) = merge_rotations(&op.gate, &next_op.gate) {
                    dag.remove(next);
                    match merged {
                        Some(gate) => dag.replace(
                            node,
                            Operation {
                                gate,
                                qubits: op.qubits.clone(),
                            },
                        ),
                        None => dag.remove(node),
                    }
                    changed = true;
                    continue 'outer;
                }
            }
            break;
        }
        changed
    }
}

fn is_self_inverse_pair(a: &Gate, b: &Gate) -> bool {
    if a != b {
        return false;
    }
    matches!(
        a,
        Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::DirectX
            | Gate::Cnot
            | Gate::OpenCnot
            | Gate::Cz
            | Gate::Swap
    )
}

/// If `a · b` is a single rotation in the set, returns `Some(Some(g))`;
/// if they cancel exactly, `Some(None)`; otherwise `None`.
fn merge_rotations(a: &Gate, b: &Gate) -> Option<Option<Gate>> {
    const EPS: f64 = 1e-12;
    let build = |total: f64, mk: fn(f64) -> Gate| {
        if total.abs() < EPS {
            Some(None)
        } else {
            Some(Some(mk(total)))
        }
    };
    match (a, b) {
        (Gate::Rz(x), Gate::Rz(y)) => build(x + y, Gate::Rz),
        (Gate::Rx(x), Gate::Rx(y)) => build(x + y, Gate::Rx),
        (Gate::Ry(x), Gate::Ry(y)) => build(x + y, Gate::Ry),
        (Gate::DirectRx(x), Gate::DirectRx(y)) => build(x + y, Gate::DirectRx),
        (Gate::Zz(x), Gate::Zz(y)) => build(x + y, Gate::Zz),
        (Gate::Cr(x), Gate::Cr(y)) => build(x + y, Gate::Cr),
        _ => None,
    }
}

/// Merges maximal runs of single-qubit gates into one `U3`.
pub struct MergeSingleQubit;

impl Pass for MergeSingleQubit {
    fn name(&self) -> &'static str {
        "merge-single-qubit"
    }

    fn run(&self, dag: &mut CircuitDag) -> bool {
        let mut changed = false;
        'outer: loop {
            let order = dag.topological();
            for &node in &order {
                let Some(op) = dag.op(node).cloned() else {
                    continue;
                };
                if op.gate.arity() != 1 {
                    continue;
                }
                let q = op.qubits[0];
                let Some(next) = dag.successor_on_wire(node, q) else {
                    continue;
                };
                let Some(next_op) = dag.op(next).cloned() else {
                    continue;
                };
                if next_op.gate.arity() != 1 {
                    continue;
                }
                if op.gate == Gate::Barrier || next_op.gate == Gate::Barrier {
                    continue;
                }
                // Skip pairs already handled by cheaper merges.
                if matches!((&op.gate, &next_op.gate), (Gate::Rz(_), Gate::Rz(_))) {
                    continue;
                }
                let product = &next_op.gate.matrix() * &op.gate.matrix();
                let (a, theta, c) = euler_zxz(&product);
                // U3(θ, φ, λ) = Rz(φ+π/2)·Rx(θ)·Rz(λ−π/2)
                let gate = Gate::U3(theta, a - FRAC_PI_2, c + FRAC_PI_2);
                dag.remove(next);
                dag.replace(
                    node,
                    Operation {
                        gate,
                        qubits: vec![q],
                    },
                );
                changed = true;
                continue 'outer;
            }
            break;
        }
        changed
    }
}

/// The paper's optimized pipeline: CD + ABGD + cancellation + 1q merging,
/// iterated to fixpoint.
pub fn optimize(circuit: &Circuit) -> Circuit {
    run_pipeline(
        circuit,
        &[
            &CancelInverses,
            &CommutativityDetection,
            &AugmentedBasisGateDetection,
            &CancelInverses,
            &MergeSingleQubit,
        ],
    )
}

/// The *baseline* gate-level pipeline: what a stock compiler (Qiskit
/// transpile at its default level) already does — inverse cancellation and
/// single-qubit merging — without any of the paper's pulse-aware passes.
/// Used by the standard compilation mode so comparisons are fair.
pub fn baseline_optimize(circuit: &Circuit) -> Circuit {
    run_pipeline(circuit, &[&CancelInverses, &MergeSingleQubit])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equiv(a: &Circuit, b: &Circuit) {
        assert!(
            a.unitary().phase_invariant_diff(&b.unitary()) < 1e-9,
            "not equivalent:\n{a}\nvs\n{b}"
        );
    }

    #[test]
    fn abgd_detects_textbook_zz() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).rz(1, 0.8).cnot(0, 1);
        let out = run_pipeline(&c, &[&AugmentedBasisGateDetection]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].gate, Gate::Zz(0.8));
        assert_equiv(&c, &out);
    }

    #[test]
    fn abgd_requires_clean_control_wire() {
        // An X on the control between the CNOTs blocks the template.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).rz(1, 0.8).x(0).cnot(0, 1);
        let out = run_pipeline(&c, &[&AugmentedBasisGateDetection]);
        assert_eq!(out.count_gate("cx"), 2, "template must not fire");
    }

    #[test]
    fn cd_unobscures_fig3_pattern() {
        // Fig. 3: CNOT(0,1) · Rz(γ)@0 · Rz(θ)@1 · CNOT(0,1), with the Rz(γ)
        // on the control creating a false dependency. CD moves it out, ABGD
        // fires.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).rz(0, 0.4).rz(1, 0.9).cnot(0, 1);
        let out = optimize(&c);
        assert!(
            out.count_gate("zz") == 1,
            "expected ZZ detection after CD:\n{out}"
        );
        assert_equiv(&c, &out);
    }

    #[test]
    fn cancel_adjacent_x_pairs() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let out = run_pipeline(&c, &[&CancelInverses]);
        assert!(out.is_empty(), "{out}");
    }

    #[test]
    fn cancel_cnot_pairs() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1).h(0);
        let out = run_pipeline(&c, &[&CancelInverses]);
        assert_eq!(out.len(), 1);
        assert_equiv(&c, &out);
    }

    #[test]
    fn merge_rz_chain() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rz(0, 0.4).rz(0, -0.7);
        let out = run_pipeline(&c, &[&CancelInverses]);
        assert!(out.is_empty(), "angles sum to zero: {out}");
    }

    #[test]
    fn merge_single_qubit_run() {
        let mut c = Circuit::new(1);
        c.h(0).rx(0, 0.3).ry(0, -0.8).rz(0, 0.2).h(0);
        let out = run_pipeline(&c, &[&MergeSingleQubit]);
        assert!(out.len() <= 2, "should collapse to at most U3+Rz: {out}");
        assert_equiv(&c, &out);
    }

    #[test]
    fn open_cnot_cancellation_through_decomposition() {
        // §5.2's open-CNOT: X_c · CNOT · X_c. After decomposing the CNOT
        // into echoed-CR primitives (done in lowering), the first X cancels
        // with the echo X. At the gate level we verify the optimizer keeps
        // the circuit equivalent and does not *add* gates.
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1).x(0);
        let out = optimize(&c);
        assert!(out.len() <= 3);
        assert_equiv(&c, &out);
    }

    #[test]
    fn qaoa_layer_collapses_to_zz_chain() {
        // A 4-qubit QAOA-MAXCUT line-graph layer written the textbook way.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        for e in 0..3u32 {
            c.cnot(e, e + 1).rz(e + 1, 1.1).cnot(e, e + 1);
        }
        let out = optimize(&c);
        assert_eq!(out.count_gate("zz"), 3, "{out}");
        assert_eq!(out.count_gate("cx"), 0);
        assert_equiv(&c, &out);
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .rz(1, 0.4)
            .cnot(0, 1)
            .cnot(1, 2)
            .rz(2, 0.7)
            .cnot(1, 2);
        let once = optimize(&c);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn pipeline_preserves_random_circuits() {
        // A deterministic pseudo-random circuit family.
        let mut c = Circuit::new(3);
        let angles = [0.37, 1.41, -0.62, 2.2, 0.11];
        for (i, &a) in angles.iter().enumerate() {
            let q = (i % 3) as u32;
            c.rx(q, a).rz((q + 1) % 3, -a);
            c.cnot(q, (q + 1) % 3);
        }
        let out = optimize(&c);
        assert_equiv(&c, &out);
    }
}
