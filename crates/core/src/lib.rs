//! The paper's core contribution: a pulse-optimizing quantum compiler.
//!
//! Standard quantum compilers stop at a hardware-agnostic basis-gate set
//! and pay for it at the pulse level: every single-qubit gate becomes two
//! `Rx(90°)` pulses, and every two-qubit operation is forced through full
//! CNOTs. This crate reproduces the compiler of *Optimized Quantum
//! Compilation for Near-Term Algorithms with OpenPulse* (Gokhale et al.,
//! MICRO 2020), which augments the basis-gate set with pulse-backed
//! primitives bootstrapped from the device's daily calibrations:
//!
//! 1. **Direct rotations** ([`translate`], [`lower`]) — `DirectX` reuses
//!    the pre-calibrated `Rx(180°)` pulse; `DirectRx(θ)` scales its
//!    amplitude by `θ/180°`, with the Fig.-7 empirical phase correction.
//! 2. **Cross-gate pulse cancellation** ([`lower`]) — CNOT's echo exposes
//!    internal X pulses that cancel against neighbouring gates.
//! 3. **Two-qubit decompositions** ([`mod@decompose`], [`kak`]) — the
//!    parametrized `CR(θ)` (horizontally stretched echo) implements the ZZ
//!    interaction with a single two-qubit pulse block.
//! 4. The transpiler passes ([`passes`]) — commutativity detection and
//!    augmented-basis-gate detection — keep user code hardware-agnostic.
//!
//! Entry point: [`Compiler`] with [`CompileMode::Standard`] (the baseline
//! flow) or [`CompileMode::Optimized`].
//!
//! ```no_run
//! use pulse_compiler::{CompileMode, Compiler};
//! use quant_circuit::Circuit;
//! use quant_device::{calibrate, DeviceModel};
//!
//! let mut rng = quant_math::seeded(1);
//! let device = DeviceModel::almaden_like(2, &mut rng);
//! let calibration = calibrate(&device, &mut rng);
//!
//! // A textbook ZZ interaction…
//! let mut circuit = Circuit::new(2);
//! circuit.cnot(0, 1).rz(1, 0.8).cnot(0, 1);
//!
//! // …compiles to a single stretched-CR pulse block.
//! let compiled = Compiler::new(&device, &calibration, CompileMode::Optimized)
//!     .compile(&circuit)
//!     .unwrap();
//! assert_eq!(compiled.assembly.count_gate("zz"), 1);
//! ```

#![warn(missing_docs)]

pub mod compiler;
pub mod decompose;
pub mod kak;
pub mod lower;
pub mod passes;
pub mod routing;
pub mod translate;

pub use compiler::{CompileMode, Compiled, Compiler};
pub use decompose::{
    average_gate_fidelity, decompose, table2_cost, DecomposeOptions, NativeGate, Synthesis,
    TargetOp,
};
pub use kak::{
    is_local, locally_equivalent, makhlin_invariants, two_cnot_synthesizable, weyl_coordinates,
};
pub use lower::{LowerError, LowerOptions, Lowering};
pub use passes::{baseline_optimize, optimize, run_pipeline, Pass};
pub use routing::{route, CouplingMap, RouteError, Routed};
pub use translate::{to_basis, BasisKind};
