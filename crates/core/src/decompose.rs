//! The two-qubit basis decomposer behind Table 2.
//!
//! Given a target operation and a native two-qubit gate, find the smallest
//! number of native-gate applications that synthesizes the target to
//! ≥ 99.9 % average gate fidelity, interleaving arbitrary single-qubit
//! rotations. This mirrors the paper's methodology: Qiskit's
//! `TwoQubitBasisDecomposer` for discrete gates and a constrained COBYLA
//! search for the parametrized `CR(θ)` column.
//!
//! The search ansatz is
//!
//! ```text
//! U ≈ L_k · B(θ_k) · L_{k-1} · … · B(θ_1) · L_0,   L_j = u3 ⊗ u3
//! ```
//!
//! optimized over the 6 Euler angles of every local layer (plus one θ per
//! basis application when the native gate is parametrized) with restarted
//! Nelder–Mead. Makhlin-invariant shortcuts prune impossible counts.

use crate::kak::{is_local, locally_equivalent, two_cnot_synthesizable};
use quant_math::{nelder_mead, seeded, CMat, NelderMeadOptions};
use quant_sim::gates as g;
use rand::Rng;

/// Average gate fidelity between two-qubit unitaries:
/// `F = (|tr(U†V)|² + d) / (d² + d)` with `d = 4`.
pub fn average_gate_fidelity(u: &CMat, v: &CMat) -> f64 {
    let d = u.rows() as f64;
    let tr = (&u.dagger() * v).trace();
    (tr.norm_sqr() + d) / (d * d + d)
}

/// A native two-qubit gate the decomposer can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeGate {
    /// CNOT — the textbook reference column.
    Cnot,
    /// 90° cross-resonance.
    Cr90,
    /// iSWAP (tunable superconducting / quantum-dot / nuclear-spin qubits).
    ISwap,
    /// bSWAP (two-photon gate).
    BSwap,
    /// MAP (microwave-activated phase).
    Map,
    /// √iSWAP — the "half gate" (cost 0.5 per use).
    SqrtISwap,
    /// Parametrized CR(θ) via pulse stretching — the paper's target.
    CrTheta,
}

impl NativeGate {
    /// Display name matching Table 2's columns.
    pub fn name(&self) -> &'static str {
        match self {
            NativeGate::Cnot => "CNOT",
            NativeGate::Cr90 => "CR(90°)",
            NativeGate::ISwap => "iSWAP",
            NativeGate::BSwap => "bSWAP",
            NativeGate::Map => "MAP",
            NativeGate::SqrtISwap => "√iSWAP",
            NativeGate::CrTheta => "CR(θ)",
        }
    }

    /// Cost charged per application (Table 2 counts √iSWAP as 0.5).
    pub fn cost_per_use(&self) -> f64 {
        match self {
            NativeGate::SqrtISwap => 0.5,
            _ => 1.0,
        }
    }

    /// Whether each application carries a free continuous parameter.
    pub fn is_parametrized(&self) -> bool {
        matches!(self, NativeGate::CrTheta)
    }

    /// The gate matrix for a given per-use parameter (ignored when not
    /// parametrized).
    pub fn matrix(&self, theta: f64) -> CMat {
        match self {
            NativeGate::Cnot => g::cnot(),
            NativeGate::Cr90 => g::cr(std::f64::consts::FRAC_PI_2),
            NativeGate::ISwap => g::iswap(),
            NativeGate::BSwap => g::bswap(),
            NativeGate::Map => g::map_gate(),
            NativeGate::SqrtISwap => g::sqrt_iswap(),
            NativeGate::CrTheta => g::cr(theta),
        }
    }
}

/// Result of a successful synthesis.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// Number of native-gate applications.
    pub uses: usize,
    /// Cost (uses × cost-per-use).
    pub cost: f64,
    /// Achieved average gate fidelity.
    pub fidelity: f64,
    /// Optimized parameters (local Euler angles + per-use θ's).
    pub params: Vec<f64>,
}

/// Options for the decomposition search.
#[derive(Clone, Copy, Debug)]
pub struct DecomposeOptions {
    /// Required average gate fidelity (paper: 99.9 %).
    pub fidelity_threshold: f64,
    /// Random restarts per use-count.
    pub restarts: usize,
    /// Nelder–Mead evaluation budget per restart.
    pub max_evals: usize,
    /// Maximum native-gate applications to try.
    pub max_uses: usize,
    /// RNG seed for restart initialization.
    pub seed: u64,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            fidelity_threshold: 0.999,
            restarts: 12,
            max_evals: 8000,
            max_uses: 3,
            seed: 20_20,
        }
    }
}

/// Builds the ansatz unitary for a parameter vector.
fn ansatz(native: NativeGate, uses: usize, params: &[f64]) -> CMat {
    let mut u = local_layer(&params[0..6]);
    for k in 0..uses {
        let theta = if native.is_parametrized() {
            params[6 * (uses + 1) + k]
        } else {
            0.0
        };
        u = &native.matrix(theta) * &u;
        let layer = &params[6 * (k + 1)..6 * (k + 2)];
        u = &local_layer(layer) * &u;
    }
    u
}

/// `u3(a,b,c) ⊗ u3(d,e,f)` with qubit 0 as the least-significant digit.
fn local_layer(p: &[f64]) -> CMat {
    // kron(A, B): A acts on the most-significant digit (qubit 1).
    g::u3(p[3], p[4], p[5]).kron(&g::u3(p[0], p[1], p[2]))
}

/// Number of parameters for a given ansatz size.
fn param_count(native: NativeGate, uses: usize) -> usize {
    6 * (uses + 1) + if native.is_parametrized() { uses } else { 0 }
}

/// Attempts to synthesize `target` with exactly `uses` applications.
pub fn synthesize_with_uses(
    target: &CMat,
    native: NativeGate,
    uses: usize,
    opts: &DecomposeOptions,
) -> Option<Synthesis> {
    if uses == 0 {
        return if is_local(target) {
            Some(Synthesis {
                uses: 0,
                cost: 0.0,
                fidelity: 1.0,
                params: Vec::new(),
            })
        } else {
            None
        };
    }
    // Invariant-based pruning for the non-parametrized gates.
    if !native.is_parametrized() {
        let b = native.matrix(0.0);
        if uses == 1 && !locally_equivalent(target, &b) {
            return None;
        }
        // With CNOT-class gates, two uses reach exactly the
        // two-CNOT-synthesizable set.
        if uses == 2 && locally_equivalent(&b, &g::cnot()) && !two_cnot_synthesizable(target) {
            return None;
        }
    }

    let n = param_count(native, uses);
    let mut rng = seeded(opts.seed);
    let nm_opts = NelderMeadOptions {
        max_evals: opts.max_evals,
        initial_step: 0.6,
        ..Default::default()
    };
    let mut best: Option<Synthesis> = None;
    for _ in 0..opts.restarts {
        let x0: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
            .collect();
        let result = nelder_mead(
            |p| 1.0 - average_gate_fidelity(target, &ansatz(native, uses, p)),
            &x0,
            &nm_opts,
        );
        let fidelity = 1.0 - result.fx;
        if best.as_ref().is_none_or(|b| fidelity > b.fidelity) {
            best = Some(Synthesis {
                uses,
                cost: uses as f64 * native.cost_per_use(),
                fidelity,
                params: result.x,
            });
        }
        if fidelity >= opts.fidelity_threshold {
            break;
        }
    }
    best.filter(|s| s.fidelity >= opts.fidelity_threshold)
}

/// Finds the minimum-cost synthesis of `target` in the given native gate,
/// trying `uses = 0, 1, …, max_uses`.
pub fn decompose(target: &CMat, native: NativeGate, opts: &DecomposeOptions) -> Option<Synthesis> {
    for uses in 0..=opts.max_uses {
        if let Some(s) = synthesize_with_uses(target, native, uses, opts) {
            return Some(s);
        }
    }
    None
}

impl Synthesis {
    /// Materializes the synthesis as a two-qubit circuit: alternating
    /// local layers (as `U3` pairs) and native-gate applications.
    pub fn to_circuit(&self, native: NativeGate) -> quant_circuit::Circuit {
        use quant_circuit::Gate;
        let mut c = quant_circuit::Circuit::new(2);
        let layer = |c: &mut quant_circuit::Circuit, p: &[f64]| {
            c.push(Gate::U3(p[0], p[1], p[2]), &[0]);
            c.push(Gate::U3(p[3], p[4], p[5]), &[1]);
        };
        layer(&mut c, &self.params[0..6]);
        for k in 0..self.uses {
            let gate = match native {
                NativeGate::Cnot => Gate::Cnot,
                NativeGate::Cr90 => Gate::Cr(std::f64::consts::FRAC_PI_2),
                NativeGate::ISwap => Gate::ISwap,
                NativeGate::BSwap => Gate::BSwap,
                NativeGate::Map => Gate::Map,
                NativeGate::SqrtISwap => Gate::SqrtISwap,
                NativeGate::CrTheta => Gate::Cr(self.params[6 * (self.uses + 1) + k]),
            };
            c.push(gate, &[0, 1]);
            layer(&mut c, &self.params[6 * (k + 1)..6 * (k + 2)]);
        }
        c
    }
}

/// The decomposition targets of Table 2's rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetOp {
    /// CNOT.
    Cnot,
    /// SWAP (data movement).
    Swap,
    /// ZZ(θ) interaction — the ubiquitous near-term primitive.
    ZzInteraction,
    /// Fermionic-simulation gate.
    FermionicSimulation,
}

impl TargetOp {
    /// Display name matching Table 2's rows.
    pub fn name(&self) -> &'static str {
        match self {
            TargetOp::Cnot => "CNOT",
            TargetOp::Swap => "SWAP",
            TargetOp::ZzInteraction => "ZZ Interaction",
            TargetOp::FermionicSimulation => "Fermionic Simulation",
        }
    }

    /// A representative unitary (generic angles for parametrized rows, as
    /// in the paper's cost computation).
    pub fn matrix(&self) -> CMat {
        match self {
            TargetOp::Cnot => g::cnot(),
            TargetOp::Swap => g::swap(),
            // A generic interaction angle — not a special point.
            TargetOp::ZzInteraction => g::zz(0.777),
            TargetOp::FermionicSimulation => g::fsim(0.5, 0.777),
        }
    }
}

/// One row × column entry of Table 2: minimum cost, or `None` if not found
/// within the search budget.
pub fn table2_cost(target: TargetOp, native: NativeGate, opts: &DecomposeOptions) -> Option<f64> {
    decompose(&target.matrix(), native, opts).map(|s| s.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn fast_opts() -> DecomposeOptions {
        DecomposeOptions {
            restarts: 8,
            max_evals: 6000,
            ..Default::default()
        }
    }

    #[test]
    fn fidelity_metric_properties() {
        let u = g::cnot();
        assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-12);
        let f = average_gate_fidelity(&u, &CMat::identity(4));
        assert!(f < 0.5, "CNOT vs I fidelity = {f}");
        // Global phase invariance.
        let v = u.scale(quant_math::C64::cis(1.23));
        assert!((average_gate_fidelity(&u, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_target_costs_zero() {
        let t = g::h().kron(&g::t());
        let s = decompose(&t, NativeGate::Cnot, &fast_opts()).unwrap();
        assert_eq!(s.uses, 0);
    }

    #[test]
    fn cnot_from_one_cr90() {
        let s = synthesize_with_uses(&g::cnot(), NativeGate::Cr90, 1, &fast_opts())
            .expect("CNOT is one CR(90°) plus locals");
        assert!(s.fidelity >= 0.999, "fidelity {}", s.fidelity);
    }

    #[test]
    fn cnot_needs_two_iswaps() {
        let opts = fast_opts();
        assert!(
            synthesize_with_uses(&g::cnot(), NativeGate::ISwap, 1, &opts).is_none(),
            "CNOT is not locally equivalent to iSWAP"
        );
        let s = synthesize_with_uses(&g::cnot(), NativeGate::ISwap, 2, &opts)
            .expect("CNOT = 2 iSWAPs + locals");
        assert!(s.fidelity >= 0.999);
    }

    #[test]
    fn zz_needs_two_cnots_but_one_cr_theta() {
        let opts = fast_opts();
        let zz = g::zz(0.777);
        assert!(
            synthesize_with_uses(&zz, NativeGate::Cnot, 1, &opts).is_none(),
            "generic ZZ is not CNOT-class"
        );
        let two =
            synthesize_with_uses(&zz, NativeGate::Cnot, 2, &opts).expect("textbook: CNOT·Rz·CNOT");
        assert_eq!(two.uses, 2);
        let one =
            synthesize_with_uses(&zz, NativeGate::CrTheta, 1, &opts).expect("paper: H·CR(θ)·H");
        assert!(one.fidelity >= 0.999, "CR(θ) fidelity {}", one.fidelity);
    }

    #[test]
    fn cnot_from_two_sqrt_iswaps_costs_one() {
        let s =
            decompose(&g::cnot(), NativeGate::SqrtISwap, &fast_opts()).expect("CNOT = 2 √iSWAPs");
        assert_eq!(s.uses, 2);
        assert!((s.cost - 1.0).abs() < 1e-12, "half-gate accounting");
    }

    #[test]
    fn pruning_rejects_impossible_counts() {
        let opts = fast_opts();
        // SWAP fails the two-CNOT criterion → pruned without search.
        assert!(synthesize_with_uses(&g::swap(), NativeGate::Cnot, 2, &opts).is_none());
        // CR(90°) is CNOT-class: one use suffices for CNOT and is pruned
        // *in* (i.e. allowed); sanity-check the fast path agrees.
        assert!(locally_equivalent(
            &g::cr(FRAC_PI_2),
            &NativeGate::Cr90.matrix(0.0)
        ));
    }

    #[test]
    fn ansatz_param_counts() {
        assert_eq!(param_count(NativeGate::Cnot, 2), 18);
        assert_eq!(param_count(NativeGate::CrTheta, 2), 20);
    }

    #[test]
    fn synthesis_to_circuit_round_trips() {
        let opts = fast_opts();
        let target = g::zz(0.777);
        let s = synthesize_with_uses(&target, NativeGate::CrTheta, 1, &opts)
            .expect("ZZ from one CR(θ)");
        let circuit = s.to_circuit(NativeGate::CrTheta);
        let f = average_gate_fidelity(&target, &circuit.unitary());
        assert!(f >= 0.999, "materialized circuit fidelity {f}");
        assert_eq!(circuit.count_gate("cr"), 1);
    }

    #[test]
    fn synthesis_to_circuit_discrete_gate() {
        let opts = fast_opts();
        let s = synthesize_with_uses(&g::swap(), NativeGate::SqrtISwap, 3, &opts)
            .expect("SWAP from three √iSWAPs");
        let circuit = s.to_circuit(NativeGate::SqrtISwap);
        let f = average_gate_fidelity(&g::swap(), &circuit.unitary());
        assert!(f >= 0.999, "fidelity {f}");
        assert_eq!(circuit.count_gate("sqrt_iswap"), 3);
    }
}
