//! The top-level compiler: the paper's Figure 1 flow.
//!
//! ```text
//!   program (Circuit)
//!      │  transpiler passes (optimized mode: CD, ABGD, cancellation, merge)
//!      ▼
//!   assembly (Circuit)
//!      │  basis translation (standard: {Rz, U3, CNOT};
//!      ▼   optimized: {Rz, DirectRx, DirectX, CR(θ), CNOT})
//!   basis gates (Circuit)
//!      │  lowering (virtual-Z frames, cmd_def pulses, cancellation peephole)
//!      ▼
//!   pulse schedule (LoweredProgram)
//! ```
//!
//! [`CompileMode::Standard`] reproduces the stock Qiskit flow the paper
//! compares against; [`CompileMode::Optimized`] enables all four of the
//! paper's optimizations.

use crate::lower::{LowerError, LowerOptions, Lowering};
use crate::passes::{baseline_optimize, optimize};
use crate::translate::{to_basis, BasisKind};
use quant_circuit::Circuit;
use quant_device::{Calibration, DeviceModel, LoweredProgram};

/// Compilation mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileMode {
    /// The stock gate-based flow: every 1-qubit gate becomes a two-pulse
    /// U3; every two-qubit operation goes through full CNOTs.
    Standard,
    /// The paper's pulse-optimized flow: direct rotations, cross-gate
    /// pulse cancellation, stretched-CR two-qubit decompositions.
    Optimized,
}

/// The output of compilation, keeping every intermediate stage for
/// inspection (Table 1's rows).
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The input, after transpiler passes (assembly stage).
    pub assembly: Circuit,
    /// The basis-gate stage.
    pub basis: Circuit,
    /// The executable pulse program.
    pub program: LoweredProgram,
}

impl Compiled {
    /// Total schedule duration in `dt` units.
    pub fn duration(&self) -> u64 {
        self.program.duration()
    }

    /// Total pulses played.
    pub fn pulse_count(&self) -> usize {
        self.program.pulse_count()
    }
}

/// The compiler.
pub struct Compiler<'a> {
    device: &'a DeviceModel,
    calibration: &'a Calibration,
    mode: CompileMode,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for a calibrated device.
    pub fn new(device: &'a DeviceModel, calibration: &'a Calibration, mode: CompileMode) -> Self {
        Compiler {
            device,
            calibration,
            mode,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> CompileMode {
        self.mode
    }

    /// Compiles a circuit down to a pulse program.
    pub fn compile(&self, circuit: &Circuit) -> Result<Compiled, LowerError> {
        let (assembly, kind, lower_opts) = match self.mode {
            CompileMode::Standard => (
                baseline_optimize(circuit),
                BasisKind::Standard,
                LowerOptions {
                    pulse_cancellation: false,
                },
            ),
            CompileMode::Optimized => (
                optimize(circuit),
                BasisKind::Augmented,
                LowerOptions {
                    pulse_cancellation: true,
                },
            ),
        };
        let basis = to_basis(&assembly, kind);
        let lowering = Lowering::new(self.device, self.calibration, lower_opts);
        let program = lowering.lower(&basis)?;
        Ok(Compiled {
            assembly,
            basis,
            program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_device::{calibrate, PulseExecutor};
    use quant_math::seeded;

    fn setup(n: usize) -> (DeviceModel, Calibration) {
        let device = DeviceModel::ideal(n);
        let mut rng = seeded(5);
        let cal = calibrate(&device, &mut rng);
        (device, cal)
    }

    fn hellinger(p: &[f64], q: &[f64]) -> f64 {
        let s: f64 = p
            .iter()
            .zip(q)
            .map(|(a, b)| (a.sqrt() - b.sqrt()).powi(2))
            .sum();
        (s / 2.0).sqrt()
    }

    #[test]
    fn both_modes_agree_with_ideal() {
        let (device, cal) = setup(2);
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.6).cnot(0, 1).h(1);
        let ideal = c.output_distribution();
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let compiled = Compiler::new(&device, &cal, mode).compile(&c).unwrap();
            let exec = PulseExecutor::noiseless(&device);
            let mut rng = seeded(9);
            let out = exec.run(&compiled.program, &mut rng);
            let h = hellinger(&ideal, &out.probabilities);
            assert!(h < 0.08, "{mode:?}: Hellinger {h}");
        }
    }

    #[test]
    fn optimized_is_faster_on_zz_workloads() {
        let (device, cal) = setup(3);
        // A Trotter-ish layer: chain of textbook ZZ interactions.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        for e in 0..2u32 {
            c.cnot(e, e + 1).rz(e + 1, 0.7).cnot(e, e + 1);
        }
        let std = Compiler::new(&device, &cal, CompileMode::Standard)
            .compile(&c)
            .unwrap();
        let opt = Compiler::new(&device, &cal, CompileMode::Optimized)
            .compile(&c)
            .unwrap();
        assert!(
            opt.duration() * 3 <= std.duration() * 2,
            "expected ≥1.5× speedup: {} vs {} dt",
            std.duration(),
            opt.duration()
        );
        assert!(opt.pulse_count() < std.pulse_count());
        // The optimized assembly rediscovered the ZZ interactions.
        assert_eq!(opt.assembly.count_gate("zz"), 2);
    }

    #[test]
    fn compiled_stages_are_consistent() {
        let (device, cal) = setup(2);
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1).x(0);
        let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
            .compile(&c)
            .unwrap();
        // Assembly and basis stages stay unitarily equivalent.
        assert!(
            compiled
                .assembly
                .unitary()
                .phase_invariant_diff(&compiled.basis.unitary())
                < 1e-9
        );
    }

    #[test]
    fn error_surfaces_for_uncoupled_pairs() {
        let (device, cal) = setup(3);
        let mut c = Circuit::new(3);
        c.cnot(0, 2);
        let err = Compiler::new(&device, &cal, CompileMode::Standard)
            .compile(&c)
            .unwrap_err();
        assert!(err.to_string().contains("not coupled"));
    }
}
