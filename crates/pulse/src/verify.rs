//! Static schedule verification — the pulse-level analogue of an ISA's
//! legality checker.
//!
//! Compiling below the gate abstraction removes the safety net a gate-level
//! ISA provides: nothing in the type system stops a [`Schedule`] from
//! playing two envelopes at once on one channel, driving a qubit after its
//! measurement window has opened, or addressing a control channel that maps
//! to no coupled pair. [`verify`] checks all of that *statically* — a pure
//! pass over the timed instruction list plus a small device envelope
//! ([`VerifySpec`]) — and reports problems as typed [`ScheduleFinding`]s,
//! never a panic.
//!
//! The rule set (stable ids, pinned by [`RULES`]):
//!
//! | rule | meaning |
//! |---|---|
//! | `overlap` | two non-zero-duration windows intersect on one channel |
//! | `zero-duration` | a `Play`/`Delay`/`Acquire` spans zero samples |
//! | `misaligned-start` | a start time is not a multiple of `align_dt` |
//! | `over-amplitude` | an envelope's peak exceeds `max_amp` |
//! | `freq-out-of-band` | `SetFrequency` outside the device band |
//! | `freq-shift-excessive` | `ShiftFrequency` beyond `max_freq_shift` |
//! | `uncoupled-control` | `Control(k)` resolves to no coupled pair |
//! | `unknown-channel` | channel qubit index outside the device |
//! | `frame-on-acquire` | frame/frequency change on an acquire channel |
//! | `orphan-acquire` | `Acquire` with no overlapping measure stimulus |
//! | `post-measure-drive` | drive pulse after the measurement window opens |
//!
//! Negative durations are unrepresentable by construction (`u64` sample
//! counts), so the `zero-duration` rule covers the entire "non-positive
//! length" class.
//!
//! # Example
//!
//! ```
//! use quant_pulse::{verify, Channel, Constant, Instruction, Schedule, VerifySpec};
//!
//! let spec = VerifySpec::new(1, vec![]);
//! let mut schedule = Schedule::new("clash");
//! let pulse = Constant { duration: 160, amp: 0.1 }.waveform("p");
//! schedule.insert(0, Instruction::Play { waveform: pulse.clone(), channel: Channel::Drive(0) });
//! schedule.insert(80, Instruction::Play { waveform: pulse, channel: Channel::Drive(0) });
//!
//! let findings = verify(&schedule, &spec);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "overlap");
//! ```

use crate::schedule::{Channel, Instruction, Schedule};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identifiers of every verifier rule, in documentation order.
pub const RULES: [&str; 11] = [
    "overlap",
    "zero-duration",
    "misaligned-start",
    "over-amplitude",
    "freq-out-of-band",
    "freq-shift-excessive",
    "uncoupled-control",
    "unknown-channel",
    "frame-on-acquire",
    "orphan-acquire",
    "post-measure-drive",
];

/// Absolute tolerance for amplitude bounds, matching the slack
/// [`crate::Waveform::new`] grants numerically-1.0 envelopes.
const AMP_EPS: f64 = 1e-9;

/// The device envelope a schedule is checked against.
///
/// This is a deliberately small value type (no device-crate dependency) so
/// the verifier can run anywhere a [`Schedule`] exists; backends construct
/// it from their physical model (`DeviceModel::verify_spec()`).
#[derive(Clone, Debug, PartialEq)]
pub struct VerifySpec {
    /// Number of qubits; `Drive/Measure/Acquire(q)` require `q` below this.
    pub num_qubits: u32,
    /// Coupled `(control, target)` pairs; `Control(k)` must index into
    /// this list and both endpoints must be valid qubits.
    pub control_pairs: Vec<(u32, u32)>,
    /// Maximum envelope peak amplitude (hardware full scale is 1.0).
    pub max_amp: f64,
    /// Allowed absolute local-oscillator band `(lo, hi)` in Hz for
    /// `SetFrequency`.
    pub freq_band: (f64, f64),
    /// Maximum `|delta|` in Hz for a single `ShiftFrequency`.
    pub max_freq_shift: f64,
    /// Start-time granularity: every start must be a multiple of this.
    pub align_dt: u64,
}

impl VerifySpec {
    /// A permissive spec: full-scale amplitude, unbounded frequency band,
    /// sample-granular alignment. Tighten fields as the device requires.
    pub fn new(num_qubits: u32, control_pairs: Vec<(u32, u32)>) -> Self {
        VerifySpec {
            num_qubits,
            control_pairs,
            max_amp: 1.0,
            freq_band: (0.0, f64::INFINITY),
            max_freq_shift: f64::INFINITY,
            align_dt: 1,
        }
    }
}

/// One verifier finding: a rule violation pinned to a channel and a
/// half-open `dt` window.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleFinding {
    /// Stable rule id from [`RULES`].
    pub rule: &'static str,
    /// The offending channel.
    pub channel: Channel,
    /// Window start in `dt` samples.
    pub start: u64,
    /// Window end in `dt` samples (half-open; equals `start` for
    /// zero-duration instructions).
    pub end: u64,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for ScheduleFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @ [{}, {}): {}",
            self.rule, self.channel, self.start, self.end, self.message
        )
    }
}

/// The qubit index a channel addresses (`Control` channels address none).
fn channel_qubit(channel: Channel) -> Option<u32> {
    match channel {
        Channel::Drive(q) | Channel::Measure(q) | Channel::Acquire(q) => Some(q),
        Channel::Control(_) => None,
    }
}

/// Statically verifies `schedule` against `spec`.
///
/// Returns every violation as a typed finding, sorted by
/// `(channel, start, rule)` so output is deterministic regardless of rule
/// evaluation order. An empty vector means the schedule is clean. This
/// function never panics and performs no I/O.
pub fn verify(schedule: &Schedule, spec: &VerifySpec) -> Vec<ScheduleFinding> {
    let mut findings = Vec::new();
    // Per-channel end of the latest non-zero-duration window seen so far,
    // with the window it came from (instructions are sorted by start).
    let mut busy: BTreeMap<Channel, (u64, u64)> = BTreeMap::new();
    // Per-qubit earliest opening of a measurement window (measure stimulus
    // or acquisition), for the measurement-discipline rules.
    let mut measure_open: BTreeMap<u32, u64> = BTreeMap::new();
    // Measure-stimulus windows per qubit, to pair acquires against.
    let mut stimulus: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();

    for ti in schedule.instructions() {
        let channel = ti.instruction.channel();
        let dur = ti.instruction.duration();
        let (start, end) = (ti.start, ti.start.saturating_add(dur));
        match channel {
            Channel::Measure(q) if dur > 0 => {
                let open = measure_open.entry(q).or_insert(start);
                *open = (*open).min(start);
                if let Instruction::Play { .. } = ti.instruction {
                    stimulus.entry(q).or_default().push((start, end));
                }
            }
            Channel::Acquire(_) => {
                if let Instruction::Acquire { qubit, .. } = &ti.instruction {
                    let open = measure_open.entry(*qubit).or_insert(start);
                    *open = (*open).min(start);
                }
            }
            _ => {}
        }
    }

    for ti in schedule.instructions() {
        let channel = ti.instruction.channel();
        let dur = ti.instruction.duration();
        let (start, end) = (ti.start, ti.start.saturating_add(dur));
        let window = |rule: &'static str, message: String| ScheduleFinding {
            rule,
            channel,
            start,
            end,
            message,
        };

        // (3) Topology: every channel must exist on the device.
        match channel {
            Channel::Control(k) => {
                let pair = spec.control_pairs.get(k as usize);
                let valid = pair
                    .is_some_and(|&(c, t)| c < spec.num_qubits && t < spec.num_qubits && c != t);
                if !valid {
                    findings.push(window(
                        "uncoupled-control",
                        match pair {
                            Some(&(c, t)) => {
                                format!("control channel u{k} maps to invalid pair ({c}, {t})")
                            }
                            None => format!(
                                "control channel u{k} has no coupled pair (device has {})",
                                spec.control_pairs.len()
                            ),
                        },
                    ));
                }
            }
            _ => {
                if let Some(q) = channel_qubit(channel) {
                    if q >= spec.num_qubits {
                        findings.push(window(
                            "unknown-channel",
                            format!(
                                "channel {channel} addresses qubit {q} on a {}-qubit device",
                                spec.num_qubits
                            ),
                        ));
                    }
                }
            }
        }

        // (1) Timing: alignment, duration, and per-channel exclusivity.
        if spec.align_dt > 1 && start % spec.align_dt != 0 {
            findings.push(window(
                "misaligned-start",
                format!(
                    "start {start} is not a multiple of align_dt {}",
                    spec.align_dt
                ),
            ));
        }
        let has_extent = matches!(
            ti.instruction,
            Instruction::Play { .. } | Instruction::Delay { .. } | Instruction::Acquire { .. }
        );
        if has_extent && dur == 0 {
            findings.push(window(
                "zero-duration",
                "instruction spans zero samples (negative lengths are unrepresentable)".to_string(),
            ));
        }
        if dur > 0 {
            if let Some(&(busy_start, busy_end)) = busy.get(&channel) {
                if start < busy_end {
                    findings.push(window(
                        "overlap",
                        format!(
                            "window [{start}, {end}) overlaps [{busy_start}, {busy_end}) on {channel}"
                        ),
                    ));
                }
            }
            let entry = busy.entry(channel).or_insert((start, end));
            if end > entry.1 {
                *entry = (start, end);
            }
        }

        // (2) Physical bounds and per-instruction rules.
        match &ti.instruction {
            Instruction::Play { waveform, .. } => {
                let peak = waveform.peak();
                if peak > spec.max_amp + AMP_EPS {
                    findings.push(window(
                        "over-amplitude",
                        format!(
                            "envelope '{}' peaks at {peak:.6} (limit {:.6})",
                            waveform.name(),
                            spec.max_amp
                        ),
                    ));
                }
                // (4) Measurement discipline: no drive after measurement.
                if let Channel::Drive(q) = channel {
                    if let Some(&open) = measure_open.get(&q) {
                        if start >= open {
                            findings.push(window(
                                "post-measure-drive",
                                format!(
                                    "drive pulse at {start} after qubit {q}'s measurement \
                                     window opened at {open}"
                                ),
                            ));
                        }
                    }
                }
            }
            Instruction::SetFrequency { frequency, .. } => {
                let (lo, hi) = spec.freq_band;
                if !(*frequency >= lo && *frequency <= hi) {
                    findings.push(window(
                        "freq-out-of-band",
                        format!("frequency {frequency:.3e} Hz outside band [{lo:.3e}, {hi:.3e}]"),
                    ));
                }
            }
            // A NaN shift is as out-of-spec as an oversized one.
            Instruction::ShiftFrequency { delta, .. }
                if delta.abs() > spec.max_freq_shift || delta.is_nan() =>
            {
                findings.push(window(
                    "freq-shift-excessive",
                    format!(
                        "frequency shift {delta:.3e} Hz exceeds limit {:.3e} Hz",
                        spec.max_freq_shift
                    ),
                ));
            }
            Instruction::Acquire { qubit, .. } => {
                let paired = stimulus
                    .get(qubit)
                    .is_some_and(|ws| ws.iter().any(|&(s, e)| s < end && start < e));
                if !paired {
                    findings.push(window(
                        "orphan-acquire",
                        format!("acquire of qubit {qubit} has no overlapping measure stimulus"),
                    ));
                }
            }
            _ => {}
        }

        // Frame/frequency changes make no sense on an acquisition channel;
        // Schedule accepts them structurally, so the verifier flags them.
        if matches!(channel, Channel::Acquire(_))
            && matches!(
                ti.instruction,
                Instruction::ShiftPhase { .. }
                    | Instruction::SetFrequency { .. }
                    | Instruction::ShiftFrequency { .. }
            )
        {
            findings.push(window(
                "frame-on-acquire",
                format!("frame/frequency change on acquisition channel {channel}"),
            ));
        }
    }

    findings.sort_by(|a, b| (a.channel, a.start, a.rule).cmp(&(b.channel, b.start, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::{Constant, Gaussian};

    fn spec2() -> VerifySpec {
        VerifySpec::new(2, vec![(0, 1), (1, 0)])
    }

    fn play(amp: f64, duration: u64, channel: Channel) -> Instruction {
        Instruction::Play {
            waveform: Constant { duration, amp }.waveform("p"),
            channel,
        }
    }

    fn only(findings: &[ScheduleFinding], rule: &str) -> ScheduleFinding {
        assert_eq!(
            findings.len(),
            1,
            "expected exactly one [{rule}] finding: {findings:?}"
        );
        assert_eq!(findings[0].rule, rule, "{findings:?}");
        findings[0].clone()
    }

    #[test]
    fn clean_two_qubit_schedule_verifies_clean() {
        let mut s = Schedule::new("clean");
        s.append(play(0.3, 160, Channel::Drive(0)));
        s.append(Instruction::ShiftPhase {
            phase: 1.2,
            channel: Channel::Drive(0),
        });
        s.append(play(0.3, 160, Channel::Drive(0)));
        s.append(play(0.2, 320, Channel::Control(0)));
        s.append(play(0.3, 160, Channel::Drive(1)));
        s.append(Instruction::Delay {
            duration: 64,
            channel: Channel::Drive(1),
        });
        assert!(verify(&s, &spec2()).is_empty());
    }

    #[test]
    fn overlapping_windows_on_one_channel_are_flagged() {
        let mut s = Schedule::new("overlap");
        s.insert(0, play(0.1, 160, Channel::Drive(0)));
        s.insert(100, play(0.1, 160, Channel::Drive(0)));
        let f = only(&verify(&s, &spec2()), "overlap");
        assert_eq!((f.channel, f.start, f.end), (Channel::Drive(0), 100, 260));
    }

    #[test]
    fn same_windows_on_different_channels_do_not_overlap() {
        let mut s = Schedule::new("parallel");
        s.insert(0, play(0.1, 160, Channel::Drive(0)));
        s.insert(0, play(0.1, 160, Channel::Drive(1)));
        s.insert(0, play(0.1, 160, Channel::Control(0)));
        assert!(verify(&s, &spec2()).is_empty());
    }

    #[test]
    fn overlap_is_caught_against_the_longest_prior_window() {
        // A long window followed by a short contained one, then a third
        // that clears the short one but not the long one.
        let mut s = Schedule::new("nested");
        s.insert(0, play(0.1, 400, Channel::Drive(0)));
        s.insert(100, play(0.1, 50, Channel::Drive(0)));
        s.insert(200, play(0.1, 50, Channel::Drive(0)));
        let findings = verify(&s, &spec2());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "overlap"));
        assert_eq!(findings[1].start, 200);
    }

    #[test]
    fn over_amplitude_pins_the_peak_and_window() {
        let mut spec = spec2();
        spec.max_amp = 0.5;
        let mut s = Schedule::new("hot");
        s.insert(32, play(0.8, 160, Channel::Drive(0)));
        let f = only(&verify(&s, &spec), "over-amplitude");
        assert_eq!((f.start, f.end), (32, 192));
        assert!(f.message.contains("0.8"), "{}", f.message);
    }

    #[test]
    fn full_scale_gaussian_is_within_default_bounds() {
        let mut s = Schedule::new("full");
        s.append(Instruction::Play {
            waveform: Gaussian {
                duration: 160,
                amp: 1.0,
                sigma: 40.0,
            }
            .waveform("g"),
            channel: Channel::Drive(0),
        });
        assert!(verify(&s, &spec2()).is_empty());
    }

    #[test]
    fn uncoupled_control_channel_is_flagged() {
        let mut s = Schedule::new("uncoupled");
        s.insert(0, play(0.1, 160, Channel::Control(5)));
        let f = only(&verify(&s, &spec2()), "uncoupled-control");
        assert_eq!((f.channel, f.start, f.end), (Channel::Control(5), 0, 160));
    }

    #[test]
    fn control_pair_with_out_of_range_qubit_is_flagged() {
        let spec = VerifySpec::new(2, vec![(0, 7)]);
        let mut s = Schedule::new("bad-pair");
        s.insert(0, play(0.1, 160, Channel::Control(0)));
        let f = only(&verify(&s, &spec), "uncoupled-control");
        assert!(f.message.contains("(0, 7)"), "{}", f.message);
    }

    #[test]
    fn orphan_acquire_is_flagged_and_paired_acquire_is_not() {
        let mut orphan = Schedule::new("orphan");
        orphan.insert(
            0,
            Instruction::Acquire {
                duration: 480,
                qubit: 0,
                channel: Channel::Acquire(0),
            },
        );
        let f = only(&verify(&orphan, &spec2()), "orphan-acquire");
        assert_eq!((f.channel, f.start, f.end), (Channel::Acquire(0), 0, 480));

        let mut paired = Schedule::new("paired");
        paired.insert(0, play(0.05, 480, Channel::Measure(0)));
        paired.insert(
            0,
            Instruction::Acquire {
                duration: 480,
                qubit: 0,
                channel: Channel::Acquire(0),
            },
        );
        assert!(verify(&paired, &spec2()).is_empty());
    }

    #[test]
    fn drive_after_measure_window_opens_is_flagged() {
        let mut s = Schedule::new("post-measure");
        s.insert(0, play(0.1, 160, Channel::Drive(0)));
        s.insert(160, play(0.05, 480, Channel::Measure(0)));
        s.insert(
            160,
            Instruction::Acquire {
                duration: 480,
                qubit: 0,
                channel: Channel::Acquire(0),
            },
        );
        s.insert(200, play(0.1, 160, Channel::Drive(0)));
        let f = only(&verify(&s, &spec2()), "post-measure-drive");
        assert_eq!((f.channel, f.start, f.end), (Channel::Drive(0), 200, 360));
        // The other qubit is still free to be driven.
        let mut other = s.clone();
        other.insert(400, play(0.1, 160, Channel::Drive(1)));
        assert_eq!(verify(&other, &spec2()).len(), 1);
    }

    #[test]
    fn misaligned_start_against_coarse_granularity() {
        let mut spec = spec2();
        spec.align_dt = 16;
        let mut s = Schedule::new("misaligned");
        s.insert(8, play(0.1, 160, Channel::Drive(0)));
        let f = only(&verify(&s, &spec), "misaligned-start");
        assert_eq!((f.start, f.end), (8, 168));
        // Aligned starts pass under the same spec.
        let mut ok = Schedule::new("aligned");
        ok.insert(16, play(0.1, 160, Channel::Drive(0)));
        assert!(verify(&ok, &spec).is_empty());
    }

    #[test]
    fn zero_duration_play_and_delay_are_flagged() {
        // Negative durations cannot be built at all (u64 sample counts);
        // the zero case is the entire degenerate class.
        let mut s = Schedule::new("degenerate");
        s.insert(0, play(0.1, 0, Channel::Drive(0)));
        s.insert(
            64,
            Instruction::Delay {
                duration: 0,
                channel: Channel::Drive(1),
            },
        );
        let findings = verify(&s, &spec2());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "zero-duration"));
        assert_eq!((findings[0].start, findings[0].end), (0, 0));
        assert_eq!((findings[1].start, findings[1].end), (64, 64));
    }

    #[test]
    fn unknown_channel_names_the_device_size() {
        let mut s = Schedule::new("unknown");
        s.insert(0, play(0.1, 160, Channel::Drive(7)));
        let f = only(&verify(&s, &spec2()), "unknown-channel");
        assert_eq!((f.channel, f.start, f.end), (Channel::Drive(7), 0, 160));
        assert!(f.message.contains("2-qubit"), "{}", f.message);
    }

    #[test]
    fn frame_change_on_acquire_channel_is_flagged() {
        // Regression: Schedule accepts ShiftPhase on an Acquire channel
        // without complaint; the verifier must catch it.
        let mut s = Schedule::new("frame-on-acquire");
        s.insert(
            0,
            Instruction::ShiftPhase {
                phase: 0.5,
                channel: Channel::Acquire(0),
            },
        );
        let f = only(&verify(&s, &spec2()), "frame-on-acquire");
        assert_eq!((f.channel, f.start, f.end), (Channel::Acquire(0), 0, 0));

        let mut setf = Schedule::new("setf-on-acquire");
        setf.insert(
            0,
            Instruction::SetFrequency {
                frequency: 5.0e9,
                channel: Channel::Acquire(1),
            },
        );
        let mut spec = spec2();
        spec.freq_band = (4.0e9, 6.0e9);
        assert_eq!(
            only(&verify(&setf, &spec), "frame-on-acquire").channel,
            Channel::Acquire(1)
        );
    }

    #[test]
    fn set_frequency_outside_the_band_is_flagged() {
        let mut spec = spec2();
        spec.freq_band = (4.5e9, 5.5e9);
        let mut s = Schedule::new("detuned");
        s.insert(
            0,
            Instruction::SetFrequency {
                frequency: 6.1e9,
                channel: Channel::Drive(0),
            },
        );
        let f = only(&verify(&s, &spec), "freq-out-of-band");
        assert_eq!((f.start, f.end), (0, 0));
        // NaN never satisfies the band check either.
        let mut nan = Schedule::new("nan");
        nan.insert(
            0,
            Instruction::SetFrequency {
                frequency: f64::NAN,
                channel: Channel::Drive(0),
            },
        );
        assert_eq!(
            only(&verify(&nan, &spec), "freq-out-of-band").rule,
            "freq-out-of-band"
        );
    }

    #[test]
    fn excessive_frequency_shift_is_flagged() {
        let mut spec = spec2();
        spec.max_freq_shift = 400.0e6;
        let mut s = Schedule::new("shifted");
        s.insert(
            0,
            Instruction::ShiftFrequency {
                delta: -1.2e9,
                channel: Channel::Drive(1),
            },
        );
        let f = only(&verify(&s, &spec), "freq-shift-excessive");
        assert_eq!(f.channel, Channel::Drive(1));
        // A qudit-addressing shift of |alpha| ~ 330 MHz stays legal.
        let mut ok = Schedule::new("qudit");
        ok.insert(
            0,
            Instruction::ShiftFrequency {
                delta: -330.0e6,
                channel: Channel::Drive(1),
            },
        );
        assert!(verify(&ok, &spec).is_empty());
    }

    #[test]
    fn findings_are_sorted_by_channel_then_start() {
        let mut spec = spec2();
        spec.max_amp = 0.5;
        let mut s = Schedule::new("multi");
        s.insert(0, play(0.8, 160, Channel::Drive(1)));
        s.insert(0, play(0.1, 160, Channel::Control(9)));
        s.insert(100, play(0.1, 160, Channel::Drive(1)));
        let findings = verify(&s, &spec);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["over-amplitude", "overlap", "uncoupled-control"],
            "{findings:?}"
        );
        let a = verify(&s, &spec);
        let b = verify(&s, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn finding_display_names_rule_channel_and_window() {
        let mut s = Schedule::new("display");
        s.insert(0, play(0.1, 160, Channel::Drive(7)));
        let f = only(&verify(&s, &spec2()), "unknown-channel");
        let text = f.to_string();
        assert!(
            text.starts_with("[unknown-channel] d7 @ [0, 160):"),
            "{text}"
        );
    }

    #[test]
    fn rule_table_matches_what_the_verifier_can_emit() {
        assert_eq!(RULES.len(), 11);
        let mut sorted = RULES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), RULES.len(), "duplicate rule ids");
    }
}
