//! OpenPulse-analog pulse intermediate representation.
//!
//! This crate models the paper's lowest compilation stage (Table 1, row 4):
//! complex-valued analog envelopes scheduled across drive/control/measure
//! channels, with zero-duration frame changes for virtual-Z gates and
//! frequency shifts for qudit subspace addressing.
//!
//! * [`Waveform`] and the parametric shapes ([`Gaussian`], [`Drag`],
//!   [`GaussianSquare`], [`Constant`]) — envelopes with the amplitude-scale
//!   and horizontal-stretch transforms the compiler's augmented basis gates
//!   are built from.
//! * [`Schedule`] / [`Instruction`] / [`Channel`] — timed instruction
//!   containers with per-channel alignment semantics.
//! * [`CmdDef`] — the backend-reported gate → schedule calibration library.
//! * [`verify`] — the static schedule verifier: timing, physical-bound,
//!   topology, and measurement-discipline checks as typed findings.
//!
//! # Example
//!
//! ```
//! use quant_pulse::{Channel, Drag, Instruction, Schedule};
//!
//! // The standard X gate: two Rx(90°) pulses back to back (71.1 ns)...
//! let rx90 = Drag { duration: 160, amp: 0.1, sigma: 40.0, beta: 1.2 };
//! let mut standard = Schedule::new("x_standard");
//! for _ in 0..2 {
//!     standard.append(Instruction::Play {
//!         waveform: rx90.waveform("rx90"),
//!         channel: Channel::Drive(0),
//!     });
//! }
//! // ...versus the DirectX gate: one Rx(180°) pulse (35.6 ns).
//! let rx180 = Drag { duration: 160, amp: 0.2, sigma: 40.0, beta: 1.2 };
//! let mut direct = Schedule::new("x_direct");
//! direct.append(Instruction::Play {
//!     waveform: rx180.waveform("rx180"),
//!     channel: Channel::Drive(0),
//! });
//! assert_eq!(standard.duration(), 2 * direct.duration());
//! ```

#![warn(missing_docs)]

mod library;
mod schedule;
pub mod verify;
mod waveform;

pub use library::{CmdDef, CmdKey};
pub use schedule::{Channel, Instruction, Schedule, TimedInstruction};
pub use verify::{verify, ScheduleFinding, VerifySpec, RULES as VERIFY_RULES};
pub use waveform::{Constant, Drag, Gaussian, GaussianSquare, Waveform};
