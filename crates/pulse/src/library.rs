//! The `cmd_def` pulse library: calibrated gate → schedule translations.
//!
//! OpenPulse backends report the pulse schedule implementing each basis gate
//! on each qubit (tuple). The paper's compiler *reads* these entries to
//! extract hardware primitives (the pre-calibrated `Rx(180°)` pulse, the
//! echoed-CR components inside CNOT) and *writes* new entries for its
//! augmented basis gates (`DirectX`, `DirectRx(θ)` templates, `CR(θ)`).

use crate::schedule::Schedule;
use std::collections::BTreeMap;
use std::fmt;

/// Key identifying one calibration entry: a gate name applied to an ordered
/// qubit tuple.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdKey {
    /// Gate name, e.g. `"x"`, `"u3"`, `"cx"`, `"direct_x"`, `"cr"`.
    pub name: String,
    /// Ordered qubit operands.
    pub qubits: Vec<u32>,
}

impl CmdKey {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, qubits: &[u32]) -> Self {
        CmdKey {
            name: name.into(),
            qubits: qubits.to_vec(),
        }
    }
}

impl fmt::Display for CmdKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        write!(f, ")")
    }
}

/// The backend-reported gate → pulse-schedule mapping.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CmdDef {
    entries: BTreeMap<CmdKey, Schedule>,
}

impl CmdDef {
    /// Creates an empty library.
    pub fn new() -> Self {
        CmdDef::default()
    }

    /// Registers (or replaces) a calibration entry.
    pub fn insert(&mut self, key: CmdKey, schedule: Schedule) -> Option<Schedule> {
        self.entries.insert(key, schedule)
    }

    /// Looks up the schedule for a gate on specific qubits.
    pub fn get(&self, name: &str, qubits: &[u32]) -> Option<&Schedule> {
        self.entries.get(&CmdKey::new(name, qubits))
    }

    /// Whether an entry exists.
    pub fn contains(&self, name: &str, qubits: &[u32]) -> bool {
        self.get(name, qubits).is_some()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&CmdKey, &Schedule)> {
        self.entries.iter()
    }

    /// Number of calibration entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All gate names with at least one entry.
    pub fn gate_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.keys().map(|k| k.name.as_str()).collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Channel, Instruction};
    use crate::waveform::Gaussian;

    fn sched(dur: u64) -> Schedule {
        let mut s = Schedule::new("s");
        s.append(Instruction::Play {
            waveform: Gaussian {
                duration: dur,
                amp: 0.1,
                sigma: dur as f64 / 4.0,
            }
            .waveform("g"),
            channel: Channel::Drive(0),
        });
        s
    }

    #[test]
    fn insert_and_lookup() {
        let mut lib = CmdDef::new();
        lib.insert(CmdKey::new("x", &[0]), sched(160));
        lib.insert(CmdKey::new("x", &[1]), sched(160));
        lib.insert(CmdKey::new("cx", &[0, 1]), sched(1000));
        assert!(lib.contains("x", &[0]));
        assert!(!lib.contains("x", &[2]));
        assert!(lib.contains("cx", &[0, 1]));
        // Order matters for two-qubit entries.
        assert!(!lib.contains("cx", &[1, 0]));
        assert_eq!(lib.len(), 3);
        assert_eq!(lib.gate_names(), vec!["cx", "x"]);
    }

    #[test]
    fn replace_returns_old_entry() {
        let mut lib = CmdDef::new();
        lib.insert(CmdKey::new("x", &[0]), sched(160));
        let old = lib.insert(CmdKey::new("x", &[0]), sched(80));
        assert_eq!(old.unwrap().duration(), 160);
        assert_eq!(lib.get("x", &[0]).unwrap().duration(), 80);
    }

    #[test]
    fn display_format() {
        let key = CmdKey::new("cx", &[3, 7]);
        assert_eq!(key.to_string(), "cx(q3,q7)");
    }
}
