//! Pulse envelopes.
//!
//! A [`Waveform`] is a named sequence of complex samples, one per `dt`
//! (0.22 ns on Almaden's AWG), norm-bounded by 1. Parametric shapes —
//! [`Gaussian`], [`Drag`], [`GaussianSquare`], [`Constant`] — render to
//! waveforms and support the two pulse transformations the paper's compiler
//! is built on:
//!
//! * **amplitude scaling** (Optimization 1: `DirectRx(θ)` downscales the
//!   calibrated `Rx(180°)` DRAG pulse by `θ/180°`), and
//! * **horizontal stretching** (Optimization 3: `CR(θ)` stretches the
//!   flat-top of the calibrated echoed-CR GaussianSquare).

use quant_math::C64;

/// A sampled complex envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Waveform {
    name: String,
    samples: Vec<C64>,
}

impl Waveform {
    /// Creates a waveform from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample has modulus greater than 1 + 1e-9 (the AWG's
    /// norm constraint `|d_j(t)| ≤ 1`).
    pub fn new(name: impl Into<String>, samples: Vec<C64>) -> Self {
        let name = name.into();
        for (i, s) in samples.iter().enumerate() {
            assert!(
                s.abs() <= 1.0 + 1e-9,
                "waveform '{name}' sample {i} violates |d(t)| ≤ 1: {}",
                s.abs()
            );
        }
        Waveform { name, samples }
    }

    /// Waveform name (for display and cmd_def bookkeeping).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The complex samples.
    pub fn samples(&self) -> &[C64] {
        &self.samples
    }

    /// Duration in `dt` units (number of samples).
    pub fn duration(&self) -> u64 {
        self.samples.len() as u64
    }

    /// A 64-bit FNV-1a content hash over the exact sample bits (length
    /// included, name excluded — the name is display bookkeeping and never
    /// enters the physics).
    ///
    /// Two waveforms with equal hashes integrate identically except for a
    /// hash collision, whose probability over `n` distinct waveforms is
    /// ≈ n²/2⁶⁵ (~10⁻¹³ for the few thousand probe pulses of a device
    /// calibration). Callers that cannot tolerate even that (the executor's
    /// pulse-cache keys) fold the full sample bits instead; the calibration
    /// probe cache uses this hash for compact keys.
    pub fn content_hash64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        fn fold(mut h: u64, word: u64) -> u64 {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = fold(OFFSET, self.samples.len() as u64);
        for s in &self.samples {
            h = fold(h, s.re.to_bits());
            h = fold(h, s.im.to_bits());
        }
        h
    }

    /// Complex area under the envelope, `Σ samples` (in `dt` units).
    ///
    /// To first order this determines the rotation angle a resonant pulse
    /// applies — the quantity Fig. 4 equates between the standard and direct
    /// X-gate schedules.
    pub fn area(&self) -> C64 {
        self.samples.iter().copied().sum()
    }

    /// Absolute area `Σ|samples|`.
    pub fn abs_area(&self) -> f64 {
        self.samples.iter().map(|s| s.abs()).sum()
    }

    /// Peak amplitude `max |samples|`.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.abs()).fold(0.0, f64::max)
    }

    /// Returns a copy with every sample multiplied by a real factor
    /// (vertical/amplitude scaling).
    pub fn scaled(&self, factor: f64) -> Waveform {
        Waveform::new(
            format!("{}*{factor:.4}", self.name),
            self.samples.iter().map(|&s| s * factor).collect(),
        )
    }

    /// Returns a copy with every sample multiplied by a complex factor
    /// (amplitude scaling plus a phase rotation).
    pub fn scaled_complex(&self, factor: C64) -> Waveform {
        Waveform::new(
            format!("{}*z", self.name),
            self.samples.iter().map(|&s| s * factor).collect(),
        )
    }

    /// Returns the time-reversed, conjugated waveform (the "echo" partner).
    pub fn reversed_conj(&self) -> Waveform {
        let mut samples: Vec<C64> = self.samples.iter().map(|s| s.conj()).collect();
        samples.reverse();
        Waveform::new(format!("{}_rev", self.name), samples)
    }

    /// Returns a copy negated in amplitude (180° phase flip), as used by the
    /// active-cancellation half of an echoed CR pulse.
    pub fn negated(&self) -> Waveform {
        self.scaled(-1.0)
    }
}

/// A Gaussian envelope `amp · exp(−(t−μ)²/2σ²)`, centred in its duration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gaussian {
    /// Duration in `dt` samples.
    pub duration: u64,
    /// Peak complex amplitude (|amp| ≤ 1).
    pub amp: f64,
    /// Standard deviation in `dt` samples.
    pub sigma: f64,
}

impl Gaussian {
    /// Renders to samples.
    ///
    /// The envelope is *lifted* (edge value subtracted and rescaled, as in
    /// Qiskit's `Gaussian`), so the pulse starts and ends at exactly zero —
    /// otherwise the truncation step itself causes spectral leakage no DRAG
    /// correction can remove.
    pub fn waveform(&self, name: impl Into<String>) -> Waveform {
        let mu = (self.duration as f64 - 1.0) / 2.0;
        let s2 = 2.0 * self.sigma * self.sigma;
        let edge = {
            let d = -1.0 - mu;
            (-d * d / s2).exp()
        };
        let samples = (0..self.duration)
            .map(|t| {
                let dt = t as f64 - mu;
                let g = (-dt * dt / s2).exp();
                C64::real(self.amp * (g - edge) / (1.0 - edge))
            })
            .collect();
        Waveform::new(name, samples)
    }
}

/// A DRAG envelope: Gaussian with a derivative-weighted imaginary component
/// `−i·β·dG/dt`, which cancels leakage to the |2⟩ level (Motzoi et al.).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Drag {
    /// Duration in `dt` samples.
    pub duration: u64,
    /// Peak amplitude.
    pub amp: f64,
    /// Gaussian width in `dt` samples.
    pub sigma: f64,
    /// DRAG coefficient β (units of `dt`).
    pub beta: f64,
}

impl Drag {
    /// Renders to samples (lifted, like [`Gaussian`]). The imaginary part is
    /// `β · d/dt` of the *lifted* real part, so it also vanishes at the
    /// edges.
    pub fn waveform(&self, name: impl Into<String>) -> Waveform {
        self.waveform_detuned(name, 0.0)
    }

    /// Renders with a baked-in carrier detuning of `rad_per_sample` radians
    /// per `dt` (the AC-Stark compensation offset calibrated alongside the
    /// pulse amplitude). The samples are multiplied by
    /// `e^{-i·rad_per_sample·k}`, matching the device integrator's
    /// `ShiftFrequency` sign convention.
    pub fn waveform_detuned(&self, name: impl Into<String>, rad_per_sample: f64) -> Waveform {
        let mu = (self.duration as f64 - 1.0) / 2.0;
        let s2 = self.sigma * self.sigma;
        let edge = {
            let d = -1.0 - mu;
            (-d * d / (2.0 * s2)).exp()
        };
        let samples = (0..self.duration)
            .map(|t| {
                let dt = t as f64 - mu;
                let g0 = (-dt * dt / (2.0 * s2)).exp();
                let g = self.amp * (g0 - edge) / (1.0 - edge);
                let dg = self.amp * (-dt / s2 * g0) / (1.0 - edge);
                C64::new(g, self.beta * dg) * C64::cis(-rad_per_sample * t as f64)
            })
            .collect();
        Waveform::new(name, samples)
    }
}

/// A flat-top pulse with Gaussian rise/fall: the shape of cross-resonance
/// drive pulses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianSquare {
    /// Total duration in `dt` samples.
    pub duration: u64,
    /// Flat-top amplitude.
    pub amp: f64,
    /// Gaussian edge width in `dt` samples.
    pub sigma: f64,
    /// Flat-top width in `dt` samples (`width ≤ duration`).
    pub width: u64,
}

impl GaussianSquare {
    /// Renders to samples.
    ///
    /// # Panics
    ///
    /// Panics when `width > duration`.
    pub fn waveform(&self, name: impl Into<String>) -> Waveform {
        assert!(self.width <= self.duration, "flat-top wider than pulse");
        let ramp = (self.duration - self.width) as f64 / 2.0;
        let rise_end = ramp;
        let fall_start = ramp + self.width as f64;
        let s2 = self.sigma * self.sigma;
        // Lifted edges (see `Gaussian::waveform`).
        let edge = (-(ramp + 1.0) * (ramp + 1.0) / (2.0 * s2)).exp();
        let lift = |g: f64| (g - edge) / (1.0 - edge);
        let samples = (0..self.duration)
            .map(|t| {
                let t = t as f64;
                let v = if t < rise_end {
                    let d = t - rise_end;
                    self.amp * lift((-d * d / (2.0 * s2)).exp())
                } else if t < fall_start {
                    self.amp
                } else {
                    let d = t - fall_start;
                    self.amp * lift((-d * d / (2.0 * s2)).exp())
                };
                C64::real(v)
            })
            .collect();
        Waveform::new(name, samples)
    }

    /// Horizontal stretch: returns a pulse whose *flat-top* is scaled so
    /// the total area is `factor` times the original — the paper's
    /// mechanism for building `CR(θ)` from the calibrated `CR(90°)` pulse.
    ///
    /// The Gaussian edges are preserved; only the width changes. `factor`
    /// may be < 1 (compression) as long as the resulting width is
    /// non-negative.
    pub fn stretched_area(&self, factor: f64) -> GaussianSquare {
        assert!(factor >= 0.0, "stretch factor must be non-negative");
        let edge_area = {
            // Area contributed by the two Gaussian ramps (analytic ≈ σ√(2π)
            // for full tails; compute numerically from the rendered shape).
            let no_top = GaussianSquare {
                width: 0,
                duration: self.duration - self.width,
                ..*self
            };
            no_top.waveform("edges").area().re
        };
        let total = edge_area + self.width as f64 * self.amp;
        let target = total * factor;
        if target < edge_area {
            // The requested area is below what the Gaussian edges alone
            // carry: shrink vertically instead (small-angle CR pulses).
            return GaussianSquare {
                duration: self.duration - self.width,
                width: 0,
                amp: self.amp * target / edge_area,
                ..*self
            };
        }
        let new_width = ((target - edge_area) / self.amp).round().max(0.0) as u64;
        GaussianSquare {
            duration: self.duration - self.width + new_width,
            width: new_width,
            ..*self
        }
    }
}

/// A constant (square) envelope.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constant {
    /// Duration in `dt` samples.
    pub duration: u64,
    /// Complex amplitude.
    pub amp: f64,
}

impl Constant {
    /// Renders to samples.
    pub fn waveform(&self, name: impl Into<String>) -> Waveform {
        Waveform::new(name, vec![C64::real(self.amp); self.duration as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_symmetry_and_peak() {
        let g = Gaussian {
            duration: 160,
            amp: 0.2,
            sigma: 40.0,
        };
        let w = g.waveform("g");
        assert_eq!(w.duration(), 160);
        // The centre falls between two samples, so the peak is marginally
        // below the nominal amplitude.
        assert!((w.peak() - 0.2).abs() < 1e-4);
        // Symmetric about the centre.
        let s = w.samples();
        for i in 0..80 {
            assert!((s[i].re - s[159 - i].re).abs() < 1e-12);
        }
    }

    #[test]
    fn content_hash_tracks_samples_not_name() {
        let g = Gaussian {
            duration: 64,
            amp: 0.3,
            sigma: 16.0,
        };
        let a = g.waveform("a");
        let b = g.waveform("some-other-name");
        assert_eq!(a.content_hash64(), b.content_hash64());
        // A one-ulp sample change must change the hash.
        let mut samples = a.samples().to_vec();
        samples[10].re = f64::from_bits(samples[10].re.to_bits() + 1);
        let c = Waveform::new("a", samples);
        assert_ne!(a.content_hash64(), c.content_hash64());
        // Truncation changes the length word even if all samples match.
        let d = Waveform::new("a", a.samples()[..32].to_vec());
        assert_ne!(a.content_hash64(), d.content_hash64());
    }

    #[test]
    fn amplitude_scaling_scales_area_linearly() {
        let g = Gaussian {
            duration: 160,
            amp: 0.4,
            sigma: 40.0,
        };
        let w = g.waveform("g");
        let half = w.scaled(0.5);
        assert!((half.area().re - w.area().re * 0.5).abs() < 1e-9);
        assert!((half.peak() - 0.2).abs() < 1e-4);
    }

    #[test]
    fn drag_has_odd_imaginary_part() {
        let d = Drag {
            duration: 160,
            amp: 0.2,
            sigma: 40.0,
            beta: 1.5,
        };
        let w = d.waveform("drag");
        let s = w.samples();
        // Imag part is the derivative: antisymmetric about the centre.
        for i in 0..80 {
            assert!((s[i].im + s[159 - i].im).abs() < 1e-9);
        }
        // Total imaginary area ≈ 0.
        assert!(w.area().im.abs() < 1e-9);
    }

    #[test]
    fn gaussian_square_flat_top() {
        let gs = GaussianSquare {
            duration: 400,
            amp: 0.3,
            sigma: 20.0,
            width: 240,
        };
        let w = gs.waveform("cr");
        // Middle samples sit at the flat-top amplitude.
        assert!((w.samples()[200].re - 0.3).abs() < 1e-12);
        assert!((w.peak() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stretched_area_hits_target_factor() {
        let gs = GaussianSquare {
            duration: 400,
            amp: 0.3,
            sigma: 20.0,
            width: 240,
        };
        let orig_area = gs.waveform("a").area().re;
        for factor in [0.25, 0.5, 1.0, 1.5, 2.0] {
            let stretched = gs.stretched_area(factor);
            let area = stretched.waveform("b").area().re;
            assert!(
                (area - orig_area * factor).abs() < gs.amp * 1.0,
                "factor {factor}: area {area} vs target {}",
                orig_area * factor
            );
        }
    }

    #[test]
    fn stretch_changes_duration_not_amplitude() {
        let gs = GaussianSquare {
            duration: 400,
            amp: 0.3,
            sigma: 20.0,
            width: 240,
        };
        let half = gs.stretched_area(0.5);
        assert!(half.duration < gs.duration);
        assert_eq!(half.amp, gs.amp);
        let double = gs.stretched_area(2.0);
        assert!(double.duration > gs.duration);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn waveform_rejects_overdriven_samples() {
        Waveform::new("bad", vec![C64::real(1.5)]);
    }

    #[test]
    fn reversed_conj_round_trip() {
        let d = Drag {
            duration: 64,
            amp: 0.5,
            sigma: 16.0,
            beta: 0.7,
        };
        let w = d.waveform("w");
        let back = w.reversed_conj().reversed_conj();
        for (a, b) in w.samples().iter().zip(back.samples()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn constant_area() {
        let c = Constant {
            duration: 35,
            amp: 0.44,
        };
        let w = c.waveform("c");
        assert!((w.area().re - 35.0 * 0.44).abs() < 1e-9);
    }
}
