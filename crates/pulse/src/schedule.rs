//! Channels, instructions, and timed pulse schedules.
//!
//! Mirrors the OpenPulse model: a [`Schedule`] is a set of instructions with
//! absolute start times (in `dt` units) on named [`Channel`]s. `Rz` gates
//! compile to zero-duration [`Instruction::ShiftPhase`] frame changes
//! (virtual-Z); qudit addressing uses [`Instruction::SetFrequency`] /
//! [`Instruction::ShiftFrequency`] to retarget the local oscillator.

use crate::waveform::Waveform;
use std::collections::BTreeMap;
use std::fmt;

/// A hardware channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Qubit drive channel `d<q>` — resonant single-qubit microwave drive.
    Drive(u32),
    /// Control channel `u<k>` — cross-resonance drive (control qubit driven
    /// at the target qubit's frequency).
    Control(u32),
    /// Measurement stimulus channel `m<q>`.
    Measure(u32),
    /// Acquisition channel `a<q>`.
    Acquire(u32),
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Drive(q) => write!(f, "d{q}"),
            Channel::Control(k) => write!(f, "u{k}"),
            Channel::Measure(q) => write!(f, "m{q}"),
            Channel::Acquire(q) => write!(f, "a{q}"),
        }
    }
}

/// One schedule instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instruction {
    /// Emit a waveform on a channel.
    Play {
        /// The envelope to play.
        waveform: Waveform,
        /// Output channel.
        channel: Channel,
    },
    /// Zero-duration frame change: advance the channel's phase by `phase`
    /// radians. This is how virtual-Z gates are realized.
    ShiftPhase {
        /// Phase advance in radians.
        phase: f64,
        /// Affected channel.
        channel: Channel,
    },
    /// Set the channel's local-oscillator frequency (Hz).
    SetFrequency {
        /// New absolute LO frequency in Hz.
        frequency: f64,
        /// Affected channel.
        channel: Channel,
    },
    /// Shift the channel's local-oscillator frequency by `delta` Hz —
    /// the paper's mechanism for addressing the |1⟩→|2⟩ (f12) and |0⟩→|2⟩
    /// (f02/2) qudit transitions.
    ShiftFrequency {
        /// Frequency offset in Hz.
        delta: f64,
        /// Affected channel.
        channel: Channel,
    },
    /// Idle for `duration` samples on a channel (explicit NO-OP padding, as
    /// used by the paper's "optimized-slow" Fig. 13 variant).
    Delay {
        /// Idle time in `dt` samples.
        duration: u64,
        /// Affected channel.
        channel: Channel,
    },
    /// Trigger readout of a qubit.
    Acquire {
        /// Measurement window in `dt` samples.
        duration: u64,
        /// Qubit index being read out.
        qubit: u32,
        /// Acquisition channel.
        channel: Channel,
    },
}

impl Instruction {
    /// The channel the instruction acts on.
    pub fn channel(&self) -> Channel {
        match self {
            Instruction::Play { channel, .. }
            | Instruction::ShiftPhase { channel, .. }
            | Instruction::SetFrequency { channel, .. }
            | Instruction::ShiftFrequency { channel, .. }
            | Instruction::Delay { channel, .. }
            | Instruction::Acquire { channel, .. } => *channel,
        }
    }

    /// Duration in `dt` samples (zero for frame/frequency changes).
    pub fn duration(&self) -> u64 {
        match self {
            Instruction::Play { waveform, .. } => waveform.duration(),
            Instruction::ShiftPhase { .. }
            | Instruction::SetFrequency { .. }
            | Instruction::ShiftFrequency { .. } => 0,
            Instruction::Delay { duration, .. } | Instruction::Acquire { duration, .. } => {
                *duration
            }
        }
    }
}

/// A timed instruction within a schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedInstruction {
    /// Absolute start time in `dt` samples.
    pub start: u64,
    /// The instruction.
    pub instruction: Instruction,
}

/// A pulse schedule: instructions with absolute start times.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    name: String,
    instructions: Vec<TimedInstruction>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(name: impl Into<String>) -> Self {
        Schedule {
            name: name.into(),
            instructions: Vec::new(),
        }
    }

    /// Schedule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the schedule in place, returning `self` for chaining.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// All timed instructions, sorted by start time (stable for ties).
    pub fn instructions(&self) -> &[TimedInstruction] {
        &self.instructions
    }

    /// Inserts an instruction at an absolute time (after any instructions
    /// already at that time).
    pub fn insert(&mut self, start: u64, instruction: Instruction) {
        let pos = self.instructions.partition_point(|ti| ti.start <= start);
        self.instructions
            .insert(pos, TimedInstruction { start, instruction });
    }

    /// Inserts an instruction at time 0, *before* everything else —
    /// needed for entry frame changes that must precede t = 0 pulses.
    pub fn prepend(&mut self, instruction: Instruction) {
        self.instructions.insert(
            0,
            TimedInstruction {
                start: 0,
                instruction,
            },
        );
    }

    /// Appends an instruction at the current end of its channel
    /// (left-aligned, per-channel sequencing).
    pub fn append(&mut self, instruction: Instruction) {
        let t = self.channel_duration(instruction.channel());
        self.insert(t, instruction);
    }

    /// Appends an instruction after *all* channels in `barrier` have
    /// finished — models a multi-channel barrier such as the start of a
    /// two-qubit pulse block.
    pub fn append_after(&mut self, instruction: Instruction, barrier: &[Channel]) {
        let t = barrier
            .iter()
            .map(|&c| self.channel_duration(c))
            .max()
            .unwrap_or(0);
        self.insert(
            t.max(self.channel_duration(instruction.channel())),
            instruction,
        );
    }

    /// Appends an entire schedule, shifted so it begins after every channel
    /// it uses has finished in `self` (Qiskit's `Schedule.append` with
    /// left alignment).
    pub fn append_schedule(&mut self, other: &Schedule) {
        let offset = other
            .channels()
            .into_iter()
            .map(|c| self.channel_duration(c))
            .max()
            .unwrap_or(0);
        for ti in &other.instructions {
            self.insert(offset + ti.start, ti.instruction.clone());
        }
    }

    /// Inserts an entire schedule at an absolute offset.
    pub fn insert_schedule(&mut self, offset: u64, other: &Schedule) {
        for ti in &other.instructions {
            self.insert(offset + ti.start, ti.instruction.clone());
        }
    }

    /// Returns a copy shifted later by `offset` samples.
    pub fn shifted(&self, offset: u64) -> Schedule {
        Schedule {
            name: self.name.clone(),
            instructions: self
                .instructions
                .iter()
                .map(|ti| TimedInstruction {
                    start: ti.start + offset,
                    instruction: ti.instruction.clone(),
                })
                .collect(),
        }
    }

    /// Total duration: the latest instruction end over all channels.
    pub fn duration(&self) -> u64 {
        self.instructions
            .iter()
            .map(|ti| ti.start + ti.instruction.duration())
            .max()
            .unwrap_or(0)
    }

    /// End time of the busiest point on one channel.
    pub fn channel_duration(&self, channel: Channel) -> u64 {
        self.instructions
            .iter()
            .filter(|ti| ti.instruction.channel() == channel)
            .map(|ti| ti.start + ti.instruction.duration())
            .max()
            .unwrap_or(0)
    }

    /// The set of channels used, sorted.
    pub fn channels(&self) -> Vec<Channel> {
        let mut set: Vec<Channel> = self
            .instructions
            .iter()
            .map(|ti| ti.instruction.channel())
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// Number of `Play` instructions (pulse count) — the unit of §5's
    /// cancellation accounting.
    pub fn pulse_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|ti| matches!(ti.instruction, Instruction::Play { .. }))
            .count()
    }

    /// Timed instructions grouped per channel, each sorted by start time.
    pub fn per_channel(&self) -> BTreeMap<Channel, Vec<&TimedInstruction>> {
        let mut map: BTreeMap<Channel, Vec<&TimedInstruction>> = BTreeMap::new();
        for ti in &self.instructions {
            map.entry(ti.instruction.channel()).or_default().push(ti);
        }
        map
    }

    /// Rasterizes one channel into per-`dt` complex samples over the whole
    /// schedule duration (overlapping plays add). Frame and frequency
    /// instructions are *not* resolved — this is the raw envelope stream,
    /// the quantity the paper's pulse-schedule figures plot.
    pub fn rasterize(&self, channel: Channel) -> Vec<quant_math::C64> {
        let total = self.duration() as usize;
        let mut samples = vec![quant_math::C64::ZERO; total];
        for ti in self.instructions() {
            if ti.instruction.channel() != channel {
                continue;
            }
            if let Instruction::Play { waveform, .. } = &ti.instruction {
                for (k, &s) in waveform.samples().iter().enumerate() {
                    samples[ti.start as usize + k] += s;
                }
            }
        }
        samples
    }

    /// Exports the schedule as CSV: one row per `dt` sample, one
    /// (re, im) column pair per channel. Paste into any plotting tool to
    /// regenerate the paper's pulse-schedule figures graphically.
    pub fn to_csv(&self) -> String {
        let channels = self.channels();
        let rasters: Vec<Vec<quant_math::C64>> =
            channels.iter().map(|&ch| self.rasterize(ch)).collect();
        let mut out = String::from("t_dt");
        for ch in &channels {
            out.push_str(&format!(",{ch}_re,{ch}_im"));
        }
        out.push('\n');
        for t in 0..self.duration() as usize {
            out.push_str(&t.to_string());
            for raster in &rasters {
                let s = raster.get(t).copied().unwrap_or(quant_math::C64::ZERO);
                out.push_str(&format!(",{:.6},{:.6}", s.re, s.im));
            }
            out.push('\n');
        }
        out
    }

    /// Renders an ASCII timeline, one row per channel — the textual stand-in
    /// for the paper's pulse-schedule figures.
    pub fn ascii_art(&self, cols: usize) -> String {
        let total = self.duration().max(1);
        let mut out = String::new();
        for (ch, tis) in self.per_channel() {
            let mut row = vec![b'.'; cols];
            for ti in tis {
                let dur = ti.instruction.duration();
                let a = (ti.start as usize * cols) / total as usize;
                let b = (((ti.start + dur.max(1)) as usize * cols) / total as usize)
                    .min(cols)
                    .max(a + 1);
                let glyph = match ti.instruction {
                    Instruction::Play { .. } => b'#',
                    Instruction::ShiftPhase { .. } => b'z',
                    Instruction::SetFrequency { .. } | Instruction::ShiftFrequency { .. } => b'f',
                    Instruction::Delay { .. } => b'-',
                    Instruction::Acquire { .. } => b'M',
                };
                for slot in row.iter_mut().take(b.min(cols)).skip(a.min(cols - 1)) {
                    *slot = glyph;
                }
            }
            out.push_str(&format!("{ch:>4} |{}|\n", String::from_utf8_lossy(&row)));
        }
        out.push_str(&format!("      duration: {} dt\n", self.duration()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Gaussian;

    fn pulse(n: u64) -> Waveform {
        Gaussian {
            duration: n,
            amp: 0.1,
            sigma: n as f64 / 4.0,
        }
        .waveform("p")
    }

    #[test]
    fn append_sequences_per_channel() {
        let mut s = Schedule::new("test");
        s.append(Instruction::Play {
            waveform: pulse(160),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: pulse(160),
            channel: Channel::Drive(0),
        });
        // Different channel starts at 0 (parallel).
        s.append(Instruction::Play {
            waveform: pulse(100),
            channel: Channel::Drive(1),
        });
        assert_eq!(s.duration(), 320);
        assert_eq!(s.channel_duration(Channel::Drive(0)), 320);
        assert_eq!(s.channel_duration(Channel::Drive(1)), 100);
    }

    #[test]
    fn frame_changes_have_zero_duration() {
        let mut s = Schedule::new("vz");
        s.append(Instruction::ShiftPhase {
            phase: 1.0,
            channel: Channel::Drive(0),
        });
        s.append(Instruction::ShiftPhase {
            phase: -1.0,
            channel: Channel::Drive(0),
        });
        assert_eq!(s.duration(), 0);
        assert_eq!(s.instructions().len(), 2);
    }

    #[test]
    fn append_schedule_aligns_on_shared_channels() {
        let mut a = Schedule::new("a");
        a.append(Instruction::Play {
            waveform: pulse(160),
            channel: Channel::Drive(0),
        });
        let mut b = Schedule::new("b");
        b.append(Instruction::Play {
            waveform: pulse(80),
            channel: Channel::Drive(0),
        });
        b.append(Instruction::Play {
            waveform: pulse(80),
            channel: Channel::Drive(1),
        });
        a.append_schedule(&b);
        // b is shifted by 160 (the busy time of d0).
        assert_eq!(a.duration(), 240);
        assert_eq!(a.channel_duration(Channel::Drive(1)), 240);
    }

    #[test]
    fn append_after_barrier() {
        let mut s = Schedule::new("barrier");
        s.append(Instruction::Play {
            waveform: pulse(200),
            channel: Channel::Drive(0),
        });
        s.append_after(
            Instruction::Play {
                waveform: pulse(50),
                channel: Channel::Drive(1),
            },
            &[Channel::Drive(0), Channel::Drive(1)],
        );
        assert_eq!(s.channel_duration(Channel::Drive(1)), 250);
    }

    #[test]
    fn pulse_count_counts_only_plays() {
        let mut s = Schedule::new("count");
        s.append(Instruction::Play {
            waveform: pulse(10),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::ShiftPhase {
            phase: 0.5,
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Delay {
            duration: 100,
            channel: Channel::Drive(0),
        });
        assert_eq!(s.pulse_count(), 1);
        assert_eq!(s.duration(), 110);
    }

    #[test]
    fn shifted_preserves_structure() {
        let mut s = Schedule::new("s");
        s.append(Instruction::Play {
            waveform: pulse(10),
            channel: Channel::Drive(0),
        });
        let moved = s.shifted(90);
        assert_eq!(moved.instructions()[0].start, 90);
        assert_eq!(moved.duration(), 100);
    }

    #[test]
    fn channels_listing() {
        let mut s = Schedule::new("chs");
        s.append(Instruction::Play {
            waveform: pulse(10),
            channel: Channel::Control(1),
        });
        s.append(Instruction::Play {
            waveform: pulse(10),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Acquire {
            duration: 100,
            qubit: 0,
            channel: Channel::Acquire(0),
        });
        assert_eq!(
            s.channels(),
            vec![Channel::Drive(0), Channel::Control(1), Channel::Acquire(0)]
        );
    }

    #[test]
    fn ascii_art_renders_rows() {
        let mut s = Schedule::new("art");
        s.append(Instruction::Play {
            waveform: pulse(100),
            channel: Channel::Drive(0),
        });
        let art = s.ascii_art(40);
        assert!(art.contains("d0"));
        assert!(art.contains('#'));
        assert!(art.contains("100 dt"));
    }

    #[test]
    fn rasterize_respects_offsets() {
        let mut s = Schedule::new("r");
        let ch = Channel::Drive(0);
        s.append(Instruction::Delay {
            duration: 10,
            channel: ch,
        });
        s.append(Instruction::Play {
            waveform: pulse(20),
            channel: ch,
        });
        let raster = s.rasterize(ch);
        assert_eq!(raster.len(), 30);
        assert!(raster[..10].iter().all(|c| c.abs() < 1e-12));
        assert!(raster[10..30].iter().any(|c| c.abs() > 1e-3));
    }

    #[test]
    fn csv_export_shape() {
        let mut s = Schedule::new("csv");
        s.append(Instruction::Play {
            waveform: pulse(8),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: pulse(4),
            channel: Channel::Control(1),
        });
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_dt,d0_re,d0_im,u1_re,u1_im");
        assert_eq!(lines.len(), 1 + 8); // header + duration rows
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = Schedule::new("sort");
        s.insert(
            50,
            Instruction::Play {
                waveform: pulse(10),
                channel: Channel::Drive(0),
            },
        );
        s.insert(
            10,
            Instruction::Play {
                waveform: pulse(10),
                channel: Channel::Drive(0),
            },
        );
        let starts: Vec<u64> = s.instructions().iter().map(|ti| ti.start).collect();
        assert_eq!(starts, vec![10, 50]);
    }
}
