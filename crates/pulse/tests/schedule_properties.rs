//! Property-based tests of the pulse IR's algebraic laws.

use proptest::prelude::*;
use quant_pulse::{Channel, Drag, Gaussian, GaussianSquare, Instruction, Schedule};

fn arb_gaussian() -> impl Strategy<Value = Gaussian> {
    // Physical shapes only: σ between duration/6 and duration/4 (real
    // calibrated pulses are ~4σ long); σ ≫ duration makes the lifted
    // envelope degenerate.
    (16u64..256, 0.01..0.9f64, 0.0..1.0f64).prop_map(|(duration, amp, s)| Gaussian {
        duration,
        amp,
        sigma: duration as f64 / 6.0 + s * duration as f64 / 12.0,
    })
}

fn arb_gaussian_square() -> impl Strategy<Value = GaussianSquare> {
    (8.0..24.0f64, 0.05..0.9f64, 0u64..600).prop_map(|(sigma, amp, width)| GaussianSquare {
        duration: (8.0 * sigma) as u64 + width,
        amp,
        sigma,
        width,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn amplitude_scaling_is_linear(g in arb_gaussian(), s in -1.0..1.0f64) {
        let w = g.waveform("w");
        let scaled = w.scaled(s);
        prop_assert!((scaled.area().re - w.area().re * s).abs() < 1e-9);
        prop_assert_eq!(scaled.duration(), w.duration());
    }

    #[test]
    fn lifted_envelopes_start_and_end_near_zero(g in arb_gaussian()) {
        // The lift zeroes the envelope one sample *outside* the window, so
        // the boundary samples are bounded by one sample of slope.
        let w = g.waveform("w");
        let s = w.samples();
        let bound = g.amp / g.sigma;
        prop_assert!(s[0].abs() <= bound, "start = {} bound {bound}", s[0].abs());
        prop_assert!(s[s.len() - 1].abs() <= bound);
        // And symmetric.
        prop_assert!((s[0].re - s[s.len() - 1].re).abs() < 1e-9);
    }

    #[test]
    fn drag_imag_part_is_antisymmetric(
        g in arb_gaussian(), beta in -3.0..3.0f64
    ) {
        let d = Drag {
            duration: g.duration,
            amp: g.amp,
            sigma: g.sigma,
            beta,
        };
        let w = d.waveform("d");
        // Total imaginary area vanishes (odd function).
        prop_assert!(w.area().im.abs() < 1e-8 * (1.0 + beta.abs()));
    }

    #[test]
    fn stretch_hits_requested_area(gs in arb_gaussian_square(), f in 0.05..2.5f64) {
        let w0 = gs.waveform("a");
        let stretched = gs.stretched_area(f).waveform("b");
        let target = w0.area().re * f;
        // Rounding to whole samples bounds the error by one sample of
        // amplitude.
        prop_assert!(
            (stretched.area().re - target).abs() <= gs.amp + 1e-9,
            "area {} vs target {target}",
            stretched.area().re
        );
    }

    #[test]
    fn schedule_append_durations_add(g1 in arb_gaussian(), g2 in arb_gaussian()) {
        let mut s = Schedule::new("s");
        let ch = Channel::Drive(0);
        s.append(Instruction::Play { waveform: g1.waveform("a"), channel: ch });
        s.append(Instruction::Play { waveform: g2.waveform("b"), channel: ch });
        prop_assert_eq!(s.duration(), g1.duration + g2.duration);
    }

    #[test]
    fn parallel_channels_do_not_serialize(g1 in arb_gaussian(), g2 in arb_gaussian()) {
        let mut s = Schedule::new("s");
        s.append(Instruction::Play { waveform: g1.waveform("a"), channel: Channel::Drive(0) });
        s.append(Instruction::Play { waveform: g2.waveform("b"), channel: Channel::Drive(1) });
        prop_assert_eq!(s.duration(), g1.duration.max(g2.duration));
    }

    #[test]
    fn append_schedule_never_shrinks(g1 in arb_gaussian(), g2 in arb_gaussian()) {
        let mut a = Schedule::new("a");
        a.append(Instruction::Play { waveform: g1.waveform("a"), channel: Channel::Drive(0) });
        let before = a.duration();
        let mut b = Schedule::new("b");
        b.append(Instruction::Play { waveform: g2.waveform("b"), channel: Channel::Drive(0) });
        a.append_schedule(&b);
        prop_assert!(a.duration() >= before);
        prop_assert_eq!(a.duration(), g1.duration + g2.duration);
    }

    #[test]
    fn shift_phase_keeps_duration(g in arb_gaussian(), phase in -6.3..6.3f64) {
        let mut s = Schedule::new("s");
        let ch = Channel::Drive(0);
        s.append(Instruction::ShiftPhase { phase, channel: ch });
        s.append(Instruction::Play { waveform: g.waveform("w"), channel: ch });
        s.append(Instruction::ShiftPhase { phase: -phase, channel: ch });
        prop_assert_eq!(s.duration(), g.duration);
        prop_assert_eq!(s.pulse_count(), 1);
    }

    #[test]
    fn scaled_complex_preserves_magnitudes(g in arb_gaussian(), phi in -6.3..6.3f64) {
        let w = g.waveform("w");
        let rotated = w.scaled_complex(quant_math::C64::cis(phi));
        for (a, b) in w.samples().iter().zip(rotated.samples()) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }
}
