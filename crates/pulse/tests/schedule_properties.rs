//! Randomized property tests of the pulse IR's algebraic laws.
//!
//! Seeded-loop style (the environment is offline, so no proptest): each
//! test draws random pulse shapes from a deterministic RNG and asserts the
//! same invariants the original property suite checked.

use quant_math::seeded;
use quant_pulse::{Channel, Drag, Gaussian, GaussianSquare, Instruction, Schedule};
use rand::Rng;

const CASES: usize = 96;

fn rand_gaussian(rng: &mut impl Rng) -> Gaussian {
    // Physical shapes only: σ between duration/6 and duration/4 (real
    // calibrated pulses are ~4σ long); σ ≫ duration makes the lifted
    // envelope degenerate.
    let duration = rng.gen_range(16u64..256);
    let amp = rng.gen_range(0.01..0.9);
    let s = rng.gen_range(0.0..1.0);
    Gaussian {
        duration,
        amp,
        sigma: duration as f64 / 6.0 + s * duration as f64 / 12.0,
    }
}

fn rand_gaussian_square(rng: &mut impl Rng) -> GaussianSquare {
    let sigma = rng.gen_range(8.0..24.0);
    let amp = rng.gen_range(0.05..0.9);
    let width = rng.gen_range(0u64..600);
    GaussianSquare {
        duration: (8.0 * sigma) as u64 + width,
        amp,
        sigma,
        width,
    }
}

#[test]
fn amplitude_scaling_is_linear() {
    let mut rng = seeded(0x21);
    for _ in 0..CASES {
        let g = rand_gaussian(&mut rng);
        let s = rng.gen_range(-1.0..1.0);
        let w = g.waveform("w");
        let scaled = w.scaled(s);
        assert!((scaled.area().re - w.area().re * s).abs() < 1e-9);
        assert_eq!(scaled.duration(), w.duration());
    }
}

#[test]
fn lifted_envelopes_start_and_end_near_zero() {
    let mut rng = seeded(0x22);
    for _ in 0..CASES {
        let g = rand_gaussian(&mut rng);
        // The lift zeroes the envelope one sample *outside* the window, so
        // the boundary samples are bounded by one sample of slope.
        let w = g.waveform("w");
        let s = w.samples();
        let bound = g.amp / g.sigma;
        assert!(s[0].abs() <= bound, "start = {} bound {bound}", s[0].abs());
        assert!(s[s.len() - 1].abs() <= bound);
        // And symmetric.
        assert!((s[0].re - s[s.len() - 1].re).abs() < 1e-9);
    }
}

#[test]
fn drag_imag_part_is_antisymmetric() {
    let mut rng = seeded(0x23);
    for _ in 0..CASES {
        let g = rand_gaussian(&mut rng);
        let beta = rng.gen_range(-3.0..3.0);
        let d = Drag {
            duration: g.duration,
            amp: g.amp,
            sigma: g.sigma,
            beta,
        };
        let w = d.waveform("d");
        // Total imaginary area vanishes (odd function).
        assert!(w.area().im.abs() < 1e-8 * (1.0 + beta.abs()));
    }
}

#[test]
fn stretch_hits_requested_area() {
    let mut rng = seeded(0x24);
    for _ in 0..CASES {
        let gs = rand_gaussian_square(&mut rng);
        let f = rng.gen_range(0.05..2.5);
        let w0 = gs.waveform("a");
        let stretched = gs.stretched_area(f).waveform("b");
        let target = w0.area().re * f;
        // Rounding to whole samples bounds the error by one sample of
        // amplitude.
        assert!(
            (stretched.area().re - target).abs() <= gs.amp + 1e-9,
            "area {} vs target {target}",
            stretched.area().re
        );
    }
}

#[test]
fn schedule_append_durations_add() {
    let mut rng = seeded(0x25);
    for _ in 0..CASES {
        let g1 = rand_gaussian(&mut rng);
        let g2 = rand_gaussian(&mut rng);
        let mut s = Schedule::new("s");
        let ch = Channel::Drive(0);
        s.append(Instruction::Play {
            waveform: g1.waveform("a"),
            channel: ch,
        });
        s.append(Instruction::Play {
            waveform: g2.waveform("b"),
            channel: ch,
        });
        assert_eq!(s.duration(), g1.duration + g2.duration);
    }
}

#[test]
fn parallel_channels_do_not_serialize() {
    let mut rng = seeded(0x26);
    for _ in 0..CASES {
        let g1 = rand_gaussian(&mut rng);
        let g2 = rand_gaussian(&mut rng);
        let mut s = Schedule::new("s");
        s.append(Instruction::Play {
            waveform: g1.waveform("a"),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: g2.waveform("b"),
            channel: Channel::Drive(1),
        });
        assert_eq!(s.duration(), g1.duration.max(g2.duration));
    }
}

#[test]
fn append_schedule_never_shrinks() {
    let mut rng = seeded(0x27);
    for _ in 0..CASES {
        let g1 = rand_gaussian(&mut rng);
        let g2 = rand_gaussian(&mut rng);
        let mut a = Schedule::new("a");
        a.append(Instruction::Play {
            waveform: g1.waveform("a"),
            channel: Channel::Drive(0),
        });
        let before = a.duration();
        let mut b = Schedule::new("b");
        b.append(Instruction::Play {
            waveform: g2.waveform("b"),
            channel: Channel::Drive(0),
        });
        a.append_schedule(&b);
        assert!(a.duration() >= before);
        assert_eq!(a.duration(), g1.duration + g2.duration);
    }
}

#[test]
fn shift_phase_keeps_duration() {
    let mut rng = seeded(0x28);
    for _ in 0..CASES {
        let g = rand_gaussian(&mut rng);
        let phase = rng.gen_range(-6.3..6.3);
        let mut s = Schedule::new("s");
        let ch = Channel::Drive(0);
        s.append(Instruction::ShiftPhase { phase, channel: ch });
        s.append(Instruction::Play {
            waveform: g.waveform("w"),
            channel: ch,
        });
        s.append(Instruction::ShiftPhase {
            phase: -phase,
            channel: ch,
        });
        assert_eq!(s.duration(), g.duration);
        assert_eq!(s.pulse_count(), 1);
    }
}

#[test]
fn scaled_complex_preserves_magnitudes() {
    let mut rng = seeded(0x29);
    for _ in 0..CASES {
        let g = rand_gaussian(&mut rng);
        let phi = rng.gen_range(-6.3..6.3);
        let w = g.waveform("w");
        let rotated = w.scaled_complex(quant_math::C64::cis(phi));
        for (a, b) in w.samples().iter().zip(rotated.samples()) {
            assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }
}
