//! Deterministic circuit generators: the corpus' five families.
//!
//! Every generator is a pure function of its explicit parameters (widths,
//! depths, seeds) — no entropy, no wall clock — so the corpus is
//! reproducible bit-for-bit on any machine and any thread count. The
//! families were picked to stress different compiler muscles:
//!
//! * **QFT** — long-range controlled phases: routing pressure plus deep
//!   Rz/CNOT chains the ZZ-detection pass can fold.
//! * **Ripple-carry adders** (Cuccaro) — Toffoli-heavy arithmetic with a
//!   deterministic classical answer, decomposed to the 1q/2q gate set.
//! * **Random Cliffords** — seeded dense layers of {H, S, X, Z, CX, CZ};
//!   the "no structure to exploit" control group.
//! * **QAOA lines** — the paper's own headline workload: textbook
//!   CNOT·Rz·CNOT cost layers that pulse-level compilation turns into
//!   single stretched-CR blocks.
//! * **VQE lines** — hardware-efficient Ry/Rz + entangler ansatz layers,
//!   the direct-rotation (single-pulse Rx/Ry) showcase.

use quant_circuit::{Circuit, Gate};
use quant_math::seeded;
use rand::Rng;
use std::f64::consts::PI;
use std::fmt;

/// A corpus family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// Quantum Fourier transform (no final reversal swaps).
    Qft,
    /// Cuccaro ripple-carry adder with classical inputs prepared by X
    /// gates.
    Adder,
    /// Seeded random Clifford layers.
    Clifford,
    /// Line-graph MAXCUT QAOA at fixed angles.
    Qaoa,
    /// Hardware-efficient VQE ansatz with seeded angles.
    Vqe,
}

impl Family {
    /// Stable lower-case name (used in reports and golden files).
    pub fn name(&self) -> &'static str {
        match self {
            Family::Qft => "qft",
            Family::Adder => "adder",
            Family::Clifford => "clifford",
            Family::Qaoa => "qaoa",
            Family::Vqe => "vqe",
        }
    }

    /// All families, in report order.
    pub fn all() -> [Family; 5] {
        [
            Family::Qft,
            Family::Adder,
            Family::Clifford,
            Family::Qaoa,
            Family::Vqe,
        ]
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated benchmark circuit.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The family it belongs to.
    pub family: Family,
    /// Unique name, e.g. `qft_n4` or `clifford_n3_s2`.
    pub name: String,
    /// Logical register width.
    pub width: u32,
    /// The logical circuit (pre-routing).
    pub circuit: Circuit,
}

/// Corpus size tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Small widths (≤ 4 qubits), one or two instances per family, plus
    /// one 10-qubit QAOA line that crosses the density wall so the
    /// trajectory (and fusion) path is exercised by the committed golden
    /// summaries this tier backs in CI.
    Smoke,
    /// The full 50+-circuit corpus at growing widths (up to 10 qubits,
    /// trajectory-executed past the density wall).
    Full,
}

/// Appends a controlled-phase CP(θ) in the textbook Rz/CNOT decomposition
/// (up to global phase), so the assembly stage stays in the parser's gate
/// set and the optimized flow's ZZ detection has something to find.
fn controlled_phase(c: &mut Circuit, control: u32, target: u32, theta: f64) {
    c.rz(control, theta / 2.0).rz(target, theta / 2.0);
    c.cnot(control, target)
        .rz(target, -theta / 2.0)
        .cnot(control, target);
}

/// The n-qubit QFT without the final bit-reversal swaps (the common
/// benchmark convention; the reversal is classical bookkeeping).
pub fn qft(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i);
        for j in i + 1..n {
            let theta = PI / (1u64 << (j - i)) as f64;
            controlled_phase(&mut c, j, i, theta);
        }
    }
    c
}

/// Appends a Toffoli (CCX) in the standard T-depth decomposition: 6 CNOTs,
/// 7 T/T†, 2 H — entirely inside the parser's gate set.
fn toffoli(c: &mut Circuit, c1: u32, c2: u32, t: u32) {
    c.h(t);
    c.cnot(c2, t).push(Gate::Tdg, &[t]);
    c.cnot(c1, t).push(Gate::T, &[t]);
    c.cnot(c2, t).push(Gate::Tdg, &[t]);
    c.cnot(c1, t).push(Gate::T, &[t]);
    c.push(Gate::T, &[c2]).h(t);
    c.cnot(c1, c2).push(Gate::T, &[c1]).push(Gate::Tdg, &[c2]);
    c.cnot(c1, c2);
}

/// A Cuccaro ripple-carry adder computing `a + b` on `2·bits + 2` qubits
/// (layout: `cin, a0, b0, a1, b1, …, cout`), with the classical inputs
/// prepared by X gates. The ideal output is one deterministic basis state,
/// which makes the family a sharp fidelity probe.
///
/// # Panics
///
/// Panics when an input value needs more than `bits` bits.
pub fn ripple_adder(bits: u32, a: u64, b: u64) -> Circuit {
    assert!(
        bits >= 1 && a < (1 << bits) && b < (1 << bits),
        "inputs exceed {bits} bits"
    );
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    let qa = |i: u32| 1 + 2 * i; // a_i
    let qb = |i: u32| 2 + 2 * i; // b_i (sum lands here)
    let cin = 0u32;
    let cout = n - 1;
    for i in 0..bits {
        if (a >> i) & 1 == 1 {
            c.x(qa(i));
        }
        if (b >> i) & 1 == 1 {
            c.x(qb(i));
        }
    }
    // MAJ ladder: carry ripples through the a-wires.
    let maj = |c: &mut Circuit, carry: u32, bq: u32, aq: u32| {
        c.cnot(aq, bq).cnot(aq, carry);
        toffoli(c, carry, bq, aq);
    };
    let uma = |c: &mut Circuit, carry: u32, bq: u32, aq: u32| {
        toffoli(c, carry, bq, aq);
        c.cnot(aq, carry).cnot(carry, bq);
    };
    maj(&mut c, cin, qb(0), qa(0));
    for i in 1..bits {
        maj(&mut c, qa(i - 1), qb(i), qa(i));
    }
    c.cnot(qa(bits - 1), cout);
    for i in (1..bits).rev() {
        uma(&mut c, qa(i - 1), qb(i), qa(i));
    }
    uma(&mut c, cin, qb(0), qa(0));
    c
}

/// The basis state [`ripple_adder`] leaves the register in (little-endian
/// bit index over the full `2·bits + 2` wires) — used by tests and the
/// fidelity probe.
pub fn ripple_adder_output_index(bits: u32, a: u64, b: u64) -> usize {
    let sum = a + b;
    let mut idx = 0usize;
    for i in 0..bits {
        if (a >> i) & 1 == 1 {
            idx |= 1 << (1 + 2 * i); // a register is restored
        }
        if (sum >> i) & 1 == 1 {
            idx |= 1 << (2 + 2 * i); // sum bits land on the b wires
        }
    }
    if (sum >> bits) & 1 == 1 {
        idx |= 1 << (2 * bits + 1); // carry out
    }
    idx
}

/// Seeded random Clifford layers: per layer a uniform 1-qubit Clifford on
/// every wire, then CX/CZ bricks on alternating adjacent pairs.
pub fn random_clifford(n: u32, layers: u32, seed: u64) -> Circuit {
    let mut rng = seeded(seed ^ 0xC11F_F04D);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            match rng.gen_range(0..6) {
                0 => c.h(q),
                1 => c.push(Gate::S, &[q]),
                2 => c.push(Gate::Sdg, &[q]),
                3 => c.x(q),
                4 => c.z(q),
                _ => c.y(q),
            };
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            match rng.gen_range(0..3) {
                0 => c.cnot(q, q + 1),
                1 => c.cnot(q + 1, q),
                _ => c.cz(q, q + 1),
            };
            q += 2;
        }
    }
    c
}

/// Fixed QAOA angles: deliberately *not* optimized per instance, so the
/// corpus stays polynomial in width and identical across runs.
pub const QAOA_ANGLES: [(f64, f64); 2] = [(0.7, 0.42), (0.5, 0.31)];

/// Depth-p line-graph MAXCUT QAOA at the fixed [`QAOA_ANGLES`].
pub fn qaoa_line(n: u32, p: usize) -> Circuit {
    quant_algos::LineGraph::new(n as usize).qaoa_circuit(&QAOA_ANGLES[..p])
}

/// Hardware-efficient VQE ansatz: `layers` rounds of per-qubit Ry·Rz with
/// seeded angles followed by a CNOT entangler chain.
pub fn vqe_line(n: u32, layers: u32, seed: u64) -> Circuit {
    let mut rng = seeded(seed ^ 0x00E5_11FE);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            let theta: f64 = rng.gen_range(-PI..PI);
            let phi: f64 = rng.gen_range(-PI..PI);
            c.ry(q, theta).rz(q, phi);
        }
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
        }
    }
    // A final rotation layer so the last entangler is not dead weight.
    for q in 0..n {
        let theta: f64 = rng.gen_range(-PI..PI);
        c.ry(q, theta);
    }
    c
}

/// Generates the corpus for a tier. Deterministic: same tier, same
/// circuits, in a fixed order (family-major, width-minor).
pub fn generate(tier: Tier) -> Vec<CorpusEntry> {
    let mut entries = Vec::new();
    let mut push = |family: Family, name: String, circuit: Circuit| {
        let width = circuit.num_qubits();
        entries.push(CorpusEntry {
            family,
            name,
            width,
            circuit,
        });
    };

    match tier {
        Tier::Smoke => {
            for n in 2..=4u32 {
                push(Family::Qft, format!("qft_n{n}"), qft(n));
            }
            push(
                Family::Adder,
                "adder_1b_a1_b1".into(),
                ripple_adder(1, 1, 1),
            );
            for n in 2..=4u32 {
                push(
                    Family::Clifford,
                    format!("clifford_n{n}_s1"),
                    random_clifford(n, n + 1, 1),
                );
            }
            for n in 2..=4u32 {
                push(Family::Qaoa, format!("qaoa_n{n}_p1"), qaoa_line(n, 1));
            }
            // One wide instance past the density wall (> 6 qubits): the
            // smoke golden then pins the trajectory executor — and the
            // gate-fusion plan it replays — not just the density path.
            push(Family::Qaoa, "qaoa_n10_p1".into(), qaoa_line(10, 1));
            for n in 2..=4u32 {
                push(Family::Vqe, format!("vqe_n{n}_d1_s1"), vqe_line(n, 1, 1));
            }
        }
        Tier::Full => {
            for n in 2..=8u32 {
                push(Family::Qft, format!("qft_n{n}"), qft(n));
            }
            for (bits, a, b) in [
                (1u32, 1u64, 1u64),
                (1, 1, 0),
                (2, 2, 3),
                (2, 1, 1),
                (3, 5, 6),
                (3, 3, 4),
                (4, 9, 13),
                (4, 7, 8),
            ] {
                push(
                    Family::Adder,
                    format!("adder_{bits}b_a{a}_b{b}"),
                    ripple_adder(bits, a, b),
                );
            }
            for n in 2..=7u32 {
                for seed in 1..=2u64 {
                    push(
                        Family::Clifford,
                        format!("clifford_n{n}_s{seed}"),
                        random_clifford(n, n + 2, seed),
                    );
                }
            }
            for n in 2..=10u32 {
                push(Family::Qaoa, format!("qaoa_n{n}_p1"), qaoa_line(n, 1));
            }
            for n in 2..=6u32 {
                push(Family::Qaoa, format!("qaoa_n{n}_p2"), qaoa_line(n, 2));
            }
            for n in 2..=8u32 {
                for layers in 1..=2u32 {
                    push(
                        Family::Vqe,
                        format!("vqe_n{n}_d{layers}_s1"),
                        vqe_line(n, layers, 1),
                    );
                }
            }
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::CMat;

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT (without reversal) maps |k⟩ to (1/√N)·Σ_j ω^{jk'}|j⟩ with the
        // output bits reversed; checking unitarity plus the |0⟩ column
        // (uniform superposition) pins the construction.
        for n in 2..=4u32 {
            let u = qft(n).unitary();
            assert!(u.is_unitary(1e-9), "qft({n}) not unitary");
            let dim = 1usize << n;
            let amp = 1.0 / (dim as f64).sqrt();
            for r in 0..dim {
                assert!(
                    (u[(r, 0)].abs() - amp).abs() < 1e-9,
                    "qft({n}) column 0 not uniform at row {r}"
                );
            }
        }
        // And the 1-qubit QFT is just a Hadamard.
        let u = qft(1).unitary();
        assert!(u.phase_invariant_diff(&Gate::H.matrix()) < 1e-9);
    }

    #[test]
    fn toffoli_decomposition_is_ccx() {
        let mut c = Circuit::new(3);
        toffoli(&mut c, 0, 1, 2);
        let u = c.unitary();
        let mut ccx = CMat::identity(8);
        // |110⟩ ↔ |111⟩ in little-endian bit order (controls q0,q1).
        ccx[(3, 3)] = quant_math::C64::ZERO;
        ccx[(7, 7)] = quant_math::C64::ZERO;
        ccx[(3, 7)] = quant_math::C64::ONE;
        ccx[(7, 3)] = quant_math::C64::ONE;
        assert!(u.phase_invariant_diff(&ccx) < 1e-9);
    }

    #[test]
    fn adder_computes_sums() {
        for (bits, a, b) in [(1u32, 1u64, 1u64), (2, 2, 3), (2, 3, 3), (3, 5, 6)] {
            let c = ripple_adder(bits, a, b);
            let p = c.output_distribution();
            let idx = ripple_adder_output_index(bits, a, b);
            assert!(
                p[idx] > 1.0 - 1e-9,
                "{bits}-bit {a}+{b}: expected basis state {idx}, got {:?}",
                p.iter()
                    .enumerate()
                    .filter(|(_, &x)| x > 1e-6)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn clifford_generator_is_deterministic() {
        let a = random_clifford(4, 6, 9);
        let b = random_clifford(4, 6, 9);
        assert_eq!(a, b);
        let c = random_clifford(4, 6, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_tiers_have_expected_shape() {
        let smoke = generate(Tier::Smoke);
        assert_eq!(smoke.len(), 14);
        assert_eq!(
            smoke.iter().filter(|e| e.width > 4).count(),
            1,
            "smoke keeps exactly one wide (trajectory-path) circuit"
        );
        assert!(smoke
            .iter()
            .any(|e| e.width == 10 && e.family == Family::Qaoa));

        let full = generate(Tier::Full);
        assert!(
            (50..=100).contains(&full.len()),
            "full corpus has {} circuits",
            full.len()
        );
        assert!(full.iter().any(|e| e.width >= 9), "no wide circuits");
        for family in Family::all() {
            assert!(
                full.iter().filter(|e| e.family == family).count() >= 4,
                "family {family} underpopulated"
            );
        }
        // Names are unique (they key the golden files).
        let mut names: Vec<&str> = full.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn corpus_circuits_stay_in_the_qasm_gate_set() {
        // Every generated gate must survive a print→parse round trip, so
        // the corpus doubles as the emitter's test vector set.
        let printable = [
            "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "u3", "cx", "cz",
            "swap", "zz", "barrier",
        ];
        for entry in generate(Tier::Full) {
            for op in entry.circuit.ops() {
                assert!(
                    printable.contains(&op.gate.name()),
                    "{}: gate {} not QASM-printable",
                    entry.name,
                    op.gate.name()
                );
            }
        }
    }
}
