//! The one-shot `opc compile` pipeline: QASM (or a built circuit) →
//! routing → gate/pulse compilation → simulated execution → counts and
//! fidelity.
//!
//! This is the shared spine under the `opc compile` CLI subcommand and the
//! corpus platform in [`crate::report`]: one function owns the
//! parse → route → compile → execute → score sequence so the two callers
//! (and the service frontend, via the conformance tests) cannot drift.
//!
//! Everything is deterministic from `(device, calibration, circuit,
//! config)`: jitter, sampling, and trajectory roots are derived from the
//! config seed via [`quant_math::stream_seed`], and wide-register runs go
//! through [`TrajectoryExecutor::try_run_pooled`] with an explicit root,
//! so counts are bit-identical at any `OPC_THREADS`.

use pulse_compiler::{route, CompileMode, Compiled, Compiler, CouplingMap, LowerError, RouteError};
use quant_char::{counts_to_distribution, hellinger_fidelity};
use quant_circuit::{qasm, Circuit};
use quant_device::{
    Calibration, DeviceModel, ExecError, PulseExecutor, ShotPool, TrajectoryExecutor,
};
use quant_math::{seeded, stream_seed};

/// Any failure along the pipeline, tagged by stage.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The QASM frontend rejected the program.
    Parse(qasm::QasmError),
    /// Routing failed (circuit wider than the device, or disconnected).
    Route(RouteError),
    /// Lowering to pulses failed.
    Lower(LowerError),
    /// Execution failed (topology mismatch).
    Exec(ExecError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Route(e) => write!(f, "route: {e}"),
            PipelineError::Lower(e) => write!(f, "lower: {e}"),
            PipelineError::Exec(e) => write!(f, "execute: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<qasm::QasmError> for PipelineError {
    fn from(e: qasm::QasmError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<RouteError> for PipelineError {
    fn from(e: RouteError) -> Self {
        PipelineError::Route(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

/// Which simulation backend executed the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Full density-matrix evolution (exact noise, O(4ⁿ); small registers).
    Density,
    /// Stochastic state-vector trajectories (wide registers).
    Trajectory,
}

impl ExecutorKind {
    /// Stable lower-case name used in reports and golden files.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Density => "density",
            ExecutorKind::Trajectory => "trajectory",
        }
    }
}

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Gate-level (`Standard`) vs pulse-level (`Optimized`) compilation.
    pub mode: CompileMode,
    /// Measurement shots to sample.
    pub shots: usize,
    /// Root seed; jitter, sampling, and trajectory streams are derived
    /// from it with [`stream_seed`].
    pub seed: u64,
    /// Apply the device noise model (density path only; trajectories are
    /// inherently noisy).
    pub noisy: bool,
    /// Widest register the density path will take; wider programs run as
    /// trajectories. O(4ⁿ) memory makes 6 the practical ceiling.
    pub density_max_qubits: u32,
    /// Trajectory count for the wide path.
    pub trajectories: usize,
    /// Route both executors through their retained reference
    /// implementations (slow; equivalence tests only).
    pub reference: bool,
    /// Gate fusion on the trajectory path: `None` inherits the
    /// `OPC_FUSION` environment default, `Some(_)` forces it. Ignored on
    /// the density path and the reference route.
    pub fusion: Option<bool>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            mode: CompileMode::Optimized,
            shots: 2048,
            seed: 7,
            noisy: true,
            density_max_qubits: 6,
            trajectories: 16,
            reference: false,
            fusion: None,
        }
    }
}

/// The result of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// The mode that produced this run.
    pub mode: CompileMode,
    /// SWAPs routing inserted on the linear coupling map.
    pub swaps_inserted: usize,
    /// Depth of the routed physical circuit.
    pub routed_depth: usize,
    /// Two-qubit gate count of the routed circuit.
    pub two_qubit_gates: usize,
    /// Every compilation stage (assembly, basis circuit, pulse program).
    pub compiled: Compiled,
    /// Total schedule duration in `dt` units.
    pub duration_dt: u64,
    /// Total pulses played.
    pub pulse_count: usize,
    /// Which backend executed it.
    pub executor: ExecutorKind,
    /// Measured counts over the `2ⁿ` outcomes.
    pub counts: Vec<u64>,
    /// The routed circuit's ideal (noise-free) outcome distribution.
    pub ideal: Vec<f64>,
    /// Hellinger fidelity of the measured counts against `ideal`.
    pub fidelity: f64,
}

/// The compile half of the pipeline: a routed physical circuit plus its
/// pulse program. Produced by [`compile_circuit`], consumed by
/// [`execute_compiled`] — split so callers (the corpus report) can put a
/// wall-clock around compilation alone.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    /// The routed physical circuit and layout.
    pub routed: pulse_compiler::Routed,
    /// Every compilation stage (assembly, basis circuit, pulse program).
    pub compiled: Compiled,
}

/// Routes a logical circuit onto the device's linear chain (the
/// Almaden-like model couples neighbors only) and compiles it to pulses.
pub fn compile_circuit(
    device: &DeviceModel,
    calibration: &Calibration,
    circuit: &Circuit,
    mode: CompileMode,
) -> Result<CompiledCircuit, PipelineError> {
    let map = CouplingMap::linear(device.num_qubits() as u32);
    let routed = route(circuit, &map)?;
    let compiler = Compiler::new(device, calibration, mode);
    let compiled = compiler.compile(&routed.circuit)?;
    Ok(CompiledCircuit { routed, compiled })
}

/// Executes a compiled circuit and scores it against the routed circuit's
/// ideal distribution. Registers up to `config.density_max_qubits` wide go
/// through exact density-matrix evolution; wider ones through
/// pool-parallel trajectories with an explicit root seed.
pub fn execute_compiled(
    device: &DeviceModel,
    cc: &CompiledCircuit,
    config: &PipelineConfig,
    pool: &ShotPool,
) -> Result<(ExecutorKind, Vec<u64>), PipelineError> {
    let compiled = &cc.compiled;
    let width = cc.routed.circuit.num_qubits();
    if width <= config.density_max_qubits {
        let mut exec = if config.noisy {
            PulseExecutor::new(device)
        } else {
            PulseExecutor::noiseless(device)
        };
        if config.reference {
            exec = exec.with_reference_path();
        }
        let mut jitter = seeded(stream_seed(config.seed, 0));
        let outcome = exec.try_run(&compiled.program, &mut jitter)?;
        let counts = outcome.sample_counts_deterministic(stream_seed(config.seed, 1), config.shots);
        Ok((ExecutorKind::Density, counts))
    } else {
        let mut exec = TrajectoryExecutor::new(device, config.trajectories);
        if let Some(fusion) = config.fusion {
            exec = exec.with_fusion(fusion);
        }
        if config.reference {
            exec = exec.with_reference_path();
        }
        let counts = exec.try_run_pooled(
            &compiled.program,
            config.shots,
            stream_seed(config.seed, 2),
            pool,
        )?;
        Ok((ExecutorKind::Trajectory, counts))
    }
}

/// Runs a logical circuit through route → compile → execute → score.
pub fn run_circuit(
    device: &DeviceModel,
    calibration: &Calibration,
    circuit: &Circuit,
    config: &PipelineConfig,
    pool: &ShotPool,
) -> Result<PipelineRun, PipelineError> {
    let cc = compile_circuit(device, calibration, circuit, config.mode)?;
    let (executor, counts) = execute_compiled(device, &cc, config, pool)?;
    let ideal = cc.routed.circuit.output_distribution();
    let fidelity = hellinger_fidelity(&ideal, &counts_to_distribution(&counts));
    let CompiledCircuit { routed, compiled } = cc;
    Ok(PipelineRun {
        mode: config.mode,
        swaps_inserted: routed.swaps_inserted,
        routed_depth: routed.circuit.depth(),
        two_qubit_gates: routed.circuit.two_qubit_count(),
        duration_dt: compiled.duration(),
        pulse_count: compiled.pulse_count(),
        compiled,
        executor,
        counts,
        ideal,
        fidelity,
    })
}

/// [`run_circuit`] with an OpenQASM source frontend — the `opc compile`
/// entry point.
pub fn run_qasm(
    device: &DeviceModel,
    calibration: &Calibration,
    source: &str,
    config: &PipelineConfig,
    pool: &ShotPool,
) -> Result<PipelineRun, PipelineError> {
    let circuit = qasm::parse(source)?;
    run_circuit(device, calibration, &circuit, config, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_device::calibrate;

    fn setup(n: usize) -> (DeviceModel, Calibration) {
        let mut rng = seeded(71);
        let device = DeviceModel::almaden_like(n, &mut rng);
        let calibration = calibrate(&device, &mut rng);
        (device, calibration)
    }

    #[test]
    fn bell_pipeline_end_to_end() {
        let (device, calibration) = setup(2);
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
        let cfg = PipelineConfig::default();
        let run =
            run_qasm(&device, &calibration, src, &cfg, &ShotPool::serial()).expect("bell pipeline");
        assert_eq!(run.executor, ExecutorKind::Density);
        assert_eq!(run.counts.iter().sum::<u64>(), cfg.shots as u64);
        assert!(run.duration_dt > 0 && run.pulse_count > 0);
        assert!(run.fidelity > 0.8, "bell fidelity {}", run.fidelity);
        // A Bell state is (|00⟩ + |11⟩)/√2: the diagonal outcomes dominate.
        assert!(run.counts[0] + run.counts[3] > run.counts[1] + run.counts[2]);
    }

    #[test]
    fn optimized_flow_is_shorter() {
        let (device, calibration) = setup(3);
        let circuit = crate::generators::qaoa_line(3, 1);
        let std_cfg = PipelineConfig {
            mode: CompileMode::Standard,
            ..PipelineConfig::default()
        };
        let opt_cfg = PipelineConfig::default();
        let pool = ShotPool::serial();
        let s = run_circuit(&device, &calibration, &circuit, &std_cfg, &pool).expect("standard");
        let o = run_circuit(&device, &calibration, &circuit, &opt_cfg, &pool).expect("optimized");
        assert!(
            o.duration_dt < s.duration_dt,
            "optimized {} dt not shorter than standard {} dt",
            o.duration_dt,
            s.duration_dt
        );
    }

    #[test]
    fn parse_errors_surface_with_position() {
        let (device, calibration) = setup(2);
        let err = run_qasm(
            &device,
            &calibration,
            "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
            &PipelineConfig::default(),
            &ShotPool::serial(),
        )
        .expect_err("unknown gate must fail");
        match err {
            PipelineError::Parse(e) => assert_eq!(e.line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn too_wide_circuit_is_a_route_error() {
        let (device, calibration) = setup(2);
        let circuit = crate::generators::qft(4);
        let err = run_circuit(
            &device,
            &calibration,
            &circuit,
            &PipelineConfig::default(),
            &ShotPool::serial(),
        )
        .expect_err("4 logical on 2 physical must fail");
        assert!(matches!(
            err,
            PipelineError::Route(RouteError::TooWide { .. })
        ));
    }
}
