//! quant-corpus — the benchmark corpus platform and the one-shot
//! `opc compile` pipeline under it.
//!
//! Three layers:
//!
//! 1. [`generators`] — deterministic circuit families (QFT, Cuccaro
//!    adders, random Cliffords, QAOA and VQE lines) at growing widths;
//!    [`generators::generate`] yields the fixed corpus for a
//!    [`generators::Tier`].
//! 2. [`pipeline`] — QASM (or a built circuit) → linear-chain routing →
//!    gate-level or pulse-level compilation (`pulse-compiler`) → density
//!    or trajectory execution (`quant-device`) → counts + Hellinger
//!    fidelity. Shared by the `opc compile` CLI, the corpus runner, and
//!    the service-conformance tests.
//! 3. [`report`] + [`golden`] — run every corpus circuit under both
//!    flows ([`report::run_corpus`]), emit the comparative JSON/markdown
//!    report, and render/diff the bit-exact golden summaries that back
//!    the `corpus_regression` ratchet in CI.
//!
//! Everything downstream of the seeds is bit-deterministic: no wall
//! clocks (timing comes from an injected [`report::Clock`]), no entropy,
//! and thread-count independence inherited from `ShotPool`'s seed-stream
//! contract — the regression test runs against the same golden file at
//! `OPC_THREADS=1` and `4`.

#![warn(missing_docs)]

pub mod generators;
pub mod golden;
pub mod pipeline;
pub mod report;

pub use generators::{generate, CorpusEntry, Family, Tier};
pub use pipeline::{
    compile_circuit, execute_compiled, run_circuit, run_qasm, CompiledCircuit, ExecutorKind,
    PipelineConfig, PipelineError, PipelineRun,
};
pub use report::{
    run_corpus, CircuitReport, Clock, CorpusError, CorpusOptions, CorpusReport, FamilySummary,
    FlowMetrics,
};
