//! Golden-summary rendering and ratchet comparison.
//!
//! The committed golden file (`crates/corpus/golden/corpus_smoke.txt`)
//! captures every deterministic metric of the smoke-tier corpus, one line
//! per circuit. Floats are stored as `f64::to_bits` hex so the comparison
//! is bit-exact — "close enough" drift is exactly what the ratchet exists
//! to catch. Wall-clock columns never appear here.
//!
//! The regression test renders the current run with [`render`] and diffs
//! it against the committed file with [`diff`]; any difference fails, and
//! each differing field is classified so the failure message says whether
//! the change is a **regression** (schedule got longer, fidelity dropped),
//! an improvement, or a neutral drift — all three require a deliberate
//! re-bless (`OPC_CORPUS_BLESS=1`).

use crate::report::CorpusReport;
use std::fmt::Write as _;

/// Renders a report as golden-summary text (one header line, then one
/// line per circuit, in generation order).
pub fn render(report: &CorpusReport) -> String {
    let mut out = String::new();
    let tier = match report.tier {
        crate::generators::Tier::Smoke => "smoke",
        crate::generators::Tier::Full => "full",
    };
    let _ = writeln!(
        out,
        "corpus tier={tier} shots={} seed={} device_seed={} checksum={:016x}",
        report.shots,
        report.seed,
        report.device_seed,
        report.checksum()
    );
    for c in &report.circuits {
        let _ = writeln!(
            out,
            "{} family={} width={} exec={} \
             std_swaps={} opt_swaps={} std_depth={} opt_depth={} \
             std_2q={} opt_2q={} std_dur={} opt_dur={} \
             std_pulses={} opt_pulses={} \
             std_fid_bits={:016x} opt_fid_bits={:016x} \
             std_counts={:016x} opt_counts={:016x} \
             std_verified={} opt_verified={}",
            c.name,
            c.family,
            c.width,
            c.optimized.executor.name(),
            c.standard.swaps,
            c.optimized.swaps,
            c.standard.depth,
            c.optimized.depth,
            c.standard.two_qubit_gates,
            c.optimized.two_qubit_gates,
            c.standard.duration_dt,
            c.optimized.duration_dt,
            c.standard.pulse_count,
            c.optimized.pulse_count,
            c.standard.fidelity.to_bits(),
            c.optimized.fidelity.to_bits(),
            c.standard.counts_checksum,
            c.optimized.counts_checksum,
            c.standard.verified,
            c.optimized.verified,
        );
    }
    out
}

/// One line parsed into `(key, fields)` where fields keep file order.
fn parse_line(line: &str) -> Option<(String, Vec<(String, String)>)> {
    let mut tokens = line.split_whitespace();
    let key = tokens.next()?.to_string();
    let mut fields = Vec::new();
    for tok in tokens {
        let (k, v) = tok.split_once('=')?;
        fields.push((k.to_string(), v.to_string()));
    }
    Some((key, fields))
}

fn lookup<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Classifies a single changed field for the failure message.
fn classify(field: &str, golden: &str, current: &str) -> &'static str {
    let as_u64 = |s: &str, hex: bool| -> Option<u64> {
        if hex {
            u64::from_str_radix(s, 16).ok()
        } else {
            s.parse().ok()
        }
    };
    match field {
        "std_dur" | "opt_dur" => match (as_u64(golden, false), as_u64(current, false)) {
            (Some(g), Some(c)) if c > g => "REGRESSION (schedule longer)",
            (Some(g), Some(c)) if c < g => "improvement (schedule shorter)",
            _ => "changed",
        },
        "std_fid_bits" | "opt_fid_bits" => {
            let fid = |s: &str| as_u64(s, true).map(f64::from_bits);
            match (fid(golden), fid(current)) {
                (Some(g), Some(c)) if c < g => "REGRESSION (fidelity down)",
                (Some(g), Some(c)) if c > g => "improvement (fidelity up)",
                _ => "changed",
            }
        }
        "std_counts" | "opt_counts" => "changed (counts differ — determinism suspect)",
        "std_verified" | "opt_verified" => match (golden, current) {
            ("true", "false") => "REGRESSION (schedule no longer verifies)",
            ("false", "true") => "improvement (schedule now verifies)",
            _ => "changed",
        },
        _ => "changed",
    }
}

/// Field-level diff of two golden texts. Returns one human-readable line
/// per difference; empty means bit-identical.
pub fn diff(golden: &str, current: &str) -> Vec<String> {
    let mut out = Vec::new();
    let parse_all = |text: &str| -> Vec<(String, Vec<(String, String)>)> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(parse_line)
            .collect()
    };
    let g = parse_all(golden);
    let c = parse_all(current);

    for (key, gf) in &g {
        match c.iter().find(|(k, _)| k == key) {
            None => out.push(format!("{key}: missing from current run")),
            Some((_, cf)) => {
                for (field, gv) in gf {
                    match lookup(cf, field) {
                        None => out.push(format!("{key}: field {field} missing")),
                        Some(cv) if cv != gv => out.push(format!(
                            "{key}: {field} {gv} -> {cv} [{}]",
                            classify(field, gv, cv)
                        )),
                        Some(_) => {}
                    }
                }
                for (field, _) in cf {
                    if lookup(gf, field).is_none() {
                        out.push(format!("{key}: new field {field}"));
                    }
                }
            }
        }
    }
    for (key, _) in &c {
        if !g.iter().any(|(k, _)| k == key) {
            out.push(format!("{key}: not in golden (new circuit — re-bless)"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = "corpus tier=smoke shots=64 seed=7 device_seed=7 checksum=00000000000000aa\n\
                          qft_n2 family=qft std_dur=100 opt_dur=80 std_fid_bits=3fe0000000000000 std_counts=00000000000000bb\n";

    #[test]
    fn identical_text_has_no_diff() {
        assert!(diff(GOLDEN, GOLDEN).is_empty());
    }

    #[test]
    fn longer_schedule_is_a_regression() {
        let current = GOLDEN.replace("opt_dur=80", "opt_dur=90");
        let d = diff(GOLDEN, &current);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("REGRESSION (schedule longer)"), "{d:?}");
    }

    #[test]
    fn shorter_schedule_is_an_improvement_but_still_a_diff() {
        let current = GOLDEN.replace("opt_dur=80", "opt_dur=70");
        let d = diff(GOLDEN, &current);
        assert!(
            d.iter()
                .any(|l| l.contains("improvement (schedule shorter)")),
            "{d:?}"
        );
    }

    #[test]
    fn fidelity_drop_is_a_regression() {
        // 0.5 -> 0.25 (3fd0... < 3fe0... as f64).
        let current = GOLDEN.replace(
            "std_fid_bits=3fe0000000000000",
            "std_fid_bits=3fd0000000000000",
        );
        let d = diff(GOLDEN, &current);
        assert!(
            d.iter().any(|l| l.contains("REGRESSION (fidelity down)")),
            "{d:?}"
        );
    }

    #[test]
    fn count_divergence_points_at_determinism() {
        let current = GOLDEN.replace("std_counts=00000000000000bb", "std_counts=00000000000000bc");
        let d = diff(GOLDEN, &current);
        assert!(d.iter().any(|l| l.contains("determinism suspect")), "{d:?}");
    }

    #[test]
    fn missing_and_new_circuits_are_reported() {
        let current = GOLDEN.replace("qft_n2", "qft_n3");
        let d = diff(GOLDEN, &current);
        assert!(d.iter().any(|l| l.starts_with("qft_n2: missing")), "{d:?}");
        assert!(d.iter().any(|l| l.contains("not in golden")), "{d:?}");
    }
}
