//! The corpus platform: run every generated circuit through the pipeline
//! under both compilation flows and emit a comparative report.
//!
//! Determinism contract: the report's metric fields (depths, durations,
//! pulse counts, fidelities, counts checksums) are a pure function of
//! [`CorpusOptions`]' seeds — never of the thread count, the wall clock,
//! or the calibration snapshot store's temperature. Wall-clock columns
//! come only from an *injected* clock (the [`CorpusOptions::clock`]
//! closure, same pattern as `quant-service`'s latency clock) so this
//! library stays free of `Instant::now` per the opclint nondeterminism
//! rule; timings are reported but excluded from golden summaries.

use crate::generators::{generate, CorpusEntry, Family, Tier};
use crate::pipeline::{
    compile_circuit, execute_compiled, ExecutorKind, PipelineConfig, PipelineError,
};
use pulse_compiler::CompileMode;
use quant_char::{counts_to_distribution, hellinger_fidelity};
use quant_device::{Calibration, CalibrationOptions, DeviceModel, ShotPool};
use quant_math::{seeded, stream_seed};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Milliseconds-since-some-epoch clock, injected by binaries that may
/// legitimately read wall time (`repro-bench`). `None` leaves every
/// `wall_ms` field empty.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Corpus run options.
#[derive(Clone)]
pub struct CorpusOptions {
    /// Which corpus tier to run.
    pub tier: Tier,
    /// Measurement shots per circuit per flow.
    pub shots: usize,
    /// Root seed for jitter/sampling/trajectory streams; circuit `i` runs
    /// on `stream_seed(seed, i)`.
    pub seed: u64,
    /// Root seed for device physics + calibration; width `w` gets
    /// `stream_seed(device_seed, w)`.
    pub device_seed: u64,
    /// Trajectory count for registers past the density wall.
    pub trajectories: usize,
    /// Optional wall clock for compile-time columns.
    pub clock: Option<Clock>,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            tier: Tier::Smoke,
            shots: 2048,
            seed: 7,
            device_seed: 7,
            trajectories: 16,
            clock: None,
        }
    }
}

impl fmt::Debug for CorpusOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CorpusOptions")
            .field("tier", &self.tier)
            .field("shots", &self.shots)
            .field("seed", &self.seed)
            .field("device_seed", &self.device_seed)
            .field("trajectories", &self.trajectories)
            .field("clock", &self.clock.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// A corpus run failure, tagged with the circuit that caused it.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusError {
    /// The failing circuit's name.
    pub circuit: String,
    /// The underlying pipeline failure.
    pub error: PipelineError,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.circuit, self.error)
    }
}

impl std::error::Error for CorpusError {}

/// Metrics for one circuit under one compilation flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowMetrics {
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Depth of the routed physical circuit.
    pub depth: usize,
    /// Two-qubit gates after routing.
    pub two_qubit_gates: usize,
    /// Schedule duration in `dt` units.
    pub duration_dt: u64,
    /// Pulses played.
    pub pulse_count: usize,
    /// Backend that executed it.
    pub executor: ExecutorKind,
    /// Hellinger fidelity against the routed circuit's ideal distribution.
    pub fidelity: f64,
    /// FNV-1a checksum of the measured counts (thread-identity witness).
    pub counts_checksum: u64,
    /// `pulse::verify` found zero issues in the compiled schedule.
    pub verified: bool,
    /// Compile wall-clock, when a clock was injected.
    pub wall_ms: Option<u64>,
}

/// One corpus circuit, both flows.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitReport {
    /// Family.
    pub family: Family,
    /// Unique circuit name.
    pub name: String,
    /// Register width.
    pub width: u32,
    /// The gate-level (standard) flow.
    pub standard: FlowMetrics,
    /// The pulse-level (optimized) flow.
    pub optimized: FlowMetrics,
}

impl CircuitReport {
    /// Optimized-over-standard schedule duration (< 1 means pulse-level
    /// compilation produced a shorter schedule).
    pub fn duration_ratio(&self) -> f64 {
        self.optimized.duration_dt as f64 / self.standard.duration_dt as f64
    }

    /// Optimized-minus-standard fidelity.
    pub fn fidelity_delta(&self) -> f64 {
        self.optimized.fidelity - self.standard.fidelity
    }
}

/// Aggregates for one family.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySummary {
    /// Family.
    pub family: Family,
    /// Circuits in this family.
    pub circuits: usize,
    /// Geometric mean of the per-circuit duration ratios.
    pub mean_duration_ratio: f64,
    /// Arithmetic mean standard-flow fidelity.
    pub mean_fidelity_standard: f64,
    /// Arithmetic mean optimized-flow fidelity.
    pub mean_fidelity_optimized: f64,
}

impl FamilySummary {
    /// Whether pulse-level compilation beat gate-level on duration for
    /// this family (the paper's headline claim, per family).
    pub fn pulse_wins_duration(&self) -> bool {
        self.mean_duration_ratio < 1.0
    }
}

/// The full comparative report.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusReport {
    /// Tier that was run.
    pub tier: Tier,
    /// Shots per circuit per flow.
    pub shots: usize,
    /// Pipeline seed root.
    pub seed: u64,
    /// Device seed root.
    pub device_seed: u64,
    /// Per-circuit results, in generation order.
    pub circuits: Vec<CircuitReport>,
}

/// FNV-1a fold of one `u64` word.
fn fnv1a(h: u64, word: u64) -> u64 {
    let mut h = h;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a checksum of a counts vector.
pub fn counts_checksum(counts: &[u64]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, counts.len() as u64);
    for &c in counts {
        h = fnv1a(h, c);
    }
    h
}

impl CorpusReport {
    /// Family aggregates, in [`Family::all`] order.
    pub fn family_summaries(&self) -> Vec<FamilySummary> {
        Family::all()
            .into_iter()
            .filter_map(|family| {
                let rows: Vec<&CircuitReport> = self
                    .circuits
                    .iter()
                    .filter(|c| c.family == family)
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                let n = rows.len() as f64;
                let log_ratio: f64 = rows.iter().map(|r| r.duration_ratio().ln()).sum();
                Some(FamilySummary {
                    family,
                    circuits: rows.len(),
                    mean_duration_ratio: (log_ratio / n).exp(),
                    mean_fidelity_standard: rows.iter().map(|r| r.standard.fidelity).sum::<f64>()
                        / n,
                    mean_fidelity_optimized: rows.iter().map(|r| r.optimized.fidelity).sum::<f64>()
                        / n,
                })
            })
            .collect()
    }

    /// How many families pulse-level compilation beats gate-level on
    /// duration (the acceptance bar is ≥ 3).
    pub fn families_where_pulse_wins(&self) -> usize {
        self.family_summaries()
            .iter()
            .filter(|s| s.pulse_wins_duration())
            .count()
    }

    /// One checksum over every deterministic field — bit-identical runs
    /// (across thread counts, machines, cache temperatures) fold to the
    /// same value. Wall-clock columns are excluded.
    pub fn checksum(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.shots as u64);
        h = fnv1a(h, self.seed);
        h = fnv1a(h, self.device_seed);
        for c in &self.circuits {
            for byte in c.name.bytes() {
                h = fnv1a(h, byte as u64);
            }
            for flow in [&c.standard, &c.optimized] {
                h = fnv1a(h, flow.swaps as u64);
                h = fnv1a(h, flow.depth as u64);
                h = fnv1a(h, flow.two_qubit_gates as u64);
                h = fnv1a(h, flow.duration_dt);
                h = fnv1a(h, flow.pulse_count as u64);
                h = fnv1a(h, flow.fidelity.to_bits());
                h = fnv1a(h, flow.counts_checksum);
                h = fnv1a(h, flow.verified as u64);
            }
        }
        h
    }

    /// The report as a JSON document (hand-rolled; no serde in-tree).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 512 * self.circuits.len());
        let tier = match self.tier {
            Tier::Smoke => "smoke",
            Tier::Full => "full",
        };
        out.push_str("{\n");
        out.push_str(&format!("  \"tier\": \"{tier}\",\n"));
        out.push_str(&format!("  \"shots\": {},\n", self.shots));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"device_seed\": {},\n", self.device_seed));
        out.push_str(&format!("  \"checksum\": \"{:016x}\",\n", self.checksum()));
        out.push_str(&format!(
            "  \"families_where_pulse_wins_duration\": {},\n",
            self.families_where_pulse_wins()
        ));
        out.push_str("  \"families\": [\n");
        let summaries = self.family_summaries();
        for (i, s) in summaries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"circuits\": {}, \"mean_duration_ratio\": {:?}, \
                 \"mean_fidelity_standard\": {:?}, \"mean_fidelity_optimized\": {:?}, \
                 \"pulse_wins_duration\": {}}}{}\n",
                s.family,
                s.circuits,
                s.mean_duration_ratio,
                s.mean_fidelity_standard,
                s.mean_fidelity_optimized,
                s.pulse_wins_duration(),
                if i + 1 < summaries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"circuits\": [\n");
        for (i, c) in self.circuits.iter().enumerate() {
            let flow = |f: &FlowMetrics| {
                format!(
                    "{{\"swaps\": {}, \"depth\": {}, \"two_qubit_gates\": {}, \
                     \"duration_dt\": {}, \"pulse_count\": {}, \"executor\": \"{}\", \
                     \"fidelity\": {:?}, \"counts_checksum\": \"{:016x}\", \
                     \"verified\": {}, \"wall_ms\": {}}}",
                    f.swaps,
                    f.depth,
                    f.two_qubit_gates,
                    f.duration_dt,
                    f.pulse_count,
                    f.executor.name(),
                    f.fidelity,
                    f.counts_checksum,
                    f.verified,
                    f.wall_ms.map_or("null".to_string(), |w| w.to_string()),
                )
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"family\": \"{}\", \"width\": {}, \
                 \"duration_ratio\": {:?}, \"fidelity_delta\": {:?},\n     \
                 \"standard\": {},\n     \"optimized\": {}}}{}\n",
                c.name,
                c.family,
                c.width,
                c.duration_ratio(),
                c.fidelity_delta(),
                flow(&c.standard),
                flow(&c.optimized),
                if i + 1 < self.circuits.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The report as a markdown document: a family summary table, the
    /// verdict line, and the full per-circuit table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::with_capacity(2048 + 256 * self.circuits.len());
        let tier = match self.tier {
            Tier::Smoke => "smoke",
            Tier::Full => "full",
        };
        out.push_str(&format!(
            "# Corpus report ({tier} tier, {} circuits, {} shots, seed {})\n\n",
            self.circuits.len(),
            self.shots,
            self.seed
        ));
        out.push_str(
            "Gate-level (`Standard`) vs pulse-level (`Optimized`) compilation, per family.\n\
             `duration ratio` is optimized/standard schedule length — below 1.0 means the\n\
             pulse-level flow produced a shorter schedule.\n\n",
        );
        out.push_str("| family | circuits | mean duration ratio | mean fid (std) | mean fid (opt) | pulse wins duration |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for s in self.family_summaries() {
            out.push_str(&format!(
                "| {} | {} | {:.3} | {:.4} | {:.4} | {} |\n",
                s.family,
                s.circuits,
                s.mean_duration_ratio,
                s.mean_fidelity_standard,
                s.mean_fidelity_optimized,
                if s.pulse_wins_duration() { "yes" } else { "no" }
            ));
        }
        out.push_str(&format!(
            "\n**Verdict:** pulse-level compilation beats gate-level on schedule duration \
             for {}/{} families. Report checksum `{:016x}`.\n\n",
            self.families_where_pulse_wins(),
            self.family_summaries().len(),
            self.checksum()
        ));
        out.push_str("## Per-circuit results\n\n");
        out.push_str(
            "| circuit | n | exec | swaps | depth s/o | duration dt s/o | ratio | pulses s/o | fid s | fid o | verified s/o | wall ms s/o |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
        for c in &self.circuits {
            let wall = |f: &FlowMetrics| f.wall_ms.map_or("-".to_string(), |w| w.to_string());
            let verified = |f: &FlowMetrics| if f.verified { "yes" } else { "NO" };
            out.push_str(&format!(
                "| {} | {} | {} | {}/{} | {}/{} | {}/{} | {:.3} | {}/{} | {:.4} | {:.4} | {}/{} | {}/{} |\n",
                c.name,
                c.width,
                c.optimized.executor.name(),
                c.standard.swaps,
                c.optimized.swaps,
                c.standard.depth,
                c.optimized.depth,
                c.standard.duration_dt,
                c.optimized.duration_dt,
                c.duration_ratio(),
                c.standard.pulse_count,
                c.optimized.pulse_count,
                c.standard.fidelity,
                c.optimized.fidelity,
                verified(&c.standard),
                verified(&c.optimized),
                wall(&c.standard),
                wall(&c.optimized),
            ));
        }
        out
    }
}

/// One calibrated backend per register width (devices are built lazily and
/// reused across same-width circuits).
struct Backends {
    device_seed: u64,
    setups: Vec<(u32, DeviceModel, Calibration)>,
}

impl Backends {
    fn new(device_seed: u64) -> Self {
        Backends {
            device_seed,
            setups: Vec::new(),
        }
    }

    /// Index of the setup for `width`, building it on first use.
    fn index_of(&mut self, width: u32) -> usize {
        if let Some(i) = self.setups.iter().position(|(w, _, _)| *w == width) {
            return i;
        }
        let mut rng = seeded(stream_seed(self.device_seed, width as u64));
        let device = DeviceModel::almaden_like(width as usize, &mut rng);
        let root = rng.gen::<u64>();
        let calibration = Calibration::run_seeded(&device, &CalibrationOptions::default(), root);
        self.setups.push((width, device, calibration));
        self.setups.len() - 1
    }
}

/// Runs one corpus entry under one mode.
fn run_flow(
    entry: &CorpusEntry,
    device: &DeviceModel,
    calibration: &Calibration,
    config: &PipelineConfig,
    pool: &ShotPool,
    clock: &Option<Clock>,
) -> Result<FlowMetrics, CorpusError> {
    let tag = |error: PipelineError| CorpusError {
        circuit: entry.name.clone(),
        error,
    };
    let t0 = clock.as_ref().map(|c| c());
    let cc = compile_circuit(device, calibration, &entry.circuit, config.mode).map_err(tag)?;
    let wall_ms = t0.map(|t0| {
        let t1 = clock.as_ref().map(|c| c()).unwrap_or(t0);
        t1.saturating_sub(t0)
    });
    // Re-run the static verifier explicitly (the in-compiler pass would
    // already have failed the compile) so the report records the result
    // as data even under `OPC_VERIFY=0`.
    let verified =
        quant_pulse::verify(&cc.compiled.program.schedule, &device.verify_spec()).is_empty();
    let (executor, counts) = execute_compiled(device, &cc, config, pool).map_err(tag)?;
    let ideal = cc.routed.circuit.output_distribution();
    let fidelity = hellinger_fidelity(&ideal, &counts_to_distribution(&counts));
    Ok(FlowMetrics {
        swaps: cc.routed.swaps_inserted,
        depth: cc.routed.circuit.depth(),
        two_qubit_gates: cc.routed.circuit.two_qubit_count(),
        duration_dt: cc.compiled.duration(),
        pulse_count: cc.compiled.pulse_count(),
        executor,
        fidelity,
        counts_checksum: counts_checksum(&counts),
        verified,
        wall_ms,
    })
}

/// Runs the corpus: every circuit of the tier, both flows, one report.
pub fn run_corpus(options: &CorpusOptions, pool: &ShotPool) -> Result<CorpusReport, CorpusError> {
    let entries = generate(options.tier);
    let mut backends = Backends::new(options.device_seed);
    let mut circuits = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let base = PipelineConfig {
            shots: options.shots,
            seed: stream_seed(options.seed, i as u64),
            trajectories: options.trajectories,
            ..PipelineConfig::default()
        };
        let idx = backends.index_of(entry.width);
        let (_, device, calibration) = &backends.setups[idx];
        let standard = run_flow(
            entry,
            device,
            calibration,
            &PipelineConfig {
                mode: CompileMode::Standard,
                ..base.clone()
            },
            pool,
            &options.clock,
        )?;
        let optimized = run_flow(
            entry,
            device,
            calibration,
            &PipelineConfig {
                mode: CompileMode::Optimized,
                ..base
            },
            pool,
            &options.clock,
        )?;
        circuits.push(CircuitReport {
            family: entry.family,
            name: entry.name.clone(),
            width: entry.width,
            standard,
            optimized,
        });
    }
    Ok(CorpusReport {
        tier: options.tier,
        shots: options.shots,
        seed: options.seed,
        device_seed: options.device_seed,
        circuits,
    })
}
