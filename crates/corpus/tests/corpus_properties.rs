//! Property tests over the generated corpus.
//!
//! 1. For every smoke-tier circuit, both compilation flows produce
//!    **bit-identical counts** on the fast executor path vs the retained
//!    reference path — the corpus rides on the same fast-vs-ref contract
//!    the kernel equivalence suites enforce. The ≤6-qubit circuits pin
//!    the density executor's stride kernels; the 10-qubit QAOA line pins
//!    the trajectory engine's fused route against its reference path.
//!    CI runs this at `OPC_THREADS=1` and `4`.
//! 2. Every full-tier circuit survives a QASM print → parse round trip
//!    op-for-op (the corpus doubles as the emitter's test vector set),
//!    and the reparsed circuit's unitary matches on small registers.
//! 3. Trajectory execution of a wide corpus circuit is bit-identical
//!    across explicit pool sizes (serial vs 4 threads) — the in-process
//!    witness for the wide path's thread contract.

use pulse_compiler::CompileMode;
use quant_circuit::qasm;
use quant_corpus::{
    compile_circuit, execute_compiled, generate, run_circuit, PipelineConfig, Tier,
};
use quant_device::{calibrate, DeviceModel, ShotPool};
use quant_math::{seeded, stream_seed};

fn backend(width: u32, device_seed: u64) -> (DeviceModel, quant_device::Calibration) {
    let mut rng = seeded(stream_seed(device_seed, width as u64));
    let device = DeviceModel::almaden_like(width as usize, &mut rng);
    let calibration = calibrate(&device, &mut rng);
    (device, calibration)
}

#[test]
fn smoke_circuits_agree_with_the_reference_path_bit_for_bit() {
    let pool = ShotPool::from_env();
    for (i, entry) in generate(Tier::Smoke).iter().enumerate() {
        let (device, calibration) = backend(entry.width, 7);
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let base = PipelineConfig {
                mode,
                shots: 512,
                seed: stream_seed(11, i as u64),
                ..PipelineConfig::default()
            };
            let fast = run_circuit(&device, &calibration, &entry.circuit, &base, &pool)
                .unwrap_or_else(|e| panic!("{} fast: {e}", entry.name));
            let reference = run_circuit(
                &device,
                &calibration,
                &entry.circuit,
                &PipelineConfig {
                    reference: true,
                    ..base
                },
                &pool,
            )
            .unwrap_or_else(|e| panic!("{} reference: {e}", entry.name));
            assert_eq!(
                fast.counts, reference.counts,
                "{} ({mode:?}): fast and reference counts diverge",
                entry.name
            );
            assert_eq!(
                fast.fidelity.to_bits(),
                reference.fidelity.to_bits(),
                "{} ({mode:?}): fidelity bits diverge",
                entry.name
            );
            assert_eq!(fast.counts.iter().sum::<u64>(), 512, "{}", entry.name);
        }
    }
}

#[test]
fn corpus_circuits_round_trip_through_the_qasm_emitter() {
    for entry in generate(Tier::Full) {
        let printed = qasm::print(&entry.circuit);
        let reparsed = qasm::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: emitter output rejected: {e}", entry.name));
        assert_eq!(
            entry.circuit, reparsed,
            "{}: print→parse is not the identity",
            entry.name
        );
        // On registers small enough to build the unitary, check the round
        // trip preserves semantics, not just syntax.
        if entry.width <= 5 {
            let diff = entry
                .circuit
                .unitary()
                .phase_invariant_diff(&reparsed.unitary());
            assert!(diff < 1e-12, "{}: unitary drifted by {diff}", entry.name);
        }
    }
}

#[test]
fn wide_trajectory_counts_are_pool_size_independent() {
    // qaoa_n8_p1 is the narrowest full-tier circuit past the density
    // wall; run its optimized compilation under two explicit pools.
    let entry = generate(Tier::Full)
        .into_iter()
        .find(|e| e.name == "qaoa_n8_p1")
        .expect("qaoa_n8_p1 in full tier");
    let (device, calibration) = backend(entry.width, 7);
    let cc = compile_circuit(
        &device,
        &calibration,
        &entry.circuit,
        CompileMode::Optimized,
    )
    .expect("compile qaoa_n8_p1");
    let config = PipelineConfig {
        shots: 256,
        trajectories: 8,
        seed: 13,
        ..PipelineConfig::default()
    };
    let (kind_serial, serial) =
        execute_compiled(&device, &cc, &config, &ShotPool::serial()).expect("serial run");
    let (kind_pooled, pooled) =
        execute_compiled(&device, &cc, &config, &ShotPool::new(4)).expect("pooled run");
    assert_eq!(kind_serial.name(), "trajectory");
    assert_eq!(kind_pooled.name(), "trajectory");
    assert_eq!(serial, pooled, "trajectory counts depend on the pool size");
    assert_eq!(serial.iter().sum::<u64>(), 256);
}

#[test]
fn every_full_tier_schedule_passes_static_verification() {
    // 4. The acceptance bar for the verifier rollout: every corpus
    //    circuit — full tier, both compilation flows — produces a
    //    schedule with zero `pulse::verify` findings. Compile-only
    //    (no execution), with one backend per register width.
    let mut backends: std::collections::BTreeMap<u32, _> = std::collections::BTreeMap::new();
    for entry in generate(Tier::Full) {
        let (device, calibration) = backends
            .entry(entry.width)
            .or_insert_with(|| backend(entry.width, 7));
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let cc = compile_circuit(device, calibration, &entry.circuit, mode)
                .unwrap_or_else(|e| panic!("{} ({mode:?}): {e}", entry.name));
            let findings =
                quant_pulse::verify(&cc.compiled.program.schedule, &device.verify_spec());
            assert!(
                findings.is_empty(),
                "{} ({mode:?}) failed verification:\n{}",
                entry.name,
                findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
