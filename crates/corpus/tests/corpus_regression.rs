//! The standing corpus regression ratchet.
//!
//! Renders the smoke-tier corpus (fixed seeds, no clock) as golden text
//! and compares it bit-exactly against the committed summary in
//! `crates/corpus/golden/corpus_smoke.txt`. Any drift — longer schedules,
//! lower fidelities, different counts — fails with a field-level diff
//! that names the regression.
//!
//! CI runs this at `OPC_THREADS=1` and `OPC_THREADS=4` against the same
//! golden file, so it doubles as the cross-thread bit-identity gate for
//! the whole pipeline (routing, compilation, calibration, execution,
//! sampling).
//!
//! To re-bless after a deliberate change:
//!
//! ```text
//! OPC_CORPUS_BLESS=1 cargo test -p quant-corpus --test corpus_regression
//! ```

use quant_corpus::{golden, run_corpus, CorpusOptions};
use quant_device::ShotPool;
use std::path::Path;

#[test]
fn smoke_corpus_matches_committed_golden() {
    let report =
        run_corpus(&CorpusOptions::default(), &ShotPool::from_env()).expect("smoke corpus run");
    let current = golden::render(&report);

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/corpus_smoke.txt");
    if std::env::var("OPC_CORPUS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &current).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(no committed golden — run once with OPC_CORPUS_BLESS=1)",
            path.display()
        )
    });
    let diffs = golden::diff(&committed, &current);
    assert!(
        diffs.is_empty(),
        "smoke corpus drifted from the committed golden \
         ({} difference(s); re-bless with OPC_CORPUS_BLESS=1 if deliberate):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn smoke_corpus_meets_the_paper_claim() {
    // The acceptance bar: pulse-level compilation beats gate-level on
    // schedule duration for at least 3 of the 5 families.
    let report =
        run_corpus(&CorpusOptions::default(), &ShotPool::from_env()).expect("smoke corpus run");
    let wins = report.families_where_pulse_wins();
    assert!(
        wins >= 3,
        "pulse-level wins duration on only {wins}/5 families:\n{}",
        report.to_markdown()
    );
    // And never at a catastrophic fidelity cost.
    for summary in report.family_summaries() {
        assert!(
            summary.mean_fidelity_optimized >= summary.mean_fidelity_standard - 0.05,
            "{}: optimized fidelity {} collapsed vs standard {}",
            summary.family,
            summary.mean_fidelity_optimized,
            summary.mean_fidelity_standard
        );
    }
}

#[test]
fn report_checksum_is_reproducible_in_process() {
    let opts = CorpusOptions::default();
    let a = run_corpus(&opts, &ShotPool::from_env()).expect("first run");
    let b = run_corpus(&opts, &ShotPool::from_env()).expect("second run");
    assert_eq!(
        a.checksum(),
        b.checksum(),
        "corpus run is not a pure function"
    );
    assert_eq!(golden::render(&a), golden::render(&b));
}
