//! Property-style equivalence tests for the fusion layer: a plan's fused
//! blocks, applied through the blocked state-vector kernels, must
//! reproduce sequential reference application of the original op stream
//! on the mixed qubit/qutrit register `[2, 3, 2]` — and the fused block
//! matrices must equal the ordered product of the embedded ops.

use quant_math::{normal, seeded, unitary_exp, CMat, C64};
use quant_sim::fusion::{FusionPlan, OpDesc, Step, MAX_FUSED_WEIGHT};
use quant_sim::{embed, KernelScratch, StateVector};
use rand::{rngs::StdRng, Rng};

const DIMS: [usize; 3] = [2, 3, 2];

fn random_matrix(rng: &mut StdRng, n: usize) -> CMat {
    CMat::from_fn(n, n, |_, _| {
        C64::new(normal(rng, 0.0, 1.0), normal(rng, 0.0, 1.0))
    })
}

fn random_unitary(rng: &mut StdRng, n: usize) -> CMat {
    let a = random_matrix(rng, n);
    let h = (&a + &a.dagger()).scale(C64::real(0.5));
    unitary_exp(&h, 0.7)
}

/// A random entangled state: the zero state hit by a full-register
/// random unitary through the reference apply.
fn random_state(rng: &mut StdRng) -> StateVector {
    let mut psi = StateVector::zero(&DIMS);
    let u = random_unitary(rng, DIMS.iter().product());
    psi.apply_unitary_ref(&u, &[0, 1, 2]);
    psi
}

/// Candidate supports over the `[2,3,2]` register, both digit orders.
fn supports() -> Vec<Vec<usize>> {
    vec![
        vec![0],
        vec![1],
        vec![2],
        vec![0, 1],
        vec![1, 0],
        vec![1, 2],
        vec![2, 1],
        vec![0, 2],
        vec![2, 0],
    ]
}

/// A random op stream mixing unitary gates and local (channel-point)
/// ops, with matrices for both.
fn random_stream(rng: &mut StdRng, len: usize) -> (Vec<OpDesc>, Vec<CMat>) {
    let pool = supports();
    let mut descs = Vec::with_capacity(len);
    let mut mats = Vec::with_capacity(len);
    for _ in 0..len {
        if rng.gen::<f64>() < 0.25 {
            // A local channel point: single subsystem, any matrix (use a
            // unitary stand-in; the fold arithmetic is matrix-agnostic).
            let q = rng.gen_range(0..DIMS.len());
            descs.push(OpDesc::local(q));
            mats.push(random_unitary(rng, DIMS[q]));
        } else {
            let support = pool[rng.gen_range(0..pool.len())].clone();
            let dim: usize = support.iter().map(|&s| DIMS[s]).product();
            mats.push(random_unitary(rng, dim));
            descs.push(OpDesc::unitary(&support));
        }
    }
    (descs, mats)
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).norm_sqr().sqrt())
        .fold(0.0f64, f64::max)
}

#[test]
fn fused_apply_matches_sequential_reference_apply() {
    let mut rng = seeded(0xFA57_B10C);
    let mut scratch = KernelScratch::new();
    for trial in 0..24 {
        let len = 3 + (trial % 9);
        let (descs, mats) = random_stream(&mut rng, len);
        let plan = FusionPlan::build(&descs, &DIMS, MAX_FUSED_WEIGHT);
        let fused = plan.fused_blocks(&mats, &DIMS, &mut scratch);

        let slow_base = random_state(&mut rng);
        let mut fast = slow_base.clone();
        let mut slow = slow_base;
        for step in &plan.steps {
            if let Step::Close { block } = step {
                fast.apply_unitary_scratch(
                    &fused[*block],
                    &plan.blocks[*block].targets,
                    &mut scratch,
                );
            }
        }
        for (desc, mat) in descs.iter().zip(&mats) {
            slow.apply_unitary_ref(mat, &desc.support);
        }
        let diff = max_amp_diff(&fast, &slow);
        assert!(
            diff < 1e-12,
            "trial {trial}: fused vs sequential diff {diff:.3e}\nplan: {plan:?}"
        );
    }
}

#[test]
fn fused_block_matrices_equal_embedded_products() {
    let mut rng = seeded(0x0F0E_0D0C);
    let mut scratch = KernelScratch::new();
    for trial in 0..12 {
        let (descs, mats) = random_stream(&mut rng, 4 + (trial % 5));
        let plan = FusionPlan::build(&descs, &DIMS, MAX_FUSED_WEIGHT);
        let fused = plan.fused_blocks(&mats, &DIMS, &mut scratch);

        // Reference: embed every op into its block's subspace and take
        // the ordered product per block.
        let mut expect: Vec<CMat> = plan
            .blocks
            .iter()
            .map(|b| {
                let w: usize = b.targets.iter().map(|&t| DIMS[t]).product();
                CMat::identity(w)
            })
            .collect();
        for step in &plan.steps {
            match step {
                Step::Fold { op, block, local } => {
                    let bdims = plan.block_dims(*block, &DIMS);
                    let lifted = embed(&mats[*op], local, &bdims);
                    expect[*block] = &lifted * &expect[*block];
                }
                Step::Merge { from, into, local } => {
                    let bdims = plan.block_dims(*into, &DIMS);
                    let lifted = embed(&fused[*from], local, &bdims);
                    expect[*into] = &lifted * &expect[*into];
                }
                _ => {}
            }
        }
        for (b, (got, want)) in fused.iter().zip(&expect).enumerate() {
            let diff = got.phase_invariant_diff(want);
            assert!(
                diff < 1e-12,
                "trial {trial} block {b}: matrix diff {diff:.3e}"
            );
        }
    }
}
