//! Property-style equivalence tests: the stride kernels versus the
//! `embed()` reference route, on random unitaries, random CPTP Kraus sets
//! and random Hermitian observables over a mixed qubit/qutrit register
//! `[2, 3, 2]` (and qubit-only registers), across every interesting target
//! tuple including reversed orderings.

use quant_math::{eigh, normal, seeded, unitary_exp, CMat, C64};
use quant_sim::{DensityMatrix, KernelScratch};
use rand::rngs::StdRng;

const DIMS: [usize; 3] = [2, 3, 2];

/// Target tuples covering 1- and 2-subsystem gates, adjacent and not,
/// in both digit orders.
fn target_sets() -> Vec<Vec<usize>> {
    vec![
        vec![0],
        vec![1],
        vec![2],
        vec![0, 1],
        vec![1, 0],
        vec![1, 2],
        vec![2, 1],
        vec![0, 2],
        vec![2, 0],
        vec![0, 1, 2],
        vec![2, 0, 1],
    ]
}

fn gate_dim(targets: &[usize]) -> usize {
    targets.iter().map(|&t| DIMS[t]).product()
}

fn random_matrix(rng: &mut StdRng, n: usize) -> CMat {
    CMat::from_fn(n, n, |_, _| {
        C64::new(normal(rng, 0.0, 1.0), normal(rng, 0.0, 1.0))
    })
}

fn random_hermitian(rng: &mut StdRng, n: usize) -> CMat {
    let a = random_matrix(rng, n);
    (&a + &a.dagger()).scale(C64::real(0.5))
}

fn random_unitary(rng: &mut StdRng, n: usize) -> CMat {
    unitary_exp(&random_hermitian(rng, n), 0.7)
}

/// A random CPTP Kraus set: random operators `Aᵢ` whitened by
/// `S^{-1/2}` where `S = Σ Aᵢ†Aᵢ`, so `Σ Kᵢ†Kᵢ = I` exactly (to float).
fn random_kraus(rng: &mut StdRng, n: usize, ops: usize) -> Vec<CMat> {
    let raw: Vec<CMat> = (0..ops).map(|_| random_matrix(rng, n)).collect();
    let mut s = CMat::zeros(n, n);
    for a in &raw {
        s = &s + &(&a.dagger() * a);
    }
    let eig = eigh(&s);
    let inv_sqrt_diag = CMat::diag(
        &eig.values
            .iter()
            .map(|&l| C64::real(1.0 / l.max(1e-300).sqrt()))
            .collect::<Vec<_>>(),
    );
    let s_inv_sqrt = &(&eig.vectors * &inv_sqrt_diag) * &eig.vectors.dagger();
    raw.iter().map(|a| a * &s_inv_sqrt).collect()
}

/// A random full-rank mixed state, built through the reference path only:
/// a global random unitary on `|0…0⟩⟨0…0|` followed by a random channel.
fn random_density(rng: &mut StdRng) -> DensityMatrix {
    let total: usize = DIMS.iter().product();
    let mut dm = DensityMatrix::zero(&DIMS);
    dm.apply_unitary_ref(&random_unitary(rng, total), &[0, 1, 2]);
    dm.apply_kraus_ref(&random_kraus(rng, total, 2), &[0, 1, 2]);
    debug_assert!((dm.trace() - 1.0).abs() < 1e-9);
    dm
}

#[test]
fn unitary_kernel_matches_embed_reference() {
    let mut rng = seeded(0xA11CE);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        for round in 0..3 {
            let u = random_unitary(&mut rng, gate_dim(&targets));
            let mut fast = random_density(&mut rng);
            let mut slow = fast.clone();
            fast.apply_unitary_scratch(&u, &targets, &mut scratch);
            slow.apply_unitary_ref(&u, &targets);
            let diff = fast.matrix().max_abs_diff(slow.matrix());
            assert!(
                diff < 1e-12,
                "targets {targets:?} round {round}: diff {diff:.3e}"
            );
            assert!((fast.trace() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn kraus_kernel_matches_embed_reference() {
    let mut rng = seeded(0xBEEF);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        for ops in [1usize, 2, 4] {
            let kraus = random_kraus(&mut rng, gate_dim(&targets), ops);
            let mut fast = random_density(&mut rng);
            let mut slow = fast.clone();
            fast.apply_kraus_scratch(&kraus, &targets, &mut scratch);
            slow.apply_kraus_ref(&kraus, &targets);
            let diff = fast.matrix().max_abs_diff(slow.matrix());
            assert!(
                diff < 1e-12,
                "targets {targets:?} with {ops} ops: diff {diff:.3e}"
            );
            assert!((fast.trace() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn expectation_kernel_matches_embed_reference() {
    let mut rng = seeded(0xFACADE);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        let op = random_hermitian(&mut rng, gate_dim(&targets));
        let rho = random_density(&mut rng);
        let fast = rho.expectation_scratch(&op, &targets, &mut scratch);
        let slow = rho.expectation_ref(&op, &targets);
        assert!(
            (fast - slow).abs() < 1e-10,
            "targets {targets:?}: {fast} vs {slow}"
        );
    }
}

#[test]
fn shared_scratch_is_equivalent_to_fresh_scratch() {
    // One scratch reused across interleaved target tuples and *registers
    // of different shapes* must behave exactly like fresh scratches —
    // this pins the (targets, dims) index-cache keying.
    let mut rng = seeded(0x5C4A7C);
    let mut shared = KernelScratch::new();
    for _ in 0..4 {
        for dims in [vec![2usize, 3, 2], vec![2, 2], vec![3, 2]] {
            let targets: Vec<usize> = vec![rng_index(&mut rng, dims.len())];
            let k = dims[targets[0]];
            let u = random_unitary(&mut rng, k);
            let mut a = DensityMatrix::zero(&dims);
            let mut b = a.clone();
            a.apply_unitary_scratch(&u, &targets, &mut shared);
            b.apply_unitary_scratch(&u, &targets, &mut KernelScratch::new());
            assert_eq!(
                a.matrix().as_slice(),
                b.matrix().as_slice(),
                "shared scratch diverged on dims {dims:?} targets {targets:?}"
            );
        }
    }
}

fn rng_index(rng: &mut StdRng, n: usize) -> usize {
    (normal(rng, 0.0, 100.0).abs() as usize) % n
}

/// A random normalized state over the mixed register, built through the
/// reference path only.
fn random_state(rng: &mut StdRng) -> quant_sim::StateVector {
    let total: usize = DIMS.iter().product();
    let mut psi = quant_sim::StateVector::zero(&DIMS);
    psi.apply_unitary_ref(&random_unitary(rng, total), &[0, 1, 2]);
    psi
}

#[test]
fn state_vector_unitary_kernel_matches_skip_scan_reference() {
    // The trajectory executor's hot path: random (sub-)unitaries through
    // `apply_unitary_scratch` versus the retained skip-scan reference, on
    // every target tuple over the mixed qubit/qutrit register.
    let mut rng = seeded(0x57A7E);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        for round in 0..3 {
            let u = random_unitary(&mut rng, gate_dim(&targets));
            let mut fast = random_state(&mut rng);
            let mut slow = fast.clone();
            fast.apply_unitary_scratch(&u, &targets, &mut scratch);
            slow.apply_unitary_ref(&u, &targets);
            let diff = fast
                .amplitudes()
                .iter()
                .zip(slow.amplitudes())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                diff < 1e-12,
                "targets {targets:?} round {round}: diff {diff:.3e}"
            );
            assert!((fast.norm() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn state_vector_kraus_branch_kernel_matches_reference() {
    // Branch application must agree on the post-branch state *and* the
    // returned weight ‖Kψ‖² — the weight drives the trajectory executor's
    // branch sampling, so a drift here would bias the ensemble.
    let mut rng = seeded(0xB4A9C4);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        for ops in [2usize, 4] {
            let kraus = random_kraus(&mut rng, gate_dim(&targets), ops);
            for k in &kraus {
                let mut fast = random_state(&mut rng);
                let mut slow = fast.clone();
                let wf = fast.apply_kraus_branch_scratch(k, &targets, &mut scratch);
                let ws = slow.apply_kraus_branch_ref(k, &targets);
                assert!(
                    (wf - ws).abs() < 1e-12,
                    "targets {targets:?}: weight {wf} vs {ws}"
                );
                let diff = fast
                    .amplitudes()
                    .iter()
                    .zip(slow.amplitudes())
                    .map(|(a, b)| (*a - *b).abs())
                    .fold(0.0f64, f64::max);
                assert!(diff < 1e-12, "targets {targets:?}: diff {diff:.3e}");
            }
        }
    }
}

#[test]
fn branch_weight_matches_actual_branch_application() {
    // The in-place weigher must predict exactly the weight the reference
    // branch application reports, without touching the state.
    let mut rng = seeded(0x3E1647);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        let kraus = random_kraus(&mut rng, gate_dim(&targets), 3);
        let psi = random_state(&mut rng);
        let before: Vec<C64> = psi.amplitudes().to_vec();
        for k in &kraus {
            let w = scratch.branch_weight(psi.amplitudes(), k, &targets, psi.dims());
            let mut applied = psi.clone();
            let w_ref = applied.apply_kraus_branch_ref(k, &targets);
            assert!(
                (w - w_ref).abs() < 1e-12,
                "targets {targets:?}: weight {w} vs applied {w_ref}"
            );
        }
        assert_eq!(psi.amplitudes(), &before[..], "weigher mutated the state");
    }
}

#[test]
fn state_vector_expectation_kernel_matches_reference() {
    let mut rng = seeded(0xE59EC7);
    let mut scratch = KernelScratch::new();
    for targets in target_sets() {
        let op = random_hermitian(&mut rng, gate_dim(&targets));
        let psi = random_state(&mut rng);
        let fast = psi.expectation_scratch(&op, &targets, &mut scratch);
        let slow = psi.expectation_ref(&op, &targets);
        assert!(
            (fast - slow).abs() < 1e-10,
            "targets {targets:?}: {fast} vs {slow}"
        );
    }
}

#[test]
fn state_vector_and_density_kernels_agree_on_circuits() {
    // Pure-state evolution through the stride kernels must match the
    // state-vector simulator exactly (both are stride-based paths).
    use quant_sim::{gates, StateVector};
    let mut psi = StateVector::zero(&DIMS);
    let mut rho = DensityMatrix::zero(&DIMS);
    let mut scratch = KernelScratch::new();
    let steps: Vec<(CMat, Vec<usize>)> = vec![
        (gates::h(), vec![0]),
        (gates::qutrit_x01(), vec![1]),
        (gates::cnot(), vec![2, 0]),
        (gates::ry(0.7), vec![2]),
        (gates::qutrit_increment(), vec![1]),
    ];
    for (u, targets) in &steps {
        psi.apply_unitary(u, targets);
        rho.apply_unitary_scratch(u, targets, &mut scratch);
    }
    let expect = DensityMatrix::from_state(&psi);
    assert!(rho.matrix().max_abs_diff(expect.matrix()) < 1e-12);
    assert!((rho.fidelity_pure(&psi) - 1.0).abs() < 1e-10);
}
