//! Property-based tests of the quantum simulator.

use proptest::prelude::*;
use quant_math::{C64, CMat};
use quant_sim::{channels, gates, DensityMatrix, StateVector};

fn arb_u3() -> impl Strategy<Value = CMat> {
    (
        0.0..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
    )
        .prop_map(|(t, p, l)| gates::u3(t, p, l))
}

/// A short random gate program on 3 qubits.
fn arb_program() -> impl Strategy<Value = Vec<(CMat, Vec<usize>)>> {
    let op = prop_oneof![
        (arb_u3(), 0usize..3).prop_map(|(u, q)| (u, vec![q])),
        (0usize..2).prop_map(|q| (gates::cnot(), vec![q, q + 1])),
        ((0usize..2), 0.1..3.0f64).prop_map(|(q, t)| (gates::zz(t), vec![q, q + 1])),
    ];
    proptest::collection::vec(op, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn state_norm_preserved(prog in arb_program()) {
        let mut psi = StateVector::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
        }
        let total: f64 = psi.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_matrix_matches_state_vector(prog in arb_program()) {
        let mut psi = StateVector::zero_qubits(3);
        let mut rho = DensityMatrix::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
            rho.apply_unitary(u, targets);
        }
        for (a, b) in psi.probabilities().iter().zip(rho.probabilities()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn channels_keep_density_matrices_physical(
        prog in arb_program(),
        gamma in 0.0..0.5f64,
        p in 0.0..0.5f64,
    ) {
        let mut rho = DensityMatrix::zero_qubits(3);
        for (u, targets) in &prog {
            rho.apply_unitary(u, targets);
            rho.apply_kraus(&channels::amplitude_damping(gamma), &[targets[0]]);
            rho.apply_kraus(&channels::depolarizing(p), &[targets[0]]);
        }
        prop_assert!((rho.trace() - 1.0).abs() < 1e-8);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        for prob in rho.probabilities() {
            prop_assert!(prob >= -1e-10);
        }
    }

    #[test]
    fn expectation_bounded_by_operator_norm(u in arb_u3()) {
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&u, &[0]);
        for op in [gates::x(), gates::y(), gates::z()] {
            let e = psi.expectation(&op, &[0]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        }
        // Bloch norm ≤ 1 for pure states (== 1 in fact).
        let (x, y, z) = psi.bloch(0);
        prop_assert!(((x * x + y * y + z * z).sqrt() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bloch_matches_expectations(u in arb_u3()) {
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&u, &[0]);
        let (x, y, z) = psi.bloch(0);
        prop_assert!((x - psi.expectation(&gates::x(), &[0])).abs() < 1e-9);
        prop_assert!((y - psi.expectation(&gates::y(), &[0])).abs() < 1e-9);
        prop_assert!((z - psi.expectation(&gates::z(), &[0])).abs() < 1e-9);
    }

    #[test]
    fn partial_trace_is_consistent(prog in arb_program()) {
        let mut psi = StateVector::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
        }
        for q in 0..3 {
            let r = psi.reduced_density(q);
            prop_assert!((r.trace().re - 1.0).abs() < 1e-9);
            prop_assert!(r.is_hermitian(1e-9));
            // Diagonal matches the marginal distribution.
            let marginal: f64 = psi
                .probabilities()
                .iter()
                .enumerate()
                .filter(|(idx, _)| (idx >> q) & 1 == 0)
                .map(|(_, &p)| p)
                .sum();
            prop_assert!((r[(0, 0)].re - marginal).abs() < 1e-9);
        }
    }

    #[test]
    fn embed_respects_identity(u in arb_u3()) {
        let dims = vec![2usize; 3];
        let full = quant_sim::embed(&u, &[1], &dims);
        let expect = CMat::identity(2).kron(&u).kron(&CMat::identity(2));
        prop_assert!(full.max_abs_diff(&expect) < 1e-12);
        let _ = C64::ZERO;
    }
}
