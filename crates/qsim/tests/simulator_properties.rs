//! Randomized property tests of the quantum simulator.
//!
//! Seeded-loop style (the environment is offline, so no proptest): each
//! test draws random gate programs from a deterministic RNG and asserts
//! the same invariants the original property suite checked.

use quant_math::{seeded, CMat, C64};
use quant_sim::{channels, gates, DensityMatrix, StateVector};
use rand::Rng;

const CASES: usize = 64;

fn rand_u3(rng: &mut impl Rng) -> CMat {
    gates::u3(
        rng.gen_range(0.0..std::f64::consts::PI),
        rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
    )
}

/// A short random gate program on 3 qubits.
fn rand_program(rng: &mut impl Rng) -> Vec<(CMat, Vec<usize>)> {
    let len = rng.gen_range(1usize..10);
    (0..len)
        .map(|_| match rng.gen_range(0u32..3) {
            0 => {
                let q = rng.gen_range(0usize..3);
                (rand_u3(rng), vec![q])
            }
            1 => {
                let q = rng.gen_range(0usize..2);
                (gates::cnot(), vec![q, q + 1])
            }
            _ => {
                let q = rng.gen_range(0usize..2);
                let t = rng.gen_range(0.1..3.0);
                (gates::zz(t), vec![q, q + 1])
            }
        })
        .collect()
}

#[test]
fn state_norm_preserved() {
    let mut rng = seeded(0x31);
    for _ in 0..CASES {
        let prog = rand_program(&mut rng);
        let mut psi = StateVector::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
        }
        let total: f64 = psi.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn density_matrix_matches_state_vector() {
    let mut rng = seeded(0x32);
    for _ in 0..CASES {
        let prog = rand_program(&mut rng);
        let mut psi = StateVector::zero_qubits(3);
        let mut rho = DensityMatrix::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
            rho.apply_unitary(u, targets);
        }
        for (a, b) in psi.probabilities().iter().zip(rho.probabilities()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((rho.purity() - 1.0).abs() < 1e-8);
    }
}

#[test]
fn channels_keep_density_matrices_physical() {
    let mut rng = seeded(0x33);
    for _ in 0..CASES {
        let prog = rand_program(&mut rng);
        let gamma = rng.gen_range(0.0..0.5);
        let p = rng.gen_range(0.0..0.5);
        let mut rho = DensityMatrix::zero_qubits(3);
        for (u, targets) in &prog {
            rho.apply_unitary(u, targets);
            rho.apply_kraus(&channels::amplitude_damping(gamma), &[targets[0]]);
            rho.apply_kraus(&channels::depolarizing(p), &[targets[0]]);
        }
        assert!((rho.trace() - 1.0).abs() < 1e-8);
        assert!(rho.purity() <= 1.0 + 1e-9);
        for prob in rho.probabilities() {
            assert!(prob >= -1e-10);
        }
    }
}

#[test]
fn expectation_bounded_by_operator_norm() {
    let mut rng = seeded(0x34);
    for _ in 0..CASES {
        let u = rand_u3(&mut rng);
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&u, &[0]);
        for op in [gates::x(), gates::y(), gates::z()] {
            let e = psi.expectation(&op, &[0]);
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        }
        // Bloch norm ≤ 1 for pure states (== 1 in fact).
        let (x, y, z) = psi.bloch(0);
        assert!(((x * x + y * y + z * z).sqrt() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn bloch_matches_expectations() {
    let mut rng = seeded(0x35);
    for _ in 0..CASES {
        let u = rand_u3(&mut rng);
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&u, &[0]);
        let (x, y, z) = psi.bloch(0);
        assert!((x - psi.expectation(&gates::x(), &[0])).abs() < 1e-9);
        assert!((y - psi.expectation(&gates::y(), &[0])).abs() < 1e-9);
        assert!((z - psi.expectation(&gates::z(), &[0])).abs() < 1e-9);
    }
}

#[test]
fn partial_trace_is_consistent() {
    let mut rng = seeded(0x36);
    for _ in 0..CASES {
        let prog = rand_program(&mut rng);
        let mut psi = StateVector::zero_qubits(3);
        for (u, targets) in &prog {
            psi.apply_unitary(u, targets);
        }
        for q in 0..3 {
            let r = psi.reduced_density(q);
            assert!((r.trace().re - 1.0).abs() < 1e-9);
            assert!(r.is_hermitian(1e-9));
            // Diagonal matches the marginal distribution.
            let marginal: f64 = psi
                .probabilities()
                .iter()
                .enumerate()
                .filter(|(idx, _)| (idx >> q) & 1 == 0)
                .map(|(_, &p)| p)
                .sum();
            assert!((r[(0, 0)].re - marginal).abs() < 1e-9);
        }
    }
}

#[test]
fn embed_respects_identity() {
    let mut rng = seeded(0x37);
    for _ in 0..CASES {
        let u = rand_u3(&mut rng);
        let dims = vec![2usize; 3];
        let full = quant_sim::embed(&u, &[1], &dims);
        let expect = CMat::identity(2).kron(&u).kron(&CMat::identity(2));
        assert!(full.max_abs_diff(&expect) < 1e-12);
        let _ = C64::ZERO;
    }
}
