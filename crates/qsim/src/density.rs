//! Density-matrix simulation with Kraus channels.
//!
//! The algorithm benchmarks (Fig. 12/13) need ~10⁵ shots through noisy
//! circuits. Rather than trajectory-sampling, we evolve the density matrix
//! once — unitaries and channels interleaved — and sample shots from the
//! final populations. System sizes are small (≤ 5 qubits, or a single
//! 3-level transmon), so dense ρ is cheap.
//!
//! Index conventions match [`crate::state`].

use crate::kernels::KernelScratch;
use crate::state::StateVector;
use quant_math::{CMat, C64};
use rand::Rng;

/// Debug-build check of the Kraus completeness relation `Σ Kₖ†Kₖ = I`.
fn debug_assert_kraus_complete(kraus: &[CMat]) {
    #[cfg(debug_assertions)]
    {
        let mut completeness = CMat::zeros(kraus[0].rows(), kraus[0].cols());
        for k in kraus {
            completeness = &completeness + &(&k.dagger() * k);
        }
        debug_assert!(
            completeness.max_abs_diff(&CMat::identity(kraus[0].rows())) < 1e-6,
            "Kraus operators do not satisfy the completeness relation"
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = kraus;
}

/// A density matrix over a mixed-dimension qudit register.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    dims: Vec<usize>,
    rho: CMat,
}

/// Lifts an operator acting on `targets` (with target 0 as the gate's
/// least-significant digit) to the full register space.
///
/// This is the *reference* route: the stride kernels in [`crate::kernels`]
/// apply operators without ever materializing the lifted matrix and are
/// cross-checked against it. `embed` remains for call sites that genuinely
/// need the full matrix (commutation probes, small algebraic checks).
pub fn embed(op: &CMat, targets: &[usize], dims: &[usize]) -> CMat {
    let gate_dim: usize = targets.iter().map(|&t| dims[t]).product();
    assert!(
        op.is_square() && op.rows() == gate_dim,
        "operator dim mismatch"
    );
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < dims.len(), "target {t} out of range");
        assert!(!targets[..i].contains(&t), "duplicate target {t}");
    }
    // Stride table once, not a prefix product per digit of every entry.
    let mut strides = Vec::with_capacity(dims.len());
    let mut total = 1usize;
    for &d in dims {
        strides.push(total);
        total *= d;
    }
    let rest: Vec<usize> = (0..dims.len()).filter(|k| !targets.contains(k)).collect();
    let digit = |idx: usize, k: usize| -> usize { (idx / strides[k]) % dims[k] };
    let gate_index = |idx: usize| -> usize {
        let mut g = 0usize;
        let mut weight = 1usize;
        for &t in targets {
            g += digit(idx, t) * weight;
            weight *= dims[t];
        }
        g
    };
    CMat::from_fn(total, total, |i, j| {
        if rest.iter().all(|&k| digit(i, k) == digit(j, k)) {
            op[(gate_index(i), gate_index(j))]
        } else {
            C64::ZERO
        }
    })
}

impl DensityMatrix {
    /// The pure `|0…0⟩⟨0…0|` state.
    pub fn zero(dims: &[usize]) -> Self {
        DensityMatrix::from_state(&StateVector::zero(dims))
    }

    /// A register of `n` qubits in `|0…0⟩⟨0…0|`.
    pub fn zero_qubits(n: usize) -> Self {
        DensityMatrix::zero(&vec![2; n])
    }

    /// Builds `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_state(psi: &StateVector) -> Self {
        let amps = psi.amplitudes();
        let n = amps.len();
        let rho = CMat::from_fn(n, n, |i, j| amps[i] * amps[j].conj());
        DensityMatrix {
            dims: psi.dims().to_vec(),
            rho,
        }
    }

    /// Subsystem dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.rho.rows()
    }

    /// Read-only access to the matrix.
    pub fn matrix(&self) -> &CMat {
        &self.rho
    }

    /// Applies a unitary to the listed targets: `ρ → UρU†`.
    ///
    /// Runs the in-place stride kernel with a call-local scratch; when the
    /// call sits in a hot loop, thread a shared [`KernelScratch`] through
    /// [`DensityMatrix::apply_unitary_scratch`] instead.
    pub fn apply_unitary(&mut self, u: &CMat, targets: &[usize]) {
        let mut scratch = KernelScratch::new();
        self.apply_unitary_scratch(u, targets, &mut scratch);
    }

    /// [`DensityMatrix::apply_unitary`] with a caller-owned scratch:
    /// allocation-free once the scratch has seen this `(targets, dims)`
    /// pair.
    pub fn apply_unitary_scratch(
        &mut self,
        u: &CMat,
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) {
        scratch.apply_conjugate(&mut self.rho, u, targets, &self.dims);
    }

    /// Reference implementation of [`DensityMatrix::apply_unitary`] via
    /// [`embed`] and dense products. Kept for kernel cross-checks.
    pub fn apply_unitary_ref(&mut self, u: &CMat, targets: &[usize]) {
        let full = embed(u, targets, &self.dims);
        self.rho = &(&full * &self.rho) * &full.dagger();
    }

    /// Applies a Kraus channel `ρ → Σₖ KₖρKₖ†` to the listed targets.
    ///
    /// The Kraus operators must satisfy `Σ Kₖ†Kₖ = I` (checked loosely).
    /// Runs the single-pass superoperator kernel with a call-local
    /// scratch; hot loops should use
    /// [`DensityMatrix::apply_kraus_scratch`].
    pub fn apply_kraus(&mut self, kraus: &[CMat], targets: &[usize]) {
        let mut scratch = KernelScratch::new();
        self.apply_kraus_scratch(kraus, targets, &mut scratch);
    }

    /// [`DensityMatrix::apply_kraus`] with a caller-owned scratch:
    /// allocation-free once the scratch has seen this `(targets, dims)`
    /// pair.
    pub fn apply_kraus_scratch(
        &mut self,
        kraus: &[CMat],
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        debug_assert_kraus_complete(kraus);
        scratch.apply_kraus(&mut self.rho, kraus, targets, &self.dims);
    }

    /// Reference implementation of [`DensityMatrix::apply_kraus`] via
    /// [`embed`] and dense products. Kept for kernel cross-checks.
    pub fn apply_kraus_ref(&mut self, kraus: &[CMat], targets: &[usize]) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        debug_assert_kraus_complete(kraus);
        let mut out = CMat::zeros(self.rho.rows(), self.rho.cols());
        for k in kraus {
            let full = embed(k, targets, &self.dims);
            out = &out + &(&(&full * &self.rho) * &full.dagger());
        }
        self.rho = out;
    }

    /// Populations of the computational basis (the diagonal of ρ).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows())
            .map(|i| self.rho[(i, i)].re.max(0.0))
            .collect()
    }

    /// `Tr(ρ²)` — 1 for pure states, 1/d for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        (&self.rho * &self.rho).trace().re
    }

    /// `Tr(ρ)`; should remain 1 under trace-preserving evolution.
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// State fidelity `⟨ψ|ρ|ψ⟩` against a pure target.
    pub fn fidelity_pure(&self, psi: &StateVector) -> f64 {
        let v = psi.amplitudes();
        let rv = self.rho.mul_vec(v);
        let f: C64 = v.iter().zip(&rv).map(|(a, b)| a.conj() * *b).sum();
        f.re.clamp(0.0, 1.0)
    }

    /// ⟨O⟩ = Tr(ρO) for a Hermitian operator on the listed targets.
    pub fn expectation(&self, op: &CMat, targets: &[usize]) -> f64 {
        let mut scratch = KernelScratch::new();
        self.expectation_scratch(op, targets, &mut scratch)
    }

    /// [`DensityMatrix::expectation`] with a caller-owned scratch.
    pub fn expectation_scratch(
        &self,
        op: &CMat,
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) -> f64 {
        scratch.expectation(&self.rho, op, targets, &self.dims).re
    }

    /// Reference implementation of [`DensityMatrix::expectation`] via
    /// [`embed`] and a dense trace. Kept for kernel cross-checks.
    pub fn expectation_ref(&self, op: &CMat, targets: &[usize]) -> f64 {
        let full = embed(op, targets, &self.dims);
        (&self.rho * &full).trace().re
    }

    /// Reduced density matrix of a single subsystem.
    pub fn reduced(&self, subsystem: usize) -> CMat {
        assert!(subsystem < self.dims.len(), "subsystem out of range");
        let d = self.dims[subsystem];
        let stride: usize = self.dims[..subsystem].iter().product();
        let total = self.rho.rows();
        let mut out = CMat::zeros(d, d);
        for i in 0..total {
            let di = (i / stride) % d;
            let base = i - di * stride;
            for dj in 0..d {
                let j = base + dj * stride;
                out[(di, dj)] += self.rho[(i, j)];
            }
        }
        out
    }

    /// Bloch components ⟨X⟩, ⟨Y⟩, ⟨Z⟩ of a subsystem's qubit subspace.
    pub fn bloch(&self, subsystem: usize) -> (f64, f64, f64) {
        let r = self.reduced(subsystem);
        (
            2.0 * r[(0, 1)].re,
            -2.0 * r[(0, 1)].im,
            (r[(0, 0)] - r[(1, 1)]).re,
        )
    }

    /// Samples `shots` measurements in the computational basis.
    pub fn sample_counts(&self, rng: &mut impl Rng, shots: usize) -> Vec<u64> {
        quant_math::sample_counts(rng, &self.probabilities(), shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels;
    use crate::gates;

    #[test]
    fn pure_state_round_trip() {
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 1]);
        let rho = DensityMatrix::from_state(&psi);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!((rho.fidelity_pure(&psi) - 1.0).abs() < 1e-10);
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10 && (p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn unitary_evolution_matches_state_vector() {
        let mut psi = StateVector::zero_qubits(3);
        let mut rho = DensityMatrix::zero_qubits(3);
        for (gate, targets) in [
            (gates::h(), vec![0]),
            (gates::cnot(), vec![0, 2]),
            (gates::ry(0.7), vec![1]),
            (gates::cz(), vec![1, 2]),
        ] {
            psi.apply_unitary(&gate, &targets);
            rho.apply_unitary(&gate, &targets);
        }
        let expect = DensityMatrix::from_state(&psi);
        assert!(rho.matrix().max_abs_diff(expect.matrix()) < 1e-10);
    }

    #[test]
    fn embed_identity_elsewhere() {
        let full = embed(&gates::x(), &[1], &[2, 2, 2]);
        // X on qubit 1 = I ⊗ X ⊗ I in kron (MSB-first) ordering.
        let expect = CMat::identity(2).kron(&gates::x()).kron(&CMat::identity(2));
        assert!(full.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn depolarizing_drives_to_mixed() {
        let mut rho = DensityMatrix::zero_qubits(1);
        for _ in 0..200 {
            rho.apply_kraus(&channels::depolarizing(0.2), &[0]);
        }
        assert!((rho.purity() - 0.5).abs() < 1e-6, "purity {}", rho.purity());
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::zero_qubits(1);
        rho.apply_unitary(&gates::x(), &[0]);
        rho.apply_kraus(&channels::amplitude_damping(0.3), &[0]);
        let p = rho.probabilities();
        assert!((p[0] - 0.3).abs() < 1e-10);
        assert!((p[1] - 0.7).abs() < 1e-10);
    }

    #[test]
    fn phase_damping_kills_coherence_not_populations() {
        let mut rho = DensityMatrix::zero_qubits(1);
        rho.apply_unitary(&gates::h(), &[0]);
        let before = rho.probabilities();
        rho.apply_kraus(&channels::phase_damping(0.5), &[0]);
        let after = rho.probabilities();
        assert!((before[0] - after[0]).abs() < 1e-10);
        // Off-diagonal coherence scales by √(1−λ).
        let r = rho.reduced(0);
        assert!((r[(0, 1)].abs() - 0.5 * 0.5_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn trace_preserved_through_channels() {
        let mut rho = DensityMatrix::zero_qubits(2);
        rho.apply_unitary(&gates::h(), &[0]);
        rho.apply_unitary(&gates::cnot(), &[0, 1]);
        rho.apply_kraus(&channels::amplitude_damping(0.1), &[0]);
        rho.apply_kraus(&channels::depolarizing(0.05), &[1]);
        rho.apply_kraus(&channels::phase_damping(0.2), &[0]);
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectation_via_trace() {
        let mut rho = DensityMatrix::zero_qubits(2);
        rho.apply_unitary(&gates::x(), &[1]);
        assert!((rho.expectation(&gates::z(), &[0]) - 1.0).abs() < 1e-10);
        assert!((rho.expectation(&gates::z(), &[1]) + 1.0).abs() < 1e-10);
    }

    #[test]
    fn qutrit_density_matrix() {
        let mut rho = DensityMatrix::zero(&[3]);
        rho.apply_unitary(&gates::qutrit_increment(), &[0]);
        rho.apply_kraus(&channels::qutrit_relaxation(0.2, 0.0), &[0]);
        let p = rho.probabilities();
        // |1⟩ decays partially to |0⟩.
        assert!((p[0] - 0.2).abs() < 1e-9, "p = {p:?}");
        assert!((p[1] - 0.8).abs() < 1e-9);
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }
}
