//! Single-qubit unitary analysis.

use quant_math::CMat;

/// Decomposes a 2×2 unitary as `U = e^{iφ}·Rz(a)·Rx(θ)·Rz(c)`.
///
/// Returns `(a, θ, c)` with `θ ∈ [0, π]`. At the degenerate points
/// (θ = 0 or θ = π) only the sum or difference of `a` and `c` is defined;
/// the surplus freedom is resolved by setting `c = 0`.
///
/// This is the workhorse behind the device calibration's empirical phase
/// correction (the paper's §4.4): the measured pulse propagator is reduced
/// to ZXZ form, and the Z factors are compensated with free virtual-Z frame
/// changes so the pulse acts as a pure X rotation.
pub fn euler_zxz(u: &CMat) -> (f64, f64, f64) {
    assert!(u.rows() == 2 && u.cols() == 2, "euler_zxz expects 2×2");
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];
    let cos_half = u00.abs().clamp(0.0, 1.0);
    let sin_half = u10.abs().clamp(0.0, 1.0);
    let theta = 2.0 * sin_half.atan2(cos_half);
    const EPS: f64 = 1e-9;
    if sin_half < EPS {
        // θ ≈ 0: U ≈ phase·Rz(a+c). arg(U11/U00) = a + c.
        let sum = (u11 / u00).arg();
        return (sum, 0.0, 0.0);
    }
    if cos_half < EPS {
        // θ ≈ π: only a − c defined. arg(U10/U01) = a − c.
        let diff = (u10 / u01).arg();
        return (diff, std::f64::consts::PI, 0.0);
    }
    let sum = (u11 / u00).arg(); // a + c (mod 2π)
    let diff = (u10 / u01).arg(); // a − c (mod 2π)
    let a = (sum + diff) / 2.0;
    let c = (sum - diff) / 2.0;
    // The halving is ambiguous by π: (a, c) and (a+π, c+π) reconstruct
    // Rx(θ) with opposite sign. Pick the branch that matches U.
    let recon = |a: f64, c: f64| -> CMat {
        let (ch, sh) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let rz = |x: f64| {
            CMat::diag(&[
                quant_math::C64::cis(-x / 2.0),
                quant_math::C64::cis(x / 2.0),
            ])
        };
        let rx = CMat::from_rows(&[
            &[quant_math::C64::real(ch), quant_math::C64::imag(-sh)],
            &[quant_math::C64::imag(-sh), quant_math::C64::real(ch)],
        ]);
        &(&rz(a) * &rx) * &rz(c)
    };
    if u.phase_invariant_diff(&recon(a, c))
        <= u.phase_invariant_diff(&recon(a + std::f64::consts::PI, c + std::f64::consts::PI))
    {
        (a, theta, c)
    } else {
        (a + std::f64::consts::PI, theta, c + std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    fn recompose(a: f64, theta: f64, c: f64) -> CMat {
        &(&gates::rz(a) * &gates::rx(theta)) * &gates::rz(c)
    }

    #[test]
    fn round_trip_generic() {
        for &(a, t, c) in &[
            (0.3, 1.1, -0.7),
            (-1.2, 2.5, 0.4),
            (2.0, 0.8, 2.9),
            (0.0, 1.57, 0.0),
        ] {
            let u = recompose(a, t, c);
            let (a2, t2, c2) = euler_zxz(&u);
            let u2 = recompose(a2, t2, c2);
            assert!(
                u.phase_invariant_diff(&u2) < 1e-9,
                "({a},{t},{c}) → ({a2},{t2},{c2})"
            );
        }
    }

    #[test]
    fn identity_and_x() {
        let (_, t, _) = euler_zxz(&CMat::identity(2));
        assert!(t.abs() < 1e-9);
        let (a, t, c) = euler_zxz(&gates::x());
        assert!((t - std::f64::consts::PI).abs() < 1e-9);
        let u2 = recompose(a, t, c);
        assert!(gates::x().phase_invariant_diff(&u2) < 1e-9);
    }

    #[test]
    fn pure_rz() {
        let u = gates::rz(0.9);
        let (a, t, c) = euler_zxz(&u);
        assert!(t.abs() < 1e-9);
        assert!((a + c - 0.9).abs() < 1e-9);
    }

    #[test]
    fn hadamard() {
        let (a, t, c) = euler_zxz(&gates::h());
        let u2 = recompose(a, t, c);
        assert!(gates::h().phase_invariant_diff(&u2) < 1e-9);
    }
}
