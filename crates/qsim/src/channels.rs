//! Standard Kraus channels for the noise model.
//!
//! The device simulator composes these per scheduled pulse: thermal
//! relaxation scaled by pulse duration (§8.3 source 1 — shorter pulses
//! decohere less), a coherent error channel carrying residual calibration
//! error (source 2), and a leakage channel whose strength grows with pulse
//! amplitude (source 3).

use quant_math::{CMat, C64};

/// Amplitude damping with decay probability `gamma`: |1⟩ relaxes to |0⟩.
pub fn amplitude_damping(gamma: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let k0 = CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, (1.0 - gamma).sqrt()]]);
    let k1 = CMat::from_real_rows(&[&[0.0, gamma.sqrt()], &[0.0, 0.0]]);
    vec![k0, k1]
}

/// Phase damping with dephasing probability `lambda`.
pub fn phase_damping(lambda: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let k0 = CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, (1.0 - lambda).sqrt()]]);
    let k1 = CMat::from_real_rows(&[&[0.0, 0.0], &[0.0, lambda.sqrt()]]);
    vec![k0, k1]
}

/// Single-qubit depolarizing channel with error probability `p`.
pub fn depolarizing(p: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let x = CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let y = CMat::from_rows(&[&[C64::ZERO, C64::imag(-1.0)], &[C64::imag(1.0), C64::ZERO]]);
    let z = CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
    vec![
        CMat::identity(2).scale(C64::real((1.0 - 3.0 * p / 4.0).sqrt())),
        x.scale(C64::real((p / 4.0).sqrt())),
        y.scale(C64::real((p / 4.0).sqrt())),
        z.scale(C64::real((p / 4.0).sqrt())),
    ]
}

/// Two-qubit depolarizing channel with error probability `p` (uniform over
/// the 15 non-identity Pauli pairs).
pub fn depolarizing_2q(p: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let i = CMat::identity(2);
    let x = CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let y = CMat::from_rows(&[&[C64::ZERO, C64::imag(-1.0)], &[C64::imag(1.0), C64::ZERO]]);
    let z = CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
    let paulis = [i, x, y, z];
    let mut kraus = Vec::with_capacity(16);
    for (a, pa) in paulis.iter().enumerate() {
        for (b, pb) in paulis.iter().enumerate() {
            let weight = if a == 0 && b == 0 {
                (1.0 - 15.0 * p / 16.0).sqrt()
            } else {
                (p / 16.0).sqrt()
            };
            kraus.push(pb.kron(pa).scale(C64::real(weight)));
        }
    }
    kraus
}

/// Thermal relaxation over duration `t` (same units as `t1`, `t2`):
/// amplitude damping at rate `1/T1` composed with pure dephasing so the
/// total coherence decay matches `1/T2`.
///
/// Requires the physical condition `T2 ≤ 2·T1`.
pub fn thermal_relaxation(t: f64, t1: f64, t2: f64) -> Vec<Vec<CMat>> {
    assert!(t >= 0.0 && t1 > 0.0 && t2 > 0.0, "times must be positive");
    assert!(t2 <= 2.0 * t1 + 1e-9, "unphysical T2 > 2·T1");
    let gamma = 1.0 - (-t / t1).exp();
    // Pure-dephasing rate: 1/Tφ = 1/T2 − 1/(2T1).
    let inv_tphi = (1.0 / t2 - 1.0 / (2.0 * t1)).max(0.0);
    let lambda = 1.0 - (-2.0 * t * inv_tphi).exp();
    vec![amplitude_damping(gamma), phase_damping(lambda)]
}

/// Composes sequential Kraus channels into one equivalent channel:
/// applying `stages[0]` then `stages[1]` … equals applying the returned
/// set once (`K = Kₙ···K₁` over every stage-operator choice). Products
/// that are exactly zero carry no weight and are dropped.
pub fn compose(stages: &[Vec<CMat>]) -> Vec<CMat> {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut acc = stages[0].clone();
    for stage in &stages[1..] {
        let mut next = Vec::with_capacity(acc.len() * stage.len());
        for later in stage {
            for earlier in &acc {
                let product = later * earlier;
                if product.as_slice().iter().any(|z| *z != C64::ZERO) {
                    next.push(product);
                }
            }
        }
        assert!(!next.is_empty(), "composed channel lost all weight");
        acc = next;
    }
    acc
}

/// [`thermal_relaxation`] composed into a single Kraus set — one channel
/// application per (qubit, duration) instead of one per stage. The hot
/// executor path memoizes this per distinct duration.
pub fn thermal_relaxation_kraus(t: f64, t1: f64, t2: f64) -> Vec<CMat> {
    compose(&thermal_relaxation(t, t1, t2))
}

/// A purely coherent error channel: the single Kraus operator `U`.
pub fn coherent(u: CMat) -> Vec<CMat> {
    debug_assert!(u.is_unitary(1e-8), "coherent error must be unitary");
    vec![u]
}

/// Qutrit relaxation ladder: |2⟩→|1⟩ with probability `g21` and |1⟩→|0⟩
/// with probability `g10`, in one step (sequential two-level amplitude
/// damping on each rung).
pub fn qutrit_relaxation(g10: f64, g21: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&g10) && (0.0..=1.0).contains(&g21));
    // Kraus set for the two independent decay processes combined:
    // K0 = diag(1, √(1-g10), √(1-g21)), K1 = √g10 |0⟩⟨1|, K2 = √g21 |1⟩⟨2|.
    let k0 = CMat::diag(&[
        C64::ONE,
        C64::real((1.0 - g10).sqrt()),
        C64::real((1.0 - g21).sqrt()),
    ]);
    let mut k1 = CMat::zeros(3, 3);
    k1[(0, 1)] = C64::real(g10.sqrt());
    let mut k2 = CMat::zeros(3, 3);
    k2[(1, 2)] = C64::real(g21.sqrt());
    vec![k0, k1, k2]
}

/// Qutrit dephasing: phase damping on both the 0–1 and 0–2 coherences.
pub fn qutrit_dephasing(lambda: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&lambda));
    let keep = (1.0 - lambda).sqrt();
    let k0 = CMat::diag(&[C64::ONE, C64::real(keep), C64::real(keep)]);
    let mut k1 = CMat::zeros(3, 3);
    k1[(1, 1)] = C64::real(lambda.sqrt());
    let mut k2 = CMat::zeros(3, 3);
    k2[(2, 2)] = C64::real(lambda.sqrt());
    vec![k0, k1, k2]
}

/// Coherent leakage-free approximation of amplitude-dependent leakage for a
/// *qubit-subspace* simulation: models population loss to |2⟩ as an
/// effective amplitude-damping-like channel of strength `p_leak`, applied to
/// the |1⟩ population, with the leaked weight deposited in |0⟩⟨0| mixing.
///
/// When the register models the qutrit explicitly use
/// [`qutrit_relaxation`]-style channels instead; this is the 2-level
/// surrogate used by the fast executor tier.
pub fn leakage_surrogate(p_leak: f64) -> Vec<CMat> {
    assert!((0.0..=1.0).contains(&p_leak));
    // Treat leakage as a phase-insensitive population scrambler of weight
    // p_leak on |1⟩: combination of amplitude damping and dephasing.
    let k0 = CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, (1.0 - p_leak).sqrt()]]);
    let k1 = CMat::from_real_rows(&[&[0.0, (p_leak / 2.0).sqrt()], &[0.0, 0.0]]);
    let mut k2 = CMat::zeros(2, 2);
    k2[(1, 1)] = C64::real((p_leak / 2.0).sqrt());
    vec![k0, k1, k2]
}

/// Verifies the Kraus completeness relation `Σ K†K = I` to tolerance.
pub fn is_trace_preserving(kraus: &[CMat], tol: f64) -> bool {
    if kraus.is_empty() {
        return false;
    }
    let n = kraus[0].rows();
    let mut sum = CMat::zeros(n, n);
    for k in kraus {
        sum = &sum + &(&k.dagger() * k);
    }
    sum.max_abs_diff(&CMat::identity(n)) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_channels_trace_preserving() {
        assert!(is_trace_preserving(&amplitude_damping(0.3), 1e-10));
        assert!(is_trace_preserving(&phase_damping(0.7), 1e-10));
        assert!(is_trace_preserving(&depolarizing(0.25), 1e-10));
        assert!(is_trace_preserving(&depolarizing_2q(0.1), 1e-10));
        assert!(is_trace_preserving(&qutrit_relaxation(0.2, 0.4), 1e-10));
        assert!(is_trace_preserving(&qutrit_dephasing(0.5), 1e-10));
        assert!(is_trace_preserving(&leakage_surrogate(0.15), 1e-10));
        for stage in thermal_relaxation(10.0, 94_000.0, 88_000.0) {
            assert!(is_trace_preserving(&stage, 1e-10));
        }
    }

    #[test]
    fn thermal_relaxation_limits() {
        // t = 0 → identity channel.
        let stages = thermal_relaxation(0.0, 100.0, 80.0);
        for stage in &stages {
            // First Kraus op should be I, others zero.
            assert!(stage[0].max_abs_diff(&CMat::identity(2)) < 1e-10);
        }
        // Very long t → gamma ≈ 1.
        let stages = thermal_relaxation(1e6, 100.0, 80.0);
        assert!((stages[0][1][(0, 1)].re - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn rejects_t2_beyond_twice_t1() {
        thermal_relaxation(1.0, 10.0, 25.0);
    }

    #[test]
    fn composed_thermal_relaxation_matches_stages() {
        use crate::gates;
        use crate::DensityMatrix;
        let (t, t1, t2) = (37.0, 94_000.0, 71_000.0);
        let composed = thermal_relaxation_kraus(t, t1, t2);
        assert!(is_trace_preserving(&composed, 1e-10));
        // Same state through per-stage and composed application.
        let mut staged = DensityMatrix::zero_qubits(2);
        staged.apply_unitary(&gates::h(), &[0]);
        staged.apply_unitary(&gates::cnot(), &[0, 1]);
        let mut one_shot = staged.clone();
        for stage in thermal_relaxation(t, t1, t2) {
            staged.apply_kraus(&stage, &[1]);
        }
        one_shot.apply_kraus(&composed, &[1]);
        assert!(staged.matrix().max_abs_diff(one_shot.matrix()) < 1e-12);
    }

    #[test]
    fn compose_drops_zero_products() {
        // t = 0 amplitude damping has an all-zero K1; the composition of
        // two identity-like stages must not keep 2×2 = 4 operators.
        let stages = thermal_relaxation(0.0, 100.0, 80.0);
        let composed = compose(&stages);
        assert_eq!(composed.len(), 1, "zero-weight products must be dropped");
        assert!(composed[0].max_abs_diff(&CMat::identity(2)) < 1e-12);
    }

    #[test]
    fn depolarizing_extremes() {
        // p = 0 → only the identity Kraus op has weight.
        let k = depolarizing(0.0);
        assert!(k[0].max_abs_diff(&CMat::identity(2)) < 1e-12);
        assert!(k[1].frobenius_norm() < 1e-12);
    }
}
