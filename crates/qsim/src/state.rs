//! Pure-state simulation of mixed-dimension qudit registers.
//!
//! # Index convention
//!
//! Subsystem 0 is the **least-significant** digit of the global basis index
//! (little-endian, as in Qiskit). For a register with dimensions
//! `[d0, d1, …]`, basis state `|…, k1, k0⟩` has index
//! `k0 + d0·k1 + d0·d1·k2 + …`.
//!
//! Gate matrices applied to a target list `[t0, t1, …]` treat `t0` as the
//! least-significant digit of the *gate's* index space, consistent with the
//! matrices in [`crate::gates`].

use crate::kernels::KernelScratch;
use quant_math::{CMat, C64};
use rand::Rng;

/// A normalized pure state of a mixed-dimension qudit register.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    dims: Vec<usize>,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros state `|0…0⟩` for subsystems of the given
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a dimension < 2.
    pub fn zero(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "register needs at least one subsystem");
        assert!(
            dims.iter().all(|&d| d >= 2),
            "every subsystem dimension must be ≥ 2"
        );
        let total: usize = dims.iter().product();
        let mut amps = vec![C64::ZERO; total];
        amps[0] = C64::ONE;
        StateVector {
            dims: dims.to_vec(),
            amps,
        }
    }

    /// Creates a register of `n` qubits in `|0…0⟩`.
    pub fn zero_qubits(n: usize) -> Self {
        StateVector::zero(&vec![2; n])
    }

    /// Builds a state from raw amplitudes; normalizes defensively.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a zero-norm vector.
    pub fn from_amplitudes(dims: &[usize], amps: Vec<C64>) -> Self {
        let total: usize = dims.iter().product();
        assert_eq!(amps.len(), total, "amplitude length must match dimensions");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "cannot normalize a zero state");
        let amps = amps.into_iter().map(|a| a / norm).collect();
        StateVector {
            dims: dims.to_vec(),
            amps,
        }
    }

    /// Subsystem dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of subsystems.
    pub fn num_subsystems(&self) -> usize {
        self.dims.len()
    }

    /// Total Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitudes in the computational basis.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Stride (index weight) of subsystem `k`.
    fn stride(&self, k: usize) -> usize {
        self.dims[..k].iter().product()
    }

    /// Applies a unitary to the listed target subsystems.
    ///
    /// Runs the in-place stride kernel with a call-local scratch; when the
    /// call sits in a hot loop (a trajectory sampler, a repeated sweep),
    /// thread a shared [`KernelScratch`] through
    /// [`StateVector::apply_unitary_scratch`] instead so the index plan is
    /// built once.
    ///
    /// # Panics
    ///
    /// Panics when the matrix dimension does not match the product of the
    /// target dimensions, or targets repeat / are out of range.
    pub fn apply_unitary(&mut self, u: &CMat, targets: &[usize]) {
        let mut scratch = KernelScratch::new();
        self.apply_unitary_scratch(u, targets, &mut scratch);
    }

    /// [`StateVector::apply_unitary`] with a caller-owned scratch:
    /// allocation-free once the scratch has seen this `(targets, dims)`
    /// pair.
    pub fn apply_unitary_scratch(
        &mut self,
        u: &CMat,
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) {
        scratch.apply_state(&mut self.amps, u, targets, &self.dims);
    }

    /// Reference implementation of [`StateVector::apply_unitary`]: the
    /// original skip-scan base enumeration with per-call buffers. Kept for
    /// kernel cross-checks (`tests/kernel_equivalence.rs`).
    pub fn apply_unitary_ref(&mut self, u: &CMat, targets: &[usize]) {
        let gate_dim: usize = targets.iter().map(|&t| self.dims[t]).product();
        assert!(
            u.is_square() && u.rows() == gate_dim,
            "gate dimension mismatch"
        );
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < self.dims.len(), "target {t} out of range");
            assert!(!targets[..i].contains(&t), "duplicate target subsystem {t}");
        }

        let strides: Vec<usize> = targets.iter().map(|&t| self.stride(t)).collect();
        let tdims: Vec<usize> = targets.iter().map(|&t| self.dims[t]).collect();

        // Precompute the offset of each gate-basis index within the full
        // register.
        let mut offsets = vec![0usize; gate_dim];
        for (g, offset) in offsets.iter_mut().enumerate() {
            let mut rem = g;
            let mut off = 0usize;
            for (dim, stride) in tdims.iter().zip(&strides) {
                off += (rem % dim) * stride;
                rem /= dim;
            }
            *offset = off;
        }

        // Enumerate base indices where every target digit is zero.
        let total = self.amps.len();
        let mut scratch = vec![C64::ZERO; gate_dim];
        'outer: for base in 0..total {
            for (&t, &stride) in targets.iter().zip(&strides) {
                if (base / stride) % self.dims[t] != 0 {
                    continue 'outer;
                }
            }
            // Gather, transform, scatter.
            for (g, &off) in offsets.iter().enumerate() {
                scratch[g] = self.amps[base + off];
            }
            for (r, &off) in offsets.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &sc) in scratch.iter().enumerate() {
                    acc += u[(r, c)] * sc;
                }
                self.amps[base + off] = acc;
            }
        }
    }

    /// Probability of each computational-basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Resets to `|0…0⟩` in place, reusing the amplitude allocation — the
    /// per-trajectory reset of a reused worker state.
    pub fn reset_zero(&mut self) {
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
    }

    /// ⟨ψ|O|ψ⟩ for a Hermitian operator acting on the listed targets.
    pub fn expectation(&self, op: &CMat, targets: &[usize]) -> f64 {
        let mut scratch = KernelScratch::new();
        self.expectation_scratch(op, targets, &mut scratch)
    }

    /// [`StateVector::expectation`] with a caller-owned scratch — no clone,
    /// no state transform, O(d·k²).
    pub fn expectation_scratch(
        &self,
        op: &CMat,
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) -> f64 {
        scratch
            .expectation_state(&self.amps, op, targets, &self.dims)
            .re
    }

    /// Reference implementation of [`StateVector::expectation`]: clone,
    /// transform via the reference apply, inner product. Kept for kernel
    /// cross-checks.
    pub fn expectation_ref(&self, op: &CMat, targets: &[usize]) -> f64 {
        let mut transformed = self.clone();
        transformed.apply_unitary_ref(op, targets);
        let inner: C64 = self
            .amps
            .iter()
            .zip(&transformed.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        inner.re
    }

    /// The state's 2-norm (1 for physical states; less after applying a
    /// non-unitary Kraus operator via [`StateVector::apply_unitary`]).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Renormalizes in place (after a sampled Kraus branch).
    ///
    /// # Panics
    ///
    /// Panics on a zero-norm state.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amps {
            *a = *a / n;
        }
    }

    /// Applies one Kraus operator (not necessarily unitary) to the listed
    /// targets and returns the branch probability `‖Kψ‖²` without
    /// renormalizing. Combine with [`StateVector::normalize`] for
    /// trajectory sampling.
    pub fn apply_kraus_branch(&mut self, k: &CMat, targets: &[usize]) -> f64 {
        let mut scratch = KernelScratch::new();
        self.apply_kraus_branch_scratch(k, targets, &mut scratch)
    }

    /// [`StateVector::apply_kraus_branch`] with a caller-owned scratch.
    ///
    /// To *weigh* a branch without committing to it, use
    /// [`KernelScratch::branch_weight`] on [`StateVector::amplitudes`] —
    /// that is how the trajectory executor samples channels without
    /// cloning the state per branch.
    pub fn apply_kraus_branch_scratch(
        &mut self,
        k: &CMat,
        targets: &[usize],
        scratch: &mut KernelScratch,
    ) -> f64 {
        scratch.apply_state(&mut self.amps, k, targets, &self.dims);
        let n = self.norm();
        n * n
    }

    /// Reference implementation of [`StateVector::apply_kraus_branch`] via
    /// the skip-scan apply. Kept for kernel cross-checks.
    pub fn apply_kraus_branch_ref(&mut self, k: &CMat, targets: &[usize]) -> f64 {
        self.apply_unitary_ref(k, targets);
        let n = self.norm();
        n * n
    }

    /// Inner product ⟨self|other⟩.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.dims, other.dims, "register shape mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Samples `shots` full-register measurements, returning counts per
    /// basis index.
    pub fn sample_counts(&self, rng: &mut impl Rng, shots: usize) -> Vec<u64> {
        quant_math::sample_counts(rng, &self.probabilities(), shots)
    }

    /// Reduced density matrix of a single subsystem (partial trace over the
    /// rest).
    pub fn reduced_density(&self, subsystem: usize) -> CMat {
        assert!(subsystem < self.dims.len(), "subsystem out of range");
        let d = self.dims[subsystem];
        let stride = self.stride(subsystem);
        let mut rho = CMat::zeros(d, d);
        let total = self.amps.len();
        // Each global index determines (base, digit) uniquely, so every
        // (base, digit, digit2) triple contributes exactly once.
        for idx in 0..total {
            let digit = (idx / stride) % d;
            let base = idx - digit * stride;
            for digit2 in 0..d {
                let idx2 = base + digit2 * stride;
                rho[(digit, digit2)] += self.amps[idx] * self.amps[idx2].conj();
            }
        }
        rho
    }

    /// Reduced density matrix of an ordered set of subsystems (partial
    /// trace over the rest), with digit 0 of the result on `targets[0]`
    /// — the convention every kernel in this crate uses. Reuses the
    /// caller's scratch; the state need not be normalized
    /// (`Tr` of the result is `‖ψ‖²`).
    pub fn reduced_density_on(&self, targets: &[usize], scratch: &mut KernelScratch) -> CMat {
        let d: usize = targets.iter().map(|&t| self.dims[t]).product();
        let mut rho = CMat::zeros(d, d);
        scratch.reduced_density_state(&self.amps, targets, &self.dims, &mut rho);
        rho
    }

    /// Bloch-vector components ⟨X⟩, ⟨Y⟩, ⟨Z⟩ of a 2-level subsystem.
    ///
    /// For higher-dimensional subsystems the components refer to the
    /// qubit (0/1) subspace embedded in the larger space.
    pub fn bloch(&self, subsystem: usize) -> (f64, f64, f64) {
        let rho = self.reduced_density(subsystem);
        let x = 2.0 * rho[(0, 1)].re;
        let y = -2.0 * rho[(0, 1)].im;
        let z = (rho[(0, 0)] - rho[(1, 1)]).re;
        (x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use quant_math::seeded;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn zero_state_probabilities() {
        let psi = StateVector::zero_qubits(3);
        let p = psi.probabilities();
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1..].iter().all(|&v| v < 1e-12));
    }

    #[test]
    fn x_on_each_qubit() {
        // X on qubit 1 of 3 → index 2 (little-endian).
        let mut psi = StateVector::zero_qubits(3);
        psi.apply_unitary(&gates::x(), &[1]);
        let p = psi.probabilities();
        assert!((p[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_construction() {
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 1]);
        let p = psi.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
        assert!(p[1].abs() < 1e-10 && p[2].abs() < 1e-10);
    }

    #[test]
    fn cnot_with_reversed_targets() {
        // Control on qubit 1, target on qubit 0: |01⟩(q1=0,q0=1) stays,
        // |10⟩ flips to |11⟩.
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::x(), &[1]); // state |10⟩ = index 2
        psi.apply_unitary(&gates::cnot(), &[1, 0]); // control = q1
        let p = psi.probabilities();
        assert!((p[3] - 1.0).abs() < 1e-10, "probs = {p:?}");
    }

    #[test]
    fn expectation_of_pauli_z() {
        let mut psi = StateVector::zero_qubits(1);
        assert!((psi.expectation(&gates::z(), &[0]) - 1.0).abs() < 1e-12);
        psi.apply_unitary(&gates::x(), &[0]);
        assert!((psi.expectation(&gates::z(), &[0]) + 1.0).abs() < 1e-12);
        psi.apply_unitary(&gates::h(), &[0]);
        assert!(psi.expectation(&gates::z(), &[0]).abs() < 1e-12);
    }

    #[test]
    fn bloch_vector_tracks_rotation() {
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&gates::rx(FRAC_PI_2), &[0]);
        let (x, y, z) = psi.bloch(0);
        // Rx(π/2)|0⟩ points along -Y.
        assert!(x.abs() < 1e-10);
        assert!((y + 1.0).abs() < 1e-10);
        assert!(z.abs() < 1e-10);
    }

    #[test]
    fn qutrit_register() {
        let mut psi = StateVector::zero(&[3]);
        psi.apply_unitary(&gates::qutrit_increment(), &[0]);
        assert!((psi.probabilities()[1] - 1.0).abs() < 1e-12);
        psi.apply_unitary(&gates::qutrit_increment(), &[0]);
        assert!((psi.probabilities()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_dims_register() {
        // A qutrit (subsystem 0) and a qubit (subsystem 1).
        let mut psi = StateVector::zero(&[3, 2]);
        psi.apply_unitary(&gates::x(), &[1]);
        psi.apply_unitary(&gates::qutrit_x01(), &[0]);
        // q1=1, qutrit=1 → index 1 + 3·1 = 4.
        assert!((psi.probabilities()[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut psi = StateVector::zero_qubits(1);
        psi.apply_unitary(&gates::ry(1.0), &[0]);
        let p1 = psi.probabilities()[1];
        let mut rng = seeded(5);
        let counts = psi.sample_counts(&mut rng, 100_000);
        let freq = counts[1] as f64 / 100_000.0;
        assert!((freq - p1).abs() < 0.01, "freq {freq} vs p {p1}");
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let a = StateVector::zero_qubits(1);
        let mut b = StateVector::zero_qubits(1);
        b.apply_unitary(&gates::x(), &[0]);
        assert!(a.fidelity(&b) < 1e-12);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_density_of_bell_is_maximally_mixed() {
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 1]);
        let rho = psi.reduced_density(0);
        assert!((rho[(0, 0)].re - 0.5).abs() < 1e-10);
        assert!((rho[(1, 1)].re - 0.5).abs() < 1e-10);
        assert!(rho[(0, 1)].abs() < 1e-10);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_rejected() {
        let mut psi = StateVector::zero_qubits(2);
        psi.apply_unitary(&gates::cnot(), &[0, 0]);
    }

    #[test]
    fn three_qubit_gate_application_order() {
        // Build GHZ: H(0), CNOT(0→1), CNOT(1→2).
        let mut psi = StateVector::zero_qubits(3);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 1]);
        psi.apply_unitary(&gates::cnot(), &[1, 2]);
        let p = psi.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[7] - 0.5).abs() < 1e-10);
    }
}
