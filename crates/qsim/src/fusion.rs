//! Gate-fusion planning: merge adjacent operators with overlapping
//! supports into fused multi-subsystem blocks.
//!
//! A state-vector simulator's wall-clock is dominated by full-state
//! sweeps: every applied operator reads and writes all `2ⁿ` amplitudes.
//! Fusing a run of small gates into one k-subsystem block replaces many
//! sweeps with one (plus cheap dense products on `≤ 32×32` matrices), the
//! classic qsim/qulacs optimization. This module computes the *plan* —
//! which ops land in which block, in what order blocks open, merge,
//! and close — as a pure function of the op supports, so an executor can
//! hoist it out of its per-trajectory (or per-shot) fan-out and replay it
//! cheaply.
//!
//! Two op classes exist:
//!
//! * **unitary** ops drive fusion: they may open blocks, merge open
//!   blocks, or (when the cost model declines a merge) force a close;
//! * **local** ops (stochastic channel points such as sampled Kraus
//!   branches) never change block structure — they ride inside whatever
//!   block currently owns their subsystem, opening a singleton block if
//!   none does. The executor interleaves its random draws at these steps,
//!   which is what keeps a fused trajectory's RNG stream identical to the
//!   unfused one.
//!
//! Open blocks are pairwise disjoint by construction, so they commute and
//! any close order is valid; the plan always opens, merges, and closes in
//! first-opened order, making it deterministic and independent of
//! thread count (it is built once, before any fan-out).
//!
//! # Cost model
//!
//! Applying a block of subspace weight `w` (product of its target
//! dimensions) to a d-dim state costs about `d·(B + w)` flops/bytes:
//! `w` for the dense matvec per fibre plus a constant `B ≈ 4` for
//! gather/scatter and loop overhead. A merge is accepted when the merged
//! block is no more expensive than its parts:
//! `B + w(union) ≤ Σ (B + w(part))`. With qubit supports this accepts
//! 1q→2q (8 ≤ 14), 2q+2q→3q (12 ≤ 16) and 3q+2q→4q (20 ≤ 20), and
//! declines anything growing to 5 qubits from a 4-qubit block
//! (36 > 28) — fusion stops where the work would grow.

use crate::kernels::KernelScratch;
use quant_math::CMat;

/// Default cap on fused-block subspace weight: `2⁵` (five qubits).
pub const MAX_FUSED_WEIGHT: usize = 32;

/// Per-fibre overhead constant `B` of the cost model (gather/scatter and
/// loop bookkeeping, in units of one matvec column).
const COST_BASE: usize = 4;

/// One operator in the stream handed to [`FusionPlan::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpDesc {
    /// Subsystem indices the op acts on (distinct, in op digit order).
    pub support: Vec<usize>,
    /// Whether the op is a deterministic unitary (drives fusion) or a
    /// local stochastic channel point (rides inside its block).
    pub unitary: bool,
}

impl OpDesc {
    /// A unitary gate on `support`.
    pub fn unitary(support: &[usize]) -> Self {
        OpDesc {
            support: support.to_vec(),
            unitary: true,
        }
    }

    /// A local (single-subsystem) stochastic channel point.
    pub fn local(subsystem: usize) -> Self {
        OpDesc {
            support: vec![subsystem],
            unitary: false,
        }
    }
}

/// One replayable step of a fusion plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Allocate block `block` (identity accumulator at its final size).
    Open {
        /// Block id.
        block: usize,
    },
    /// Fold input op `op` into `block` at the given local digit
    /// positions (indices into the block's target list).
    Fold {
        /// Index into the op stream.
        op: usize,
        /// Block id.
        block: usize,
        /// Local position of each support digit inside the block.
        local: Vec<usize>,
    },
    /// Fold the accumulator of open block `from` into open block `into`
    /// (disjoint targets; `local` places `from`'s targets inside
    /// `into`'s). `from` is dead afterwards.
    Merge {
        /// Source block id (dead after this step).
        from: usize,
        /// Destination block id.
        into: usize,
        /// Local position of each of `from`'s targets inside `into`.
        local: Vec<usize>,
    },
    /// Apply `block`'s accumulator to the state and retire it.
    Close {
        /// Block id.
        block: usize,
    },
}

/// A fused block's final shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSpec {
    /// Global subsystem indices, in insertion order (digit 0 first).
    pub targets: Vec<usize>,
}

/// The hoisted fusion plan: blocks plus the interleaved step list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionPlan {
    /// Every block ever opened, by id.
    pub blocks: Vec<BlockSpec>,
    /// Steps in execution order. Every op index appears in exactly one
    /// [`Step::Fold`], in input order.
    pub steps: Vec<Step>,
}

/// `B + w` — the per-fibre cost of applying a block of weight `w`.
fn cost(weight: usize) -> usize {
    COST_BASE + weight
}

/// Internal builder state for one (possibly still open) block.
struct Builder {
    targets: Vec<usize>,
    weight: usize,
    open: bool,
}

impl FusionPlan {
    /// Builds the plan for `ops` over a register of subsystem dimensions
    /// `dims`, fusing up to blocks of subspace weight `max_weight`
    /// (use [`MAX_FUSED_WEIGHT`] for the five-qubit default).
    ///
    /// Pure and deterministic: the plan depends only on the arguments.
    ///
    /// # Panics
    ///
    /// Panics if an op's support repeats a subsystem or indexes past
    /// `dims`, or if a local op is not single-subsystem.
    pub fn build(ops: &[OpDesc], dims: &[usize], max_weight: usize) -> FusionPlan {
        let mut blocks: Vec<Builder> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        // Ids of open blocks, in open order (pairwise disjoint invariant).
        let mut open: Vec<usize> = Vec::new();

        let weight_of = |support: &[usize]| -> usize { support.iter().map(|&s| dims[s]).product() };

        for (i, op) in ops.iter().enumerate() {
            for (j, &s) in op.support.iter().enumerate() {
                assert!(s < dims.len(), "op {i}: subsystem {s} out of range");
                assert!(
                    !op.support[..j].contains(&s),
                    "op {i}: duplicate subsystem {s}"
                );
            }
            if !op.unitary {
                assert_eq!(op.support.len(), 1, "local op {i} must be single-subsystem");
                let q = op.support[0];
                let b = match open.iter().find(|&&b| blocks[b].targets.contains(&q)) {
                    Some(&b) => b,
                    None => open_block(&mut blocks, &mut steps, &mut open, vec![q], dims[q]),
                };
                let local = locals(&blocks[b].targets, &[q]);
                steps.push(Step::Fold {
                    op: i,
                    block: b,
                    local,
                });
                continue;
            }

            let overlapping: Vec<usize> = open
                .iter()
                .copied()
                .filter(|&b| op.support.iter().any(|q| blocks[b].targets.contains(q)))
                .collect();
            let op_weight = weight_of(&op.support);

            if overlapping.is_empty() {
                let b = if op_weight <= max_weight {
                    open_block(
                        &mut blocks,
                        &mut steps,
                        &mut open,
                        op.support.clone(),
                        op_weight,
                    )
                } else {
                    // Oversized op: apply standalone, immediately.
                    let b = open_block(
                        &mut blocks,
                        &mut steps,
                        &mut open,
                        op.support.clone(),
                        op_weight,
                    );
                    steps.push(Step::Fold {
                        op: i,
                        block: b,
                        local: (0..op.support.len()).collect(),
                    });
                    close_block(&mut blocks, &mut steps, &mut open, b);
                    continue;
                };
                let local = locals(&blocks[b].targets, &op.support);
                steps.push(Step::Fold {
                    op: i,
                    block: b,
                    local,
                });
                continue;
            }

            // Candidate 1: merge every overlapping block plus the op.
            let full_union = union_weight(&blocks, &overlapping, &op.support, dims);
            let full_parts: usize = overlapping
                .iter()
                .map(|&b| cost(blocks[b].weight))
                .sum::<usize>()
                + cost(op_weight);
            if full_union <= max_weight && cost(full_union) <= full_parts {
                let b = merge_into_first(&mut blocks, &mut steps, &mut open, &overlapping, dims);
                fold_extending(&mut blocks, &mut steps, b, i, &op.support, dims);
                continue;
            }

            // Candidate 2: merge with the smallest overlapping block only,
            // closing the rest (their pending ops commute out: open blocks
            // are pairwise disjoint and the closed ones precede the op).
            if let (true, Some(&b_min)) = (
                overlapping.len() > 1,
                overlapping.iter().min_by_key(|&&b| (blocks[b].weight, b)),
            ) {
                let partial_union = union_weight(&blocks, &[b_min], &op.support, dims);
                if partial_union <= max_weight
                    && cost(partial_union) <= cost(blocks[b_min].weight) + cost(op_weight)
                {
                    for &b in &overlapping {
                        if b != b_min {
                            close_block(&mut blocks, &mut steps, &mut open, b);
                        }
                    }
                    fold_extending(&mut blocks, &mut steps, b_min, i, &op.support, dims);
                    continue;
                }
            }

            // Declined: close everything the op touches, start fresh.
            for &b in &overlapping {
                close_block(&mut blocks, &mut steps, &mut open, b);
            }
            let b = open_block(
                &mut blocks,
                &mut steps,
                &mut open,
                op.support.clone(),
                op_weight,
            );
            let local = locals(&blocks[b].targets, &op.support);
            steps.push(Step::Fold {
                op: i,
                block: b,
                local,
            });
        }

        for b in open.clone() {
            close_block(&mut blocks, &mut steps, &mut open, b);
        }

        FusionPlan {
            blocks: blocks
                .into_iter()
                .map(|b| BlockSpec { targets: b.targets })
                .collect(),
            steps,
        }
    }

    /// Folds per-op matrices into per-block matrices by replaying the
    /// plan — the same embedding arithmetic an executor uses at runtime.
    /// `mats[i]` is op `i`'s matrix on its own support digits; the result
    /// is indexed by block id, each matrix over the block's
    /// [`BlockSpec::targets`] digits.
    ///
    /// # Panics
    ///
    /// Panics on matrix/support dimension mismatches.
    pub fn fused_blocks(
        &self,
        mats: &[CMat],
        dims: &[usize],
        scratch: &mut KernelScratch,
    ) -> Vec<CMat> {
        let mut out: Vec<CMat> = self
            .blocks
            .iter()
            .map(|b| {
                let w: usize = b.targets.iter().map(|&t| dims[t]).product();
                CMat::identity(w)
            })
            .collect();
        for step in &self.steps {
            match step {
                Step::Open { .. } | Step::Close { .. } => {}
                Step::Fold { op, block, local } => {
                    let bdims = self.block_dims(*block, dims);
                    let (acc, mat) = (&mut out[*block], &mats[*op]);
                    scratch.apply_left(acc, mat, local, &bdims);
                }
                Step::Merge { from, into, local } => {
                    let bdims = self.block_dims(*into, dims);
                    let (head, tail) = out.split_at_mut(*from.max(into));
                    let (acc, src) = if from < into {
                        (&mut tail[0], &head[*from])
                    } else {
                        (&mut head[*into], &tail[0])
                    };
                    scratch.apply_left(acc, src, local, &bdims);
                }
            }
        }
        out
    }

    /// The subsystem dimensions of one block, in target order.
    pub fn block_dims(&self, block: usize, dims: &[usize]) -> Vec<usize> {
        self.blocks[block]
            .targets
            .iter()
            .map(|&t| dims[t])
            .collect()
    }

    /// Block ids in the order they close — the order an executor applies
    /// their accumulators to the state.
    pub fn close_order(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Close { block } => Some(*block),
                _ => None,
            })
            .collect()
    }
}

fn locals(targets: &[usize], support: &[usize]) -> Vec<usize> {
    // Every support subsystem is in `targets` by construction: blocks are
    // opened with — or extended by — the op's support before any step
    // references it. The length check keeps a planner bug from silently
    // producing an op with dropped targets.
    let locals: Vec<usize> = support
        .iter()
        .filter_map(|&q| targets.iter().position(|&t| t == q))
        .collect();
    debug_assert_eq!(
        locals.len(),
        support.len(),
        "support must lie inside the block"
    );
    locals
}

fn union_weight(blocks: &[Builder], members: &[usize], support: &[usize], dims: &[usize]) -> usize {
    let mut w = 1usize;
    let mut seen: Vec<usize> = Vec::new();
    for &b in members {
        for &t in &blocks[b].targets {
            if !seen.contains(&t) {
                seen.push(t);
                w *= dims[t];
            }
        }
    }
    for &q in support {
        if !seen.contains(&q) {
            seen.push(q);
            w *= dims[q];
        }
    }
    w
}

fn open_block(
    blocks: &mut Vec<Builder>,
    steps: &mut Vec<Step>,
    open: &mut Vec<usize>,
    targets: Vec<usize>,
    weight: usize,
) -> usize {
    let id = blocks.len();
    blocks.push(Builder {
        targets,
        weight,
        open: true,
    });
    open.push(id);
    steps.push(Step::Open { block: id });
    id
}

fn close_block(blocks: &mut [Builder], steps: &mut Vec<Step>, open: &mut Vec<usize>, b: usize) {
    debug_assert!(blocks[b].open);
    blocks[b].open = false;
    open.retain(|&x| x != b);
    steps.push(Step::Close { block: b });
}

/// Merges every block in `members` (open order) into the first, emitting
/// [`Step::Merge`] steps; returns the surviving block id.
fn merge_into_first(
    blocks: &mut [Builder],
    steps: &mut Vec<Step>,
    open: &mut Vec<usize>,
    members: &[usize],
    dims: &[usize],
) -> usize {
    let dst = members[0];
    for &src in &members[1..] {
        let moved: Vec<usize> = blocks[src].targets.clone();
        for &t in &moved {
            blocks[dst].targets.push(t);
            blocks[dst].weight *= dims[t];
        }
        let local = locals(&blocks[dst].targets, &moved);
        steps.push(Step::Merge {
            from: src,
            into: dst,
            local,
        });
        blocks[src].open = false;
        open.retain(|&x| x != src);
    }
    dst
}

/// Extends block `b` with any new subsystems in `support`, then folds op
/// `i` at its local positions.
fn fold_extending(
    blocks: &mut [Builder],
    steps: &mut Vec<Step>,
    b: usize,
    i: usize,
    support: &[usize],
    dims: &[usize],
) {
    for &q in support {
        if !blocks[b].targets.contains(&q) {
            blocks[b].targets.push(q);
            blocks[b].weight *= dims[q];
        }
    }
    let local = locals(&blocks[b].targets, support);
    steps.push(Step::Fold {
        op: i,
        block: b,
        local,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qubits(n: usize) -> Vec<usize> {
        vec![2; n]
    }

    fn fold_count(plan: &FusionPlan, block: usize) -> usize {
        plan.steps
            .iter()
            .filter(|s| matches!(s, Step::Fold { block: b, .. } if *b == block))
            .count()
    }

    #[test]
    fn nearest_neighbor_chain_fuses_to_four_qubits_then_stops() {
        let ops = [
            OpDesc::unitary(&[0, 1]),
            OpDesc::unitary(&[1, 2]),
            OpDesc::unitary(&[2, 3]),
            OpDesc::unitary(&[3, 4]),
        ];
        let plan = FusionPlan::build(&ops, &qubits(5), MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 2, "plan: {plan:?}");
        assert_eq!(plan.blocks[0].targets, vec![0, 1, 2, 3]);
        assert_eq!(plan.blocks[1].targets, vec![3, 4]);
        assert_eq!(fold_count(&plan, 0), 3);
        assert_eq!(fold_count(&plan, 1), 1);
        // The first block closes before the second folds its gate.
        let close0 = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Close { block: 0 }))
            .unwrap();
        let fold1 = plan
            .steps
            .iter()
            .position(|s| matches!(s, Step::Fold { block: 1, .. }))
            .unwrap();
        assert!(close0 < fold1);
    }

    #[test]
    fn cost_model_declines_growth_past_the_cap_sweet_spot() {
        // A 4-qubit block followed by an overlapping 2q gate: fusing to
        // five qubits costs 36 per fibre vs 28 split — declined.
        let ops = [OpDesc::unitary(&[0, 1, 2, 3]), OpDesc::unitary(&[3, 4])];
        let plan = FusionPlan::build(&ops, &qubits(5), MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[1].targets, vec![3, 4]);
        // And a disjoint 1q gate is likewise not worth dragging into a
        // 4-qubit block (36 vs 26): the partial merge with the singleton
        // wins instead.
        let ops = [
            OpDesc::unitary(&[0, 1, 2, 3]),
            OpDesc::unitary(&[4]),
            OpDesc::unitary(&[3, 4]),
        ];
        let plan = FusionPlan::build(&ops, &qubits(5), MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].targets, vec![0, 1, 2, 3]);
        assert_eq!(plan.blocks[1].targets, vec![4, 3]);
    }

    #[test]
    fn one_qubit_gates_fold_into_the_touching_block() {
        let ops = [
            OpDesc::unitary(&[0]),
            OpDesc::unitary(&[1]),
            OpDesc::unitary(&[0, 1]),
            OpDesc::unitary(&[1]),
        ];
        let plan = FusionPlan::build(&ops, &qubits(2), MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 2, "plan: {plan:?}");
        // Singletons {0} and {1} merge with the entangler: block 1 folds
        // its 1q gate, then merges into block 0, which takes the rest.
        assert_eq!(plan.blocks[0].targets, vec![0, 1]);
        assert_eq!(fold_count(&plan, 0), 3);
        assert_eq!(fold_count(&plan, 1), 1);
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            Step::Merge {
                from: 1,
                into: 0,
                ..
            }
        )));
        assert_eq!(plan.close_order(), vec![0]);
    }

    #[test]
    fn local_ops_ride_inside_their_owning_block() {
        let ops = [
            OpDesc::unitary(&[0, 1]),
            OpDesc::local(1),
            OpDesc::local(2),
            OpDesc::unitary(&[1, 2]),
        ];
        let plan = FusionPlan::build(&ops, &qubits(3), MAX_FUSED_WEIGHT);
        // local(1) rides in the {0,1} block; local(2) opens a singleton
        // that the (1,2) gate then merges in.
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].targets, vec![0, 1, 2]);
        let merged = plan.steps.iter().any(|s| {
            matches!(
                s,
                Step::Merge {
                    from: 1,
                    into: 0,
                    ..
                }
            )
        });
        assert!(merged, "plan: {plan:?}");
    }

    #[test]
    fn plan_is_deterministic() {
        let ops = [
            OpDesc::unitary(&[0]),
            OpDesc::local(0),
            OpDesc::unitary(&[0, 1]),
            OpDesc::unitary(&[1, 2]),
            OpDesc::local(2),
            OpDesc::unitary(&[2, 3]),
            OpDesc::unitary(&[3, 4]),
        ];
        let a = FusionPlan::build(&ops, &qubits(5), MAX_FUSED_WEIGHT);
        let b = FusionPlan::build(&ops, &qubits(5), MAX_FUSED_WEIGHT);
        assert_eq!(a, b);
    }

    #[test]
    fn every_op_folds_exactly_once_in_input_order() {
        let ops = [
            OpDesc::unitary(&[1]),
            OpDesc::unitary(&[0, 1]),
            OpDesc::local(2),
            OpDesc::unitary(&[1, 2]),
            OpDesc::unitary(&[2, 3]),
            OpDesc::unitary(&[0, 3]),
        ];
        let plan = FusionPlan::build(&ops, &qubits(4), MAX_FUSED_WEIGHT);
        let folded: Vec<usize> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Fold { op, .. } => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(folded, (0..ops.len()).collect::<Vec<_>>());
        // Every block opens exactly once and either merges away or closes.
        for b in 0..plan.blocks.len() {
            let opens = plan
                .steps
                .iter()
                .filter(|s| matches!(s, Step::Open { block } if *block == b))
                .count();
            let ends = plan
                .steps
                .iter()
                .filter(|s| {
                    matches!(s, Step::Close { block } if *block == b)
                        || matches!(s, Step::Merge { from, .. } if *from == b)
                })
                .count();
            assert_eq!((opens, ends), (1, 1), "block {b} of {plan:?}");
        }
    }

    #[test]
    fn mixed_dimension_weights_gate_the_merge() {
        // Qutrit chain: {0,1} (weight 9) + {1,2} (9) would fuse to 27
        // (cost 31 ≤ 26? no — 31 > 26, declined).
        let ops = [OpDesc::unitary(&[0, 1]), OpDesc::unitary(&[1, 2])];
        let plan = FusionPlan::build(&ops, &[3, 3, 3], MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 2);
        // Qubit-qutrit: {0,1} (6) + {1,2} (6) fuses to 12 (16 ≤ 20).
        let plan = FusionPlan::build(&ops, &[2, 3, 2], MAX_FUSED_WEIGHT);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks[0].targets, vec![0, 1, 2]);
    }
}
