//! Standard gate matrices.
//!
//! Conventions follow Qiskit: `Rx(θ) = exp(-iθX/2)`, `U3(θ,φ,λ)` as in the
//! OpenQASM specification, and two-qubit matrices are ordered with the
//! *first* listed qubit as the least-significant index digit.

use quant_math::{CMat, C64};

/// 2×2 identity.
pub fn id2() -> CMat {
    CMat::identity(2)
}

/// Pauli X (NOT) gate.
pub fn x() -> CMat {
    CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
}

/// Pauli Y gate.
pub fn y() -> CMat {
    CMat::from_rows(&[&[C64::ZERO, C64::imag(-1.0)], &[C64::imag(1.0), C64::ZERO]])
}

/// Pauli Z gate.
pub fn z() -> CMat {
    CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
}

/// Hadamard gate.
pub fn h() -> CMat {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_real_rows(&[&[s, s], &[s, -s]])
}

/// Phase gate S = √Z.
pub fn s() -> CMat {
    CMat::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::I]])
}

/// S†.
pub fn sdg() -> CMat {
    s().dagger()
}

/// T = Z^(1/4) gate.
pub fn t() -> CMat {
    CMat::from_rows(&[
        &[C64::ONE, C64::ZERO],
        &[C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
    ])
}

/// Rotation about X: `Rx(θ) = exp(-iθX/2)`.
pub fn rx(theta: f64) -> CMat {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_rows(&[
        &[C64::real(c), C64::imag(-sn)],
        &[C64::imag(-sn), C64::real(c)],
    ])
}

/// Rotation about Y: `Ry(θ) = exp(-iθY/2)`.
pub fn ry(theta: f64) -> CMat {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_real_rows(&[&[c, -sn], &[sn, c]])
}

/// Rotation about Z: `Rz(θ) = exp(-iθZ/2)` (traceless convention).
pub fn rz(theta: f64) -> CMat {
    CMat::from_rows(&[
        &[C64::cis(-theta / 2.0), C64::ZERO],
        &[C64::ZERO, C64::cis(theta / 2.0)],
    ])
}

/// The generic single-qubit gate
/// `U3(θ,φ,λ) = [[cos(θ/2), −e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> CMat {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_rows(&[
        &[C64::real(c), C64::cis(lambda) * (-sn)],
        &[C64::cis(phi) * sn, C64::cis(phi + lambda) * c],
    ])
}

/// Controlled-NOT with the first (least-significant) qubit as control.
pub fn cnot() -> CMat {
    // Index = q0 + 2·q1, control = q0, target = q1.
    CMat::from_real_rows(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
    ])
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz() -> CMat {
    CMat::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::real(-1.0)])
}

/// SWAP gate.
pub fn swap() -> CMat {
    CMat::from_real_rows(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// iSWAP gate: swaps and phases the single-excitation subspace by i.
pub fn iswap() -> CMat {
    CMat::from_rows(&[
        &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::I, C64::ZERO],
        &[C64::ZERO, C64::I, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
    ])
}

/// √iSWAP — the "half" gate obtained by damping an iSWAP pulse.
pub fn sqrt_iswap() -> CMat {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMat::from_rows(&[
        &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::real(s), C64::imag(s), C64::ZERO],
        &[C64::ZERO, C64::imag(s), C64::real(s), C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
    ])
}

/// The XY interaction family: `XY(θ) = exp(-iθ(XX+YY)/4)`; `XY(π) = iSWAP`
/// up to phase. `sqrt_iswap() == xy(−π/2)` in this parametrization's sign
/// convention — see unit tests.
pub fn xy(theta: f64) -> CMat {
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_rows(&[
        &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::real(c), C64::imag(-sn), C64::ZERO],
        &[C64::ZERO, C64::imag(-sn), C64::real(c), C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
    ])
}

/// bSWAP: the two-photon (bell-SWAP) gate acting on the even-parity
/// subspace, `exp(-iθ(XX−YY)/4)` at θ = π with a phase convention that
/// exchanges |00⟩ and |11⟩.
pub fn bswap() -> CMat {
    CMat::from_rows(&[
        &[C64::ZERO, C64::ZERO, C64::ZERO, C64::I],
        &[C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
        &[C64::I, C64::ZERO, C64::ZERO, C64::ZERO],
    ])
}

/// MAP: the microwave-activated conditional-phase gate of Chow et al. 2013,
/// locally equivalent to CZ — represented here by its canonical form
/// `exp(-i·(π/4)·ZZ)` with the single-qubit phases absorbed.
pub fn map_gate() -> CMat {
    zz(std::f64::consts::FRAC_PI_2)
}

/// ZZ interaction: `ZZ(θ) = exp(-iθ/2 · Z⊗Z)` — the ubiquitous near-term
/// algorithm primitive, equal to the circuit [CNOT, Rz(θ) on target, CNOT].
pub fn zz(theta: f64) -> CMat {
    let p = C64::cis(-theta / 2.0);
    let m = C64::cis(theta / 2.0);
    CMat::diag(&[p, m, m, p])
}

/// The cross-resonance gate `CR(θ) = exp(-iθ/2 · Z⊗X)` with the first qubit
/// as the Z (control) factor.
///
/// With our index convention (first qubit = least-significant digit) the
/// generator is `X⊗Z` as a matrix: digit 0 carries Z, digit 1 carries X.
pub fn cr(theta: f64) -> CMat {
    // exp(-iθ/2 (Z ⊗_phys X)) where control is qubit 0 (LSB) and target is
    // qubit 1. Matrix element ordering: index = q0 + 2·q1.
    // Generator G[(q1,q0),(q1',q0')] = X[q1,q1']·Z[q0,q0'].
    let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let ms = C64::imag(-sn);
    let ps = C64::imag(sn);
    CMat::from_rows(&[
        &[C64::real(c), C64::ZERO, ms, C64::ZERO],
        &[C64::ZERO, C64::real(c), C64::ZERO, ps],
        &[ms, C64::ZERO, C64::real(c), C64::ZERO],
        &[C64::ZERO, ps, C64::ZERO, C64::real(c)],
    ])
}

/// The fermionic-simulation gate
/// `fSim(θ, φ)` = XY(2θ) followed by a controlled phase `e^{-iφ}` on |11⟩.
/// The paper's "Fermionic Simulation" row is `fsim(π/2, 0)`-class with extra
/// single-qubit Rz's; we expose the general family.
pub fn fsim(theta: f64, phi: f64) -> CMat {
    let (c, sn) = (theta.cos(), theta.sin());
    CMat::from_rows(&[
        &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::real(c), C64::imag(-sn), C64::ZERO],
        &[C64::ZERO, C64::imag(-sn), C64::real(c), C64::ZERO],
        &[C64::ZERO, C64::ZERO, C64::ZERO, C64::cis(-phi)],
    ])
}

/// Open-controlled NOT: flips the target when the control is |0⟩.
pub fn open_cnot() -> CMat {
    CMat::from_real_rows(&[
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// Qutrit X gate on the 0↔1 subspace of a 3-level system.
pub fn qutrit_x01() -> CMat {
    CMat::from_real_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]])
}

/// Qutrit X gate on the 1↔2 subspace of a 3-level system.
pub fn qutrit_x12() -> CMat {
    CMat::from_real_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0]])
}

/// Qutrit X gate on the 0↔2 subspace (the two-photon transition).
pub fn qutrit_x02() -> CMat {
    CMat::from_real_rows(&[&[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]])
}

/// The base-3 increment (counter) gate: |k⟩ → |k+1 mod 3⟩.
pub fn qutrit_increment() -> CMat {
    CMat::from_real_rows(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::unitary_exp;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn all_gates_unitary() {
        let gates: Vec<CMat> = vec![
            x(),
            y(),
            z(),
            h(),
            s(),
            sdg(),
            t(),
            rx(0.7),
            ry(-1.3),
            rz(2.9),
            u3(0.5, 1.5, -0.5),
            cnot(),
            cz(),
            swap(),
            iswap(),
            sqrt_iswap(),
            xy(0.8),
            bswap(),
            map_gate(),
            zz(0.33),
            cr(1.1),
            fsim(0.4, 0.9),
            open_cnot(),
            qutrit_x01(),
            qutrit_x12(),
            qutrit_x02(),
            qutrit_increment(),
        ];
        for (i, g) in gates.iter().enumerate() {
            assert!(g.is_unitary(1e-10), "gate #{i} not unitary");
        }
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(rx(PI).phase_invariant_diff(&x()) < 1e-12);
    }

    #[test]
    fn u3_special_cases() {
        // U3(π, 0, π) = X
        assert!(u3(PI, 0.0, PI).max_abs_diff(&x()) < 1e-12);
        // U3(π/2, 0, π) = H
        assert!(u3(FRAC_PI_2, 0.0, PI).max_abs_diff(&h()) < 1e-12);
        // U3(0, 0, λ) = phase gate diag(1, e^{iλ})
        let p = u3(0.0, 0.0, 0.77);
        assert!(p[(1, 1)].approx_eq(C64::cis(0.77), 1e-12));
    }

    #[test]
    fn sqrt_iswap_squares_to_iswap() {
        let half = sqrt_iswap();
        assert!((&half * &half).max_abs_diff(&iswap()) < 1e-12);
    }

    #[test]
    fn xy_interpolates_iswap() {
        // XY(−π) = iSWAP in this sign convention (sin(−π/2) = −1 → +i).
        assert!(xy(-PI).max_abs_diff(&iswap()) < 1e-12);
        assert!(xy(0.0).max_abs_diff(&CMat::identity(4)) < 1e-12);
    }

    #[test]
    fn zz_equals_cnot_rz_cnot() {
        // ZZ(θ) = CNOT·(I⊗Rz(θ))·CNOT with control = qubit 0.
        let theta = 0.93;
        let rz_on_q1 = rz(theta).kron(&id2()); // digit 1 = second factor... see below
                                               // Careful: kron(A, B) indexes as A-digit most significant. Our gate
                                               // convention stores qubit 0 as least significant, so a gate on qubit 1
                                               // embeds as G ⊗ I (G on the most-significant digit).
        let circuit = &(&cnot() * &rz_on_q1) * &cnot();
        assert!(circuit.phase_invariant_diff(&zz(theta)) < 1e-12);
    }

    #[test]
    fn cr_matches_exponential_of_zx() {
        let theta = 0.61;
        // Generator: Z on qubit 0 (LSB), X on qubit 1 (MSB) → matrix X⊗Z.
        let gen = x().kron(&z());
        let expect = unitary_exp(&gen.scale(C64::real(0.5)), theta);
        assert!(cr(theta).max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    fn cr_90_generates_cnot_class() {
        // CR(π/2) is locally equivalent to CNOT: verify the entangling power
        // via the standard echoed construction in the compiler tests instead;
        // here just check CR(0) = I and periodicity CR(2π) = -I.
        assert!(cr(0.0).max_abs_diff(&CMat::identity(4)) < 1e-12);
        assert!(cr(2.0 * PI).phase_invariant_diff(&CMat::identity(4)) < 1e-10);
    }

    #[test]
    fn open_cnot_is_x_conjugated_cnot() {
        // open-CNOT = (X⊗I on control=q0) CNOT (X⊗I on control=q0).
        let x_on_control = id2().kron(&x()); // qubit 0 = LSB → I⊗X in kron order
        let circ = &(&x_on_control * &cnot()) * &x_on_control;
        assert!(circ.max_abs_diff(&open_cnot()) < 1e-12);
    }

    #[test]
    fn qutrit_increment_cycles() {
        let inc = qutrit_increment();
        let three = &(&inc * &inc) * &inc;
        assert!(three.max_abs_diff(&CMat::identity(3)) < 1e-12);
        // Also |0⟩ → |1⟩.
        let v = inc.mul_vec(&[C64::ONE, C64::ZERO, C64::ZERO]);
        assert!(v[1].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn bswap_exchanges_even_parity() {
        let v = bswap().mul_vec(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]);
        assert!(
            v[3].abs() > 0.999,
            "bSWAP should map |00⟩ → |11⟩ (up to phase)"
        );
    }
}
