//! Qudit state-vector and density-matrix simulation.
//!
//! This crate is the quantum-mechanics substrate for the OpenPulse
//! reproduction:
//!
//! * [`StateVector`] — pure states over mixed-dimension (qubit/qutrit)
//!   registers, with gate application, expectation values, Bloch vectors and
//!   shot sampling.
//! * [`DensityMatrix`] — mixed states with Kraus-channel noise, used by the
//!   fast executor tier behind the paper's algorithm benchmarks.
//! * [`gates`] — the standard gate matrix library, including the two-qubit
//!   native gates of Table 2 (CR(θ), iSWAP, √iSWAP, bSWAP, MAP) and qutrit
//!   subspace gates.
//! * [`channels`] — amplitude damping, dephasing, depolarizing, thermal
//!   relaxation, leakage and qutrit channels.
//! * [`kernels`] — in-place stride-based kernels: the superoperator fast
//!   path behind [`DensityMatrix`] ([`embed`] is its reference) and the
//!   state-vector fast path behind [`StateVector`] (its original skip-scan
//!   apply is retained as the `_ref` reference route).
//! * [`fusion`] — the gate-fusion planner: merges adjacent operators with
//!   overlapping supports into fused blocks (≤ 5 qubits) that the blocked
//!   state-vector kernels then apply in one sweep each.
//!
//! # Example
//!
//! ```
//! use quant_sim::{gates, StateVector};
//!
//! let mut psi = StateVector::zero_qubits(2);
//! psi.apply_unitary(&gates::h(), &[0]);
//! psi.apply_unitary(&gates::cnot(), &[0, 1]);
//! let p = psi.probabilities();
//! assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod channels;
pub mod fusion;
pub mod gates;
pub mod kernels;

mod analysis;
mod density;
mod state;

pub use analysis::euler_zxz;
pub use density::{embed, DensityMatrix};
pub use fusion::{FusionPlan, OpDesc};
pub use kernels::{KernelScratch, TargetIndex};
pub use state::StateVector;
