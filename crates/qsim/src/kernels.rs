//! In-place, allocation-free, stride-based superoperator kernels.
//!
//! [`crate::embed`] lifts a k-dimensional operator to the full register
//! space and pays two dense O(d³) products per application. These kernels
//! act on the target subsystem's rows and columns directly with the same
//! digit/stride arithmetic [`crate::StateVector::apply_unitary`] uses, so a
//! k-dim gate on a d-dim register costs O(d²·k) (unitary conjugation) or
//! O(d²·k²) (Kraus channel via the channel superoperator) — an asymptotic
//! win over embed-and-matmul that grows with qubit count.
//!
//! [`KernelScratch`] owns every buffer the kernels need (gather rows,
//! block vectors, the channel superoperator, and a cache of
//! [`TargetIndex`] tables keyed by `(targets, dims)`). Reusing one scratch
//! across calls makes the steady state allocation-free: the executor
//! threads a single scratch through its whole per-block loop.
//!
//! `embed` remains the reference implementation; the kernels are
//! cross-checked against it property-test-style in
//! `tests/kernel_equivalence.rs`.

use quant_math::{CMat, C64};

/// Precomputed index tables for one `(targets, dims)` pair.
///
/// * `offsets[g]` — global index offset of gate-basis state `g` (target 0
///   is the gate's least-significant digit, as everywhere in this crate);
/// * `bases` — every global index whose target digits are all zero; adding
///   `offsets[g]` to a base enumerates one gate-subspace fibre.
#[derive(Clone, Debug)]
pub struct TargetIndex {
    gate_dim: usize,
    total: usize,
    offsets: Vec<usize>,
    bases: Vec<usize>,
    /// Length of the stride-1 runs in `bases`: the stride of the
    /// lowest-index target. Every subsystem below the lowest target is
    /// free, so consecutive base indices come in contiguous runs of this
    /// length — the chunked kernels turn each run into stride-1 slice
    /// arithmetic.
    run: usize,
}

impl TargetIndex {
    /// Builds the index tables.
    ///
    /// # Panics
    ///
    /// Panics when targets repeat or are out of range.
    pub fn new(targets: &[usize], dims: &[usize]) -> Self {
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < dims.len(), "target {t} out of range");
            assert!(!targets[..i].contains(&t), "duplicate target {t}");
        }
        let mut strides = Vec::with_capacity(dims.len());
        let mut total = 1usize;
        for &d in dims {
            strides.push(total);
            total *= d;
        }
        let gate_dim: usize = targets.iter().map(|&t| dims[t]).product();

        let mut offsets = vec![0usize; gate_dim];
        for (g, off) in offsets.iter_mut().enumerate() {
            let mut rem = g;
            let mut o = 0usize;
            for &t in targets {
                o += (rem % dims[t]) * strides[t];
                rem /= dims[t];
            }
            *off = o;
        }

        // Enumerate base indices (every target digit zero) by expanding the
        // free digits in stride order instead of skip-scanning all `total`
        // indices with a division per target. Each expansion step appends
        // blocks whose offsets exceed every previously generated base, so
        // the list stays ascending — the same order the old scan produced.
        let mut bases = vec![0usize];
        bases.reserve(total / gate_dim.max(1));
        for (k, &d) in dims.iter().enumerate() {
            if targets.contains(&k) {
                continue;
            }
            let w = strides[k];
            let prev = bases.len();
            for digit in 1..d {
                let off = digit * w;
                for i in 0..prev {
                    let b = bases[i] + off;
                    bases.push(b);
                }
            }
        }

        let run = targets
            .iter()
            .map(|&t| strides[t])
            .min()
            .unwrap_or(total.max(1));

        TargetIndex {
            gate_dim,
            total,
            offsets,
            bases,
            run,
        }
    }

    /// The operator dimension these targets select.
    pub fn gate_dim(&self) -> usize {
        self.gate_dim
    }
}

/// One cached index table.
#[derive(Clone, Debug)]
struct IndexEntry {
    targets: Vec<usize>,
    dims: Vec<usize>,
    index: TargetIndex,
}

/// Reusable workspace for the stride kernels.
///
/// Buffers grow on demand and are never shrunk, so after the first
/// occurrence of each `(targets, dims)` pair every subsequent kernel call
/// performs zero heap allocations. Not thread-safe; use one per worker.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    indices: Vec<IndexEntry>,
    rows: Vec<C64>,
    block: Vec<C64>,
    block_out: Vec<C64>,
    superop: Vec<C64>,
}

impl KernelScratch {
    /// An empty scratch; buffers are sized lazily by the first calls.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Index-table cache position for `(targets, dims)`, building on miss.
    fn ensure_index(&mut self, targets: &[usize], dims: &[usize]) -> usize {
        if let Some(i) = self
            .indices
            .iter()
            .position(|e| e.targets == targets && e.dims == dims)
        {
            return i;
        }
        self.indices.push(IndexEntry {
            targets: targets.to_vec(),
            dims: dims.to_vec(),
            index: TargetIndex::new(targets, dims),
        });
        self.indices.len() - 1
    }

    /// `mat ← Û·mat` where `Û` is `op` embedded on `targets`: transforms
    /// the target digits of the *row* index. `mat` may have any number of
    /// columns (a density matrix, an accumulating circuit unitary, …).
    ///
    /// # Panics
    ///
    /// Panics on target/dimension mismatches.
    pub fn apply_left(&mut self, mat: &mut CMat, op: &CMat, targets: &[usize], dims: &[usize]) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(mat.rows(), idx.total, "matrix height mismatch");
        apply_left_rows(mat, op, idx, &mut self.rows);
    }

    /// `mat ← mat·Û†`: transforms the target digits of the *column* index.
    pub fn apply_right_dagger(
        &mut self,
        mat: &mut CMat,
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(mat.cols(), idx.total, "matrix width mismatch");
        apply_right_dagger_rows(mat, op, idx, &mut self.block);
    }

    /// `ρ ← Û·ρ·Û†` — the unitary-conjugation kernel, O(d²·k).
    pub fn apply_conjugate(
        &mut self,
        rho: &mut CMat,
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        assert_eq!(rho.cols(), idx.total, "matrix width mismatch");
        apply_left_rows(rho, op, idx, &mut self.rows);
        apply_right_dagger_rows(rho, op, idx, &mut self.block);
    }

    /// `ρ ← Σₖ K̂ₖ·ρ·K̂ₖ†` — the channel kernel, O(d²·k²), single pass.
    ///
    /// Builds the k²×k² channel superoperator `S[(g,h),(g',h')] =
    /// Σₖ Kₖ[g,g']·conj(Kₖ[h,h'])` once, then applies it to every k×k
    /// block of ρ selected by a (row-base, column-base) pair.
    pub fn apply_kraus(
        &mut self,
        rho: &mut CMat,
        kraus: &[CMat],
        targets: &[usize],
        dims: &[usize],
    ) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        for op in kraus {
            check_op(op, idx);
        }
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        assert_eq!(rho.cols(), idx.total, "matrix width mismatch");

        let k = idx.gate_dim;
        let k2 = k * k;
        self.superop.resize(k2 * k2, C64::ZERO);
        self.superop.fill(C64::ZERO);
        for kr in kraus {
            for g in 0..k {
                for gp in 0..k {
                    let a = kr[(g, gp)];
                    if a == C64::ZERO {
                        continue;
                    }
                    for h in 0..k {
                        let row = &mut self.superop[(g * k + h) * k2..][..k2];
                        for hp in 0..k {
                            row[gp * k + hp] += a * kr[(h, hp)].conj();
                        }
                    }
                }
            }
        }

        self.block.resize(k2, C64::ZERO);
        self.block_out.resize(k2, C64::ZERO);
        let cols = rho.cols();
        let data = rho.as_mut_slice();
        for &rb in &idx.bases {
            for &cb in &idx.bases {
                for (g, &go) in idx.offsets.iter().enumerate() {
                    let row = &data[(rb + go) * cols..];
                    for (h, &ho) in idx.offsets.iter().enumerate() {
                        self.block[g * k + h] = row[cb + ho];
                    }
                }
                for (a, out) in self.block_out.iter_mut().enumerate() {
                    let srow = &self.superop[a * k2..][..k2];
                    let mut acc = C64::ZERO;
                    for (&s, &v) in srow.iter().zip(&self.block) {
                        if s == C64::ZERO {
                            continue;
                        }
                        acc += s * v;
                    }
                    *out = acc;
                }
                for (g, &go) in idx.offsets.iter().enumerate() {
                    let row = &mut data[(rb + go) * cols..];
                    for (h, &ho) in idx.offsets.iter().enumerate() {
                        row[cb + ho] = self.block_out[g * k + h];
                    }
                }
            }
        }
    }

    /// `|ψ⟩ ← Û|ψ⟩` on a raw amplitude slice — the state-vector stride
    /// kernel, O(d·k) for a k-dim gate on a d-dim register.
    ///
    /// Gate-dimension 2 and 4 (the 1q/2q qubit gates that dominate
    /// unfused trajectory workloads) run specialized loops with the
    /// operator entries hoisted into locals, so the per-fibre body is
    /// branch-free and autovectorization-friendly. Larger fused blocks
    /// whose lowest target sits above enough free subsystems take the
    /// chunked pass ([`sv_apply_blocked`]): fibres are processed in
    /// contiguous stride-1 runs (gather run → dense AXPY rows → scatter
    /// run), which keeps the innermost loop over consecutive memory.
    /// Gate-dimension 8 and 16 (fused 3- and 4-qubit qubit blocks) have
    /// dedicated per-fibre loops for the `run = 1` layouts the chunked
    /// pass cannot help; everything else falls back to the generic
    /// gather/transform/scatter path.
    ///
    /// # Panics
    ///
    /// Panics on target/dimension mismatches.
    pub fn apply_state(&mut self, amps: &mut [C64], op: &CMat, targets: &[usize], dims: &[usize]) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        match idx.gate_dim {
            2 => sv_apply_k2(amps, op, idx),
            4 => sv_apply_k4(amps, op, idx),
            d if d > 4 && idx.run >= 4 => sv_apply_blocked(amps, op, idx, &mut self.block),
            8 => sv_apply_k8(amps, op, idx),
            16 => sv_apply_k16(amps, op, idx),
            _ => sv_apply_generic(amps, op, idx, &mut self.block),
        }
    }

    /// `⟨ψ|Ô|ψ⟩` where `Ô` is `op` embedded on `targets` — O(d·k²),
    /// without cloning or transforming the state.
    pub fn expectation_state(
        &mut self,
        amps: &[C64],
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) -> C64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        let mut acc = C64::ZERO;
        for &base in &idx.bases {
            for (g, &go) in idx.offsets.iter().enumerate() {
                let ag = amps[base + go].conj();
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let o = op[(g, h)];
                    if o == C64::ZERO {
                        continue;
                    }
                    acc += ag * o * amps[base + ho];
                }
            }
        }
        acc
    }

    /// `‖K̂|ψ⟩‖²` — the probability of Kraus branch `k` on `targets` —
    /// without modifying or cloning the state. This is what lets a
    /// trajectory sampler weigh every branch of a channel and then apply
    /// only the chosen one.
    pub fn branch_weight(
        &mut self,
        amps: &[C64],
        k: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) -> f64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(k, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        if idx.gate_dim == 2 {
            return sv_weight_k2(amps, k, idx);
        }
        let kd = idx.gate_dim;
        let mut total = 0.0f64;
        for &base in &idx.bases {
            for g in 0..kd {
                let mut acc = C64::ZERO;
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let coeff = k[(g, h)];
                    if coeff == C64::ZERO {
                        continue;
                    }
                    acc += coeff * amps[base + ho];
                }
                total += acc.norm_sqr();
            }
        }
        total
    }

    /// Writes the reduced density matrix of the listed targets (partial
    /// trace over everything else) into `rho` — `rho[g,h] = Σ_base
    /// ψ[base+off_g]·conj(ψ[base+off_h])`, O(d·k) memory traffic for a
    /// k-dim subspace of a d-dim register. `rho` must already be k×k; it
    /// is overwritten.
    ///
    /// The state need not be normalized; `Tr(rho)` equals `‖ψ‖²`. This is
    /// what lets the fused trajectory path weigh local Kraus branches
    /// against a small matrix instead of sweeping the full state per
    /// branch.
    pub fn reduced_density_state(
        &mut self,
        amps: &[C64],
        targets: &[usize],
        dims: &[usize],
        rho: &mut CMat,
    ) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        let k = idx.gate_dim;
        assert!(
            rho.rows() == k && rho.cols() == k,
            "reduced-density output must be {k}×{k}"
        );
        rho.set_zero();
        // Gather the k target amplitudes once per base, then accumulate
        // only the upper triangle: ρ is Hermitian, and `conj` / the
        // swapped-operand product are exact in IEEE arithmetic, so
        // mirroring reproduces the naive double loop bit-for-bit at half
        // the flops and one gather pass instead of k.
        self.block.clear();
        self.block.resize(k, C64::ZERO);
        for &base in &idx.bases {
            for (g, &go) in idx.offsets.iter().enumerate() {
                self.block[g] = amps[base + go];
            }
            for g in 0..k {
                let ag = self.block[g];
                for h in g..k {
                    rho[(g, h)] += ag * self.block[h].conj();
                }
            }
        }
        for g in 0..k {
            for h in 0..g {
                rho[(g, h)] = rho[(h, g)].conj();
            }
        }
    }

    /// `Tr(ρ·Ô)` where `Ô` is `op` embedded on `targets` — O(d·k).
    pub fn expectation(&mut self, rho: &CMat, op: &CMat, targets: &[usize], dims: &[usize]) -> C64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        let cols = rho.cols();
        let data = rho.as_slice();
        let mut acc = C64::ZERO;
        for &base in &idx.bases {
            for (g, &go) in idx.offsets.iter().enumerate() {
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let o = op[(g, h)];
                    if o == C64::ZERO {
                        continue;
                    }
                    acc += data[(base + ho) * cols + base + go] * o;
                }
            }
        }
        acc
    }
}

fn check_op(op: &CMat, idx: &TargetIndex) {
    assert!(
        op.is_square() && op.rows() == idx.gate_dim,
        "operator dim mismatch"
    );
}

/// Row pass: for every base, gathers the k target rows into `rows` and
/// overwrites them with the operator-mixed combinations (AXPY over whole
/// rows, so the inner loop is contiguous and vectorizes).
fn apply_left_rows(mat: &mut CMat, op: &CMat, idx: &TargetIndex, rows: &mut Vec<C64>) {
    let k = idx.gate_dim;
    let cols = mat.cols();
    rows.resize(k * cols, C64::ZERO);
    let data = mat.as_mut_slice();
    for &base in &idx.bases {
        for (g, &off) in idx.offsets.iter().enumerate() {
            let src = &data[(base + off) * cols..][..cols];
            rows[g * cols..(g + 1) * cols].copy_from_slice(src);
        }
        for (g, &off) in idx.offsets.iter().enumerate() {
            let dst = &mut data[(base + off) * cols..][..cols];
            dst.fill(C64::ZERO);
            for (h, src) in rows.chunks_exact(cols).enumerate() {
                let coeff = op[(g, h)];
                if coeff == C64::ZERO {
                    continue;
                }
                for (o, &s) in dst.iter_mut().zip(src) {
                    *o += coeff * s;
                }
            }
        }
    }
}

/// Column pass: within each row, gathers the k target entries of every
/// column fibre and overwrites them with `Σ_h entry_h·conj(op[g,h])` —
/// right multiplication by the embedded `op†`.
fn apply_right_dagger_rows(mat: &mut CMat, op: &CMat, idx: &TargetIndex, gather: &mut Vec<C64>) {
    let k = idx.gate_dim;
    let cols = mat.cols();
    gather.resize(k, C64::ZERO);
    for row in mat.as_mut_slice().chunks_exact_mut(cols) {
        for &base in &idx.bases {
            for (slot, &off) in gather.iter_mut().zip(&idx.offsets) {
                *slot = row[base + off];
            }
            for (g, &off) in idx.offsets.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (h, &v) in gather.iter().enumerate() {
                    let coeff = op[(g, h)];
                    if coeff == C64::ZERO {
                        continue;
                    }
                    acc += v * coeff.conj();
                }
                row[base + off] = acc;
            }
        }
    }
}

/// 2-dim state kernel: one two-point rotation per fibre, operator entries
/// in registers, no scratch traffic.
fn sv_apply_k2(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let off = idx.offsets[1];
    let (u00, u01, u10, u11) = (op[(0, 0)], op[(0, 1)], op[(1, 0)], op[(1, 1)]);
    for &base in &idx.bases {
        let a0 = amps[base];
        let a1 = amps[base + off];
        amps[base] = u00 * a0 + u01 * a1;
        amps[base + off] = u10 * a0 + u11 * a1;
    }
}

/// 4-dim state kernel: the 2q qubit gate, 4 gathered amplitudes and a
/// fully unrolled 4×4 transform per fibre.
fn sv_apply_k4(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let (o1, o2, o3) = (idx.offsets[1], idx.offsets[2], idx.offsets[3]);
    let mut u = [C64::ZERO; 16];
    for (r, row) in u.chunks_exact_mut(4).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = op[(r, c)];
        }
    }
    for &base in &idx.bases {
        let a = [
            amps[base],
            amps[base + o1],
            amps[base + o2],
            amps[base + o3],
        ];
        amps[base] = u[0] * a[0] + u[1] * a[1] + u[2] * a[2] + u[3] * a[3];
        amps[base + o1] = u[4] * a[0] + u[5] * a[1] + u[6] * a[2] + u[7] * a[3];
        amps[base + o2] = u[8] * a[0] + u[9] * a[1] + u[10] * a[2] + u[11] * a[3];
        amps[base + o3] = u[12] * a[0] + u[13] * a[1] + u[14] * a[2] + u[15] * a[3];
    }
}

/// 8-dim state kernel (fused 3-qubit block): gathered amplitudes and the
/// operator in fixed-size stack arrays, fully unrollable row loops.
fn sv_apply_k8(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let mut u = [C64::ZERO; 64];
    for (r, row) in u.chunks_exact_mut(8).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = op[(r, c)];
        }
    }
    let mut a = [C64::ZERO; 8];
    for &base in &idx.bases {
        for (slot, &off) in a.iter_mut().zip(&idx.offsets) {
            *slot = amps[base + off];
        }
        for (row, &off) in u.chunks_exact(8).zip(&idx.offsets) {
            let mut acc = C64::ZERO;
            for (&coeff, &v) in row.iter().zip(&a) {
                acc += coeff * v;
            }
            amps[base + off] = acc;
        }
    }
}

/// 16-dim state kernel (fused 4-qubit block): same shape as the 8-dim
/// loop with the operator staged into a dense stack array.
fn sv_apply_k16(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let mut u = [C64::ZERO; 256];
    for (r, row) in u.chunks_exact_mut(16).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = op[(r, c)];
        }
    }
    let mut a = [C64::ZERO; 16];
    for &base in &idx.bases {
        for (slot, &off) in a.iter_mut().zip(&idx.offsets) {
            *slot = amps[base + off];
        }
        for (row, &off) in u.chunks_exact(16).zip(&idx.offsets) {
            let mut acc = C64::ZERO;
            for (&coeff, &v) in row.iter().zip(&a) {
                acc += coeff * v;
            }
            amps[base + off] = acc;
        }
    }
}

/// Chunked state kernel for fused blocks: bases whose lowest target sits
/// above `run` free low subsystems come in contiguous stride-1 runs, so
/// each run is processed as whole slices — gather `k` runs, rebuild each
/// as an AXPY over the gathered runs, scatter back. The innermost loop
/// walks consecutive memory, which is what lets rustc autovectorize it.
fn sv_apply_blocked(amps: &mut [C64], op: &CMat, idx: &TargetIndex, gather: &mut Vec<C64>) {
    let k = idx.gate_dim;
    let run = idx.run;
    debug_assert_eq!(idx.bases.len() % run, 0, "bases must tile into runs");
    gather.resize(k * run, C64::ZERO);
    for chunk in idx.bases.chunks_exact(run) {
        let base = chunk[0];
        debug_assert_eq!(chunk[run - 1], base + run - 1, "run must be contiguous");
        for (g, &off) in idx.offsets.iter().enumerate() {
            gather[g * run..(g + 1) * run].copy_from_slice(&amps[base + off..][..run]);
        }
        for (g, &off) in idx.offsets.iter().enumerate() {
            let dst = &mut amps[base + off..][..run];
            dst.fill(C64::ZERO);
            for (h, src) in gather.chunks_exact(run).enumerate() {
                let coeff = op[(g, h)];
                if coeff == C64::ZERO {
                    continue;
                }
                for (o, &s) in dst.iter_mut().zip(src) {
                    *o += coeff * s;
                }
            }
        }
    }
}

/// Generic state kernel: gather the k fibre amplitudes into the scratch,
/// transform, scatter back.
fn sv_apply_generic(amps: &mut [C64], op: &CMat, idx: &TargetIndex, gather: &mut Vec<C64>) {
    let k = idx.gate_dim;
    gather.resize(k, C64::ZERO);
    for &base in &idx.bases {
        for (slot, &off) in gather.iter_mut().zip(&idx.offsets) {
            *slot = amps[base + off];
        }
        for (g, &off) in idx.offsets.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (h, &v) in gather.iter().enumerate() {
                let coeff = op[(g, h)];
                if coeff == C64::ZERO {
                    continue;
                }
                acc += coeff * v;
            }
            amps[base + off] = acc;
        }
    }
}

/// 2-dim branch weight: `‖K|ψ⟩‖²` with the Kraus entries in registers.
fn sv_weight_k2(amps: &[C64], k: &CMat, idx: &TargetIndex) -> f64 {
    let off = idx.offsets[1];
    let (u00, u01, u10, u11) = (k[(0, 0)], k[(0, 1)], k[(1, 0)], k[(1, 1)]);
    let mut total = 0.0f64;
    for &base in &idx.bases {
        let a0 = amps[base];
        let a1 = amps[base + off];
        total += (u00 * a0 + u01 * a1).norm_sqr() + (u10 * a0 + u11 * a1).norm_sqr();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn target_index_offsets_match_strides() {
        // dims [2,3,2]: strides 1, 2, 6.
        let idx = TargetIndex::new(&[1], &[2, 3, 2]);
        assert_eq!(idx.gate_dim(), 3);
        assert_eq!(idx.offsets, vec![0, 2, 4]);
        assert_eq!(idx.bases, vec![0, 1, 6, 7]);
        // Reversed two-qubit targets: gate digit 0 on subsystem 2.
        let idx = TargetIndex::new(&[2, 0], &[2, 3, 2]);
        assert_eq!(idx.gate_dim(), 4);
        assert_eq!(idx.offsets, vec![0, 6, 1, 7]);
        assert_eq!(idx.bases, vec![0, 2, 4]);
    }

    #[test]
    fn fused_block_kernels_match_reference_apply() {
        // An 8-dim operator applied low (run = 1 → dedicated k8 loop) and
        // high (run = 4 → chunked blocked pass) on a 5-qubit register,
        // cross-checked against the skip-scan reference apply.
        let op = gates::h().kron(&gates::ry(0.3)).kron(&gates::x());
        let mut base = crate::StateVector::zero_qubits(5);
        base.apply_unitary(&gates::h(), &[0]);
        base.apply_unitary(&gates::cnot(), &[0, 3]);
        base.apply_unitary(&gates::ry(0.9), &[4]);
        base.apply_unitary(&gates::cnot(), &[4, 1]);
        for targets in [[0usize, 1, 2], [2, 3, 4], [4, 2, 3]] {
            let mut fast = base.clone();
            let mut slow = base.clone();
            let mut scratch = KernelScratch::new();
            fast.apply_unitary_scratch(&op, &targets, &mut scratch);
            slow.apply_unitary_ref(&op, &targets);
            let diff = fast
                .amplitudes()
                .iter()
                .zip(slow.amplitudes())
                .map(|(a, b)| (*a - *b).norm_sqr().sqrt())
                .fold(0.0f64, f64::max);
            assert!(diff < 1e-12, "targets {targets:?}: diff {diff}");
        }
    }

    #[test]
    fn reduced_density_state_matches_single_subsystem_route() {
        let mut psi = crate::StateVector::zero_qubits(3);
        psi.apply_unitary(&gates::h(), &[0]);
        psi.apply_unitary(&gates::cnot(), &[0, 2]);
        psi.apply_unitary(&gates::ry(0.4), &[1]);
        let mut scratch = KernelScratch::new();
        for q in 0..3 {
            let fast = psi.reduced_density_on(&[q], &mut scratch);
            let slow = psi.reduced_density(q);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "qubit {q}");
        }
        // Two-subsystem reduction: trace equals the squared norm and the
        // Bell pair over {0,2} is maximally entangled.
        let rho = psi.reduced_density_on(&[0, 2], &mut scratch);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho[(0, 0)].re - 0.5).abs() < 1e-10);
        assert!((rho[(3, 3)].re - 0.5).abs() < 1e-10);
    }

    #[test]
    fn conjugate_matches_embed_route() {
        let dims = [2usize, 2, 2];
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        // Mix it up first so the test is not on a sparse corner.
        let mut scratch = KernelScratch::new();
        scratch.apply_conjugate(&mut rho, &gates::h(), &[0], &dims);
        scratch.apply_conjugate(&mut rho, &gates::cnot(), &[0, 2], &dims);
        let full = crate::embed(&gates::cnot(), &[0, 2], &dims);
        let mut expect = crate::DensityMatrix::zero(&dims).matrix().clone();
        let h_full = crate::embed(&gates::h(), &[0], &dims);
        expect = &(&h_full * &expect) * &h_full.dagger();
        expect = &(&full * &expect) * &full.dagger();
        assert!(rho.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn kraus_kernel_preserves_trace() {
        let dims = [2usize, 2];
        let mut scratch = KernelScratch::new();
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        scratch.apply_conjugate(&mut rho, &gates::h(), &[0], &dims);
        scratch.apply_conjugate(&mut rho, &gates::cnot(), &[0, 1], &dims);
        scratch.apply_kraus(&mut rho, &crate::channels::depolarizing(0.2), &[1], &dims);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_trace_route() {
        let dims = [2usize, 2];
        let mut scratch = KernelScratch::new();
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        scratch.apply_conjugate(&mut rho, &gates::ry(0.7), &[1], &dims);
        let fast = scratch.expectation(&rho, &gates::z(), &[1], &dims);
        let full = crate::embed(&gates::z(), &[1], &dims);
        let slow = (&rho * &full).trace();
        assert!((fast - slow).abs() < 1e-12);
    }
}
