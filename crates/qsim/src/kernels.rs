//! In-place, allocation-free, stride-based superoperator kernels.
//!
//! [`crate::embed`] lifts a k-dimensional operator to the full register
//! space and pays two dense O(d³) products per application. These kernels
//! act on the target subsystem's rows and columns directly with the same
//! digit/stride arithmetic [`crate::StateVector::apply_unitary`] uses, so a
//! k-dim gate on a d-dim register costs O(d²·k) (unitary conjugation) or
//! O(d²·k²) (Kraus channel via the channel superoperator) — an asymptotic
//! win over embed-and-matmul that grows with qubit count.
//!
//! [`KernelScratch`] owns every buffer the kernels need (gather rows,
//! block vectors, the channel superoperator, and a cache of
//! [`TargetIndex`] tables keyed by `(targets, dims)`). Reusing one scratch
//! across calls makes the steady state allocation-free: the executor
//! threads a single scratch through its whole per-block loop.
//!
//! `embed` remains the reference implementation; the kernels are
//! cross-checked against it property-test-style in
//! `tests/kernel_equivalence.rs`.

use quant_math::{C64, CMat};

/// Precomputed index tables for one `(targets, dims)` pair.
///
/// * `offsets[g]` — global index offset of gate-basis state `g` (target 0
///   is the gate's least-significant digit, as everywhere in this crate);
/// * `bases` — every global index whose target digits are all zero; adding
///   `offsets[g]` to a base enumerates one gate-subspace fibre.
#[derive(Clone, Debug)]
pub struct TargetIndex {
    gate_dim: usize,
    total: usize,
    offsets: Vec<usize>,
    bases: Vec<usize>,
}

impl TargetIndex {
    /// Builds the index tables.
    ///
    /// # Panics
    ///
    /// Panics when targets repeat or are out of range.
    pub fn new(targets: &[usize], dims: &[usize]) -> Self {
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < dims.len(), "target {t} out of range");
            assert!(!targets[..i].contains(&t), "duplicate target {t}");
        }
        let mut strides = Vec::with_capacity(dims.len());
        let mut total = 1usize;
        for &d in dims {
            strides.push(total);
            total *= d;
        }
        let gate_dim: usize = targets.iter().map(|&t| dims[t]).product();

        let mut offsets = vec![0usize; gate_dim];
        for (g, off) in offsets.iter_mut().enumerate() {
            let mut rem = g;
            let mut o = 0usize;
            for &t in targets {
                o += (rem % dims[t]) * strides[t];
                rem /= dims[t];
            }
            *off = o;
        }

        // Enumerate base indices (every target digit zero) by expanding the
        // free digits in stride order instead of skip-scanning all `total`
        // indices with a division per target. Each expansion step appends
        // blocks whose offsets exceed every previously generated base, so
        // the list stays ascending — the same order the old scan produced.
        let mut bases = vec![0usize];
        bases.reserve(total / gate_dim.max(1));
        for (k, &d) in dims.iter().enumerate() {
            if targets.contains(&k) {
                continue;
            }
            let w = strides[k];
            let prev = bases.len();
            for digit in 1..d {
                let off = digit * w;
                for i in 0..prev {
                    let b = bases[i] + off;
                    bases.push(b);
                }
            }
        }

        TargetIndex {
            gate_dim,
            total,
            offsets,
            bases,
        }
    }

    /// The operator dimension these targets select.
    pub fn gate_dim(&self) -> usize {
        self.gate_dim
    }
}

/// One cached index table.
#[derive(Clone, Debug)]
struct IndexEntry {
    targets: Vec<usize>,
    dims: Vec<usize>,
    index: TargetIndex,
}

/// Reusable workspace for the stride kernels.
///
/// Buffers grow on demand and are never shrunk, so after the first
/// occurrence of each `(targets, dims)` pair every subsequent kernel call
/// performs zero heap allocations. Not thread-safe; use one per worker.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    indices: Vec<IndexEntry>,
    rows: Vec<C64>,
    block: Vec<C64>,
    block_out: Vec<C64>,
    superop: Vec<C64>,
}

impl KernelScratch {
    /// An empty scratch; buffers are sized lazily by the first calls.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Index-table cache position for `(targets, dims)`, building on miss.
    fn ensure_index(&mut self, targets: &[usize], dims: &[usize]) -> usize {
        if let Some(i) = self
            .indices
            .iter()
            .position(|e| e.targets == targets && e.dims == dims)
        {
            return i;
        }
        self.indices.push(IndexEntry {
            targets: targets.to_vec(),
            dims: dims.to_vec(),
            index: TargetIndex::new(targets, dims),
        });
        self.indices.len() - 1
    }

    /// `mat ← Û·mat` where `Û` is `op` embedded on `targets`: transforms
    /// the target digits of the *row* index. `mat` may have any number of
    /// columns (a density matrix, an accumulating circuit unitary, …).
    ///
    /// # Panics
    ///
    /// Panics on target/dimension mismatches.
    pub fn apply_left(&mut self, mat: &mut CMat, op: &CMat, targets: &[usize], dims: &[usize]) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(mat.rows(), idx.total, "matrix height mismatch");
        apply_left_rows(mat, op, idx, &mut self.rows);
    }

    /// `mat ← mat·Û†`: transforms the target digits of the *column* index.
    pub fn apply_right_dagger(
        &mut self,
        mat: &mut CMat,
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(mat.cols(), idx.total, "matrix width mismatch");
        apply_right_dagger_rows(mat, op, idx, &mut self.block);
    }

    /// `ρ ← Û·ρ·Û†` — the unitary-conjugation kernel, O(d²·k).
    pub fn apply_conjugate(&mut self, rho: &mut CMat, op: &CMat, targets: &[usize], dims: &[usize]) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        assert_eq!(rho.cols(), idx.total, "matrix width mismatch");
        apply_left_rows(rho, op, idx, &mut self.rows);
        apply_right_dagger_rows(rho, op, idx, &mut self.block);
    }

    /// `ρ ← Σₖ K̂ₖ·ρ·K̂ₖ†` — the channel kernel, O(d²·k²), single pass.
    ///
    /// Builds the k²×k² channel superoperator `S[(g,h),(g',h')] =
    /// Σₖ Kₖ[g,g']·conj(Kₖ[h,h'])` once, then applies it to every k×k
    /// block of ρ selected by a (row-base, column-base) pair.
    pub fn apply_kraus(
        &mut self,
        rho: &mut CMat,
        kraus: &[CMat],
        targets: &[usize],
        dims: &[usize],
    ) {
        assert!(!kraus.is_empty(), "channel needs at least one Kraus operator");
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        for op in kraus {
            check_op(op, idx);
        }
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        assert_eq!(rho.cols(), idx.total, "matrix width mismatch");

        let k = idx.gate_dim;
        let k2 = k * k;
        self.superop.resize(k2 * k2, C64::ZERO);
        self.superop.fill(C64::ZERO);
        for kr in kraus {
            for g in 0..k {
                for gp in 0..k {
                    let a = kr[(g, gp)];
                    if a == C64::ZERO {
                        continue;
                    }
                    for h in 0..k {
                        let row = &mut self.superop[(g * k + h) * k2..][..k2];
                        for hp in 0..k {
                            row[gp * k + hp] += a * kr[(h, hp)].conj();
                        }
                    }
                }
            }
        }

        self.block.resize(k2, C64::ZERO);
        self.block_out.resize(k2, C64::ZERO);
        let cols = rho.cols();
        let data = rho.as_mut_slice();
        for &rb in &idx.bases {
            for &cb in &idx.bases {
                for (g, &go) in idx.offsets.iter().enumerate() {
                    let row = &data[(rb + go) * cols..];
                    for (h, &ho) in idx.offsets.iter().enumerate() {
                        self.block[g * k + h] = row[cb + ho];
                    }
                }
                for (a, out) in self.block_out.iter_mut().enumerate() {
                    let srow = &self.superop[a * k2..][..k2];
                    let mut acc = C64::ZERO;
                    for (&s, &v) in srow.iter().zip(&self.block) {
                        if s == C64::ZERO {
                            continue;
                        }
                        acc += s * v;
                    }
                    *out = acc;
                }
                for (g, &go) in idx.offsets.iter().enumerate() {
                    let row = &mut data[(rb + go) * cols..];
                    for (h, &ho) in idx.offsets.iter().enumerate() {
                        row[cb + ho] = self.block_out[g * k + h];
                    }
                }
            }
        }
    }

    /// `|ψ⟩ ← Û|ψ⟩` on a raw amplitude slice — the state-vector stride
    /// kernel, O(d·k) for a k-dim gate on a d-dim register.
    ///
    /// Gate-dimension 2 and 4 (the 1q/2q qubit gates that dominate
    /// trajectory workloads) run specialized loops with the operator
    /// entries hoisted into locals, so the per-fibre body is branch-free
    /// and autovectorization-friendly; other dimensions take a generic
    /// gather/transform/scatter path through the scratch.
    ///
    /// # Panics
    ///
    /// Panics on target/dimension mismatches.
    pub fn apply_state(
        &mut self,
        amps: &mut [C64],
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        match idx.gate_dim {
            2 => sv_apply_k2(amps, op, idx),
            4 => sv_apply_k4(amps, op, idx),
            _ => sv_apply_generic(amps, op, idx, &mut self.block),
        }
    }

    /// `⟨ψ|Ô|ψ⟩` where `Ô` is `op` embedded on `targets` — O(d·k²),
    /// without cloning or transforming the state.
    pub fn expectation_state(
        &mut self,
        amps: &[C64],
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) -> C64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        let mut acc = C64::ZERO;
        for &base in &idx.bases {
            for (g, &go) in idx.offsets.iter().enumerate() {
                let ag = amps[base + go].conj();
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let o = op[(g, h)];
                    if o == C64::ZERO {
                        continue;
                    }
                    acc += ag * o * amps[base + ho];
                }
            }
        }
        acc
    }

    /// `‖K̂|ψ⟩‖²` — the probability of Kraus branch `k` on `targets` —
    /// without modifying or cloning the state. This is what lets a
    /// trajectory sampler weigh every branch of a channel and then apply
    /// only the chosen one.
    pub fn branch_weight(
        &mut self,
        amps: &[C64],
        k: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) -> f64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(k, idx);
        assert_eq!(amps.len(), idx.total, "state length mismatch");
        if idx.gate_dim == 2 {
            return sv_weight_k2(amps, k, idx);
        }
        let kd = idx.gate_dim;
        let mut total = 0.0f64;
        for &base in &idx.bases {
            for g in 0..kd {
                let mut acc = C64::ZERO;
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let coeff = k[(g, h)];
                    if coeff == C64::ZERO {
                        continue;
                    }
                    acc += coeff * amps[base + ho];
                }
                total += acc.norm_sqr();
            }
        }
        total
    }

    /// `Tr(ρ·Ô)` where `Ô` is `op` embedded on `targets` — O(d·k).
    pub fn expectation(
        &mut self,
        rho: &CMat,
        op: &CMat,
        targets: &[usize],
        dims: &[usize],
    ) -> C64 {
        let i = self.ensure_index(targets, dims);
        let idx = &self.indices[i].index;
        check_op(op, idx);
        assert_eq!(rho.rows(), idx.total, "matrix height mismatch");
        let cols = rho.cols();
        let data = rho.as_slice();
        let mut acc = C64::ZERO;
        for &base in &idx.bases {
            for (g, &go) in idx.offsets.iter().enumerate() {
                for (h, &ho) in idx.offsets.iter().enumerate() {
                    let o = op[(g, h)];
                    if o == C64::ZERO {
                        continue;
                    }
                    acc += data[(base + ho) * cols + base + go] * o;
                }
            }
        }
        acc
    }
}

fn check_op(op: &CMat, idx: &TargetIndex) {
    assert!(
        op.is_square() && op.rows() == idx.gate_dim,
        "operator dim mismatch"
    );
}

/// Row pass: for every base, gathers the k target rows into `rows` and
/// overwrites them with the operator-mixed combinations (AXPY over whole
/// rows, so the inner loop is contiguous and vectorizes).
fn apply_left_rows(mat: &mut CMat, op: &CMat, idx: &TargetIndex, rows: &mut Vec<C64>) {
    let k = idx.gate_dim;
    let cols = mat.cols();
    rows.resize(k * cols, C64::ZERO);
    let data = mat.as_mut_slice();
    for &base in &idx.bases {
        for (g, &off) in idx.offsets.iter().enumerate() {
            let src = &data[(base + off) * cols..][..cols];
            rows[g * cols..(g + 1) * cols].copy_from_slice(src);
        }
        for (g, &off) in idx.offsets.iter().enumerate() {
            let dst = &mut data[(base + off) * cols..][..cols];
            dst.fill(C64::ZERO);
            for (h, src) in rows.chunks_exact(cols).enumerate() {
                let coeff = op[(g, h)];
                if coeff == C64::ZERO {
                    continue;
                }
                for (o, &s) in dst.iter_mut().zip(src) {
                    *o += coeff * s;
                }
            }
        }
    }
}

/// Column pass: within each row, gathers the k target entries of every
/// column fibre and overwrites them with `Σ_h entry_h·conj(op[g,h])` —
/// right multiplication by the embedded `op†`.
fn apply_right_dagger_rows(mat: &mut CMat, op: &CMat, idx: &TargetIndex, gather: &mut Vec<C64>) {
    let k = idx.gate_dim;
    let cols = mat.cols();
    gather.resize(k, C64::ZERO);
    for row in mat.as_mut_slice().chunks_exact_mut(cols) {
        for &base in &idx.bases {
            for (slot, &off) in gather.iter_mut().zip(&idx.offsets) {
                *slot = row[base + off];
            }
            for (g, &off) in idx.offsets.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (h, &v) in gather.iter().enumerate() {
                    let coeff = op[(g, h)];
                    if coeff == C64::ZERO {
                        continue;
                    }
                    acc += v * coeff.conj();
                }
                row[base + off] = acc;
            }
        }
    }
}

/// 2-dim state kernel: one two-point rotation per fibre, operator entries
/// in registers, no scratch traffic.
fn sv_apply_k2(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let off = idx.offsets[1];
    let (u00, u01, u10, u11) = (op[(0, 0)], op[(0, 1)], op[(1, 0)], op[(1, 1)]);
    for &base in &idx.bases {
        let a0 = amps[base];
        let a1 = amps[base + off];
        amps[base] = u00 * a0 + u01 * a1;
        amps[base + off] = u10 * a0 + u11 * a1;
    }
}

/// 4-dim state kernel: the 2q qubit gate, 4 gathered amplitudes and a
/// fully unrolled 4×4 transform per fibre.
fn sv_apply_k4(amps: &mut [C64], op: &CMat, idx: &TargetIndex) {
    let (o1, o2, o3) = (idx.offsets[1], idx.offsets[2], idx.offsets[3]);
    let mut u = [C64::ZERO; 16];
    for (r, row) in u.chunks_exact_mut(4).enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = op[(r, c)];
        }
    }
    for &base in &idx.bases {
        let a = [
            amps[base],
            amps[base + o1],
            amps[base + o2],
            amps[base + o3],
        ];
        amps[base] = u[0] * a[0] + u[1] * a[1] + u[2] * a[2] + u[3] * a[3];
        amps[base + o1] = u[4] * a[0] + u[5] * a[1] + u[6] * a[2] + u[7] * a[3];
        amps[base + o2] = u[8] * a[0] + u[9] * a[1] + u[10] * a[2] + u[11] * a[3];
        amps[base + o3] = u[12] * a[0] + u[13] * a[1] + u[14] * a[2] + u[15] * a[3];
    }
}

/// Generic state kernel: gather the k fibre amplitudes into the scratch,
/// transform, scatter back.
fn sv_apply_generic(amps: &mut [C64], op: &CMat, idx: &TargetIndex, gather: &mut Vec<C64>) {
    let k = idx.gate_dim;
    gather.resize(k, C64::ZERO);
    for &base in &idx.bases {
        for (slot, &off) in gather.iter_mut().zip(&idx.offsets) {
            *slot = amps[base + off];
        }
        for (g, &off) in idx.offsets.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (h, &v) in gather.iter().enumerate() {
                let coeff = op[(g, h)];
                if coeff == C64::ZERO {
                    continue;
                }
                acc += coeff * v;
            }
            amps[base + off] = acc;
        }
    }
}

/// 2-dim branch weight: `‖K|ψ⟩‖²` with the Kraus entries in registers.
fn sv_weight_k2(amps: &[C64], k: &CMat, idx: &TargetIndex) -> f64 {
    let off = idx.offsets[1];
    let (u00, u01, u10, u11) = (k[(0, 0)], k[(0, 1)], k[(1, 0)], k[(1, 1)]);
    let mut total = 0.0f64;
    for &base in &idx.bases {
        let a0 = amps[base];
        let a1 = amps[base + off];
        total += (u00 * a0 + u01 * a1).norm_sqr() + (u10 * a0 + u11 * a1).norm_sqr();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn target_index_offsets_match_strides() {
        // dims [2,3,2]: strides 1, 2, 6.
        let idx = TargetIndex::new(&[1], &[2, 3, 2]);
        assert_eq!(idx.gate_dim(), 3);
        assert_eq!(idx.offsets, vec![0, 2, 4]);
        assert_eq!(idx.bases, vec![0, 1, 6, 7]);
        // Reversed two-qubit targets: gate digit 0 on subsystem 2.
        let idx = TargetIndex::new(&[2, 0], &[2, 3, 2]);
        assert_eq!(idx.gate_dim(), 4);
        assert_eq!(idx.offsets, vec![0, 6, 1, 7]);
        assert_eq!(idx.bases, vec![0, 2, 4]);
    }

    #[test]
    fn conjugate_matches_embed_route() {
        let dims = [2usize, 2, 2];
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        // Mix it up first so the test is not on a sparse corner.
        let mut scratch = KernelScratch::new();
        scratch.apply_conjugate(&mut rho, &gates::h(), &[0], &dims);
        scratch.apply_conjugate(&mut rho, &gates::cnot(), &[0, 2], &dims);
        let full = crate::embed(&gates::cnot(), &[0, 2], &dims);
        let mut expect = crate::DensityMatrix::zero(&dims).matrix().clone();
        let h_full = crate::embed(&gates::h(), &[0], &dims);
        expect = &(&h_full * &expect) * &h_full.dagger();
        expect = &(&full * &expect) * &full.dagger();
        assert!(rho.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn kraus_kernel_preserves_trace() {
        let dims = [2usize, 2];
        let mut scratch = KernelScratch::new();
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        scratch.apply_conjugate(&mut rho, &gates::h(), &[0], &dims);
        scratch.apply_conjugate(&mut rho, &gates::cnot(), &[0, 1], &dims);
        scratch.apply_kraus(&mut rho, &crate::channels::depolarizing(0.2), &[1], &dims);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_trace_route() {
        let dims = [2usize, 2];
        let mut scratch = KernelScratch::new();
        let mut rho = crate::DensityMatrix::zero(&dims).matrix().clone();
        scratch.apply_conjugate(&mut rho, &gates::ry(0.7), &[1], &dims);
        let fast = scratch.expectation(&rho, &gates::z(), &[1], &dims);
        let full = crate::embed(&gates::z(), &[1], &dims);
        let slow = (&rho * &full).trace();
        assert!((fast - slow).abs() < 1e-12);
    }
}
