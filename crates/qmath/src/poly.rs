//! Polynomial root finding and characteristic polynomials.
//!
//! Used by the compiler's Weyl-chamber analysis: the local-equivalence class
//! of a two-qubit unitary is read off the eigenvalues of a 4×4 complex
//! matrix, which we obtain as roots of its characteristic polynomial.

use crate::complex::C64;
use crate::mat::CMat;

/// Coefficients of the monic characteristic polynomial
/// `λⁿ + c[n-1]·λⁿ⁻¹ + … + c[0]` of a square matrix, computed with the
/// Faddeev–LeVerrier recurrence.
pub fn characteristic_polynomial(a: &CMat) -> Vec<C64> {
    assert!(a.is_square(), "characteristic polynomial of square matrix");
    let n = a.rows();
    let mut coeffs = vec![C64::ZERO; n]; // c[0..n], monic leading 1 implied
    let mut m = CMat::zeros(n, n);
    let mut c_prev = C64::ONE;
    for k in 1..=n {
        // M_k = A·M_{k-1} + c_{n-k+1}·I ;  c_{n-k} = -tr(A·M_k)/k
        m = &(a * &m) + &CMat::identity(n).scale(c_prev);
        let am = a * &m;
        let c = am.trace() * C64::real(-1.0 / k as f64);
        coeffs[n - k] = c;
        c_prev = c;
    }
    coeffs
}

/// Finds all roots of a monic polynomial with the Durand–Kerner
/// (Weierstrass) iteration.
///
/// `coeffs` holds `c[0..n]` for `λⁿ + c[n-1]λⁿ⁻¹ + … + c[0]`.
pub fn durand_kerner(coeffs: &[C64]) -> Vec<C64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    let eval = |z: C64| -> C64 {
        let mut acc = C64::ONE;
        for &c in coeffs.iter().rev() {
            acc = acc * z + c;
        }
        acc
    };
    // Standard non-real, non-unit-modulus starting points.
    let seed = C64::new(0.4, 0.9);
    let mut roots: Vec<C64> = (0..n).map(|k| seed.powi(k as i32 + 1)).collect();
    for _iter in 0..200 {
        let mut max_step = 0.0_f64;
        for i in 0..n {
            let mut denom = C64::ONE;
            for j in 0..n {
                if i != j {
                    denom *= roots[i] - roots[j];
                }
            }
            if denom.abs() < 1e-300 {
                // Perturb coincident estimates.
                roots[i] += C64::new(1e-8, 1e-8);
                continue;
            }
            let step = eval(roots[i]) / denom;
            roots[i] -= step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-14 {
            break;
        }
    }
    roots
}

/// Eigenvalues of a general (not necessarily Hermitian) square complex
/// matrix via its characteristic polynomial. Practical for the small
/// (≤ 4×4) matrices that arise in two-qubit gate analysis.
pub fn eigenvalues(a: &CMat) -> Vec<C64> {
    durand_kerner(&characteristic_polynomial(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charpoly_of_diagonal() {
        let a = CMat::diag(&[C64::real(1.0), C64::real(2.0)]);
        // (λ-1)(λ-2) = λ² - 3λ + 2
        let c = characteristic_polynomial(&a);
        assert!(c[1].approx_eq(C64::real(-3.0), 1e-10));
        assert!(c[0].approx_eq(C64::real(2.0), 1e-10));
    }

    #[test]
    fn roots_of_quadratic() {
        // λ² + 1 → ±i
        let roots = durand_kerner(&[C64::ONE, C64::ZERO]);
        let mut mags: Vec<f64> = roots
            .iter()
            .map(|r| (r.re.abs(), r.im))
            .map(|(re, im)| re + (im.abs() - 1.0).abs())
            .collect();
        mags.sort_by(|a, b| a.total_cmp(b));
        for r in &roots {
            assert!(r.re.abs() < 1e-8);
            assert!((r.im.abs() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalues_of_pauli_y() {
        let y = CMat::from_rows(&[&[C64::ZERO, C64::imag(-1.0)], &[C64::imag(1.0), C64::ZERO]]);
        let mut ev: Vec<f64> = eigenvalues(&y).iter().map(|z| z.re).collect();
        ev.sort_by(|a, b| a.total_cmp(b));
        assert!((ev[0] + 1.0).abs() < 1e-8);
        assert!((ev[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvalues_of_unitary_lie_on_circle() {
        // A 4×4 unitary: kron of two rotations.
        use crate::eig::unitary_exp;
        let x = CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let u1 = unitary_exp(&x.scale(C64::real(0.5)), 0.7);
        let u2 = unitary_exp(&x.scale(C64::real(0.5)), 1.9);
        let u = u1.kron(&u2);
        for ev in eigenvalues(&u) {
            assert!(
                (ev.abs() - 1.0).abs() < 1e-7,
                "eigenvalue off unit circle: {ev}"
            );
        }
    }

    #[test]
    fn repeated_roots_converge() {
        // (λ-1)² = λ² - 2λ + 1
        let roots = durand_kerner(&[C64::ONE, C64::real(-2.0)]);
        for r in &roots {
            assert!(r.approx_eq(C64::ONE, 1e-5), "repeated root estimate {r}");
        }
    }
}
