//! Derivative-free optimization.
//!
//! The paper computes Table 2's parametrized-gate decompositions with SciPy's
//! COBYLA under a ≥99.9 % fidelity constraint. We provide two from-scratch
//! equivalents:
//!
//! * [`nelder_mead`] — the classic simplex method, used with random restarts
//!   for the compiler's decomposition searches and the VQE/QAOA classical
//!   outer loops.
//! * [`cobyla_lite`] — a linear-approximation trust-region method in the
//!   spirit of COBYLA (Powell 2007): it fits a linear model of the objective
//!   on a simplex and steps within a shrinking trust radius, supporting
//!   inequality constraints through an exact penalty.

/// Options controlling a [`nelder_mead`] run.
#[derive(Clone, Debug)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex's diameter falls below this.
    pub x_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 4000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.5,
        }
    }
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Minimizes `f` with the Nelder–Mead simplex method starting from `x0`.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptimizeResult {
    let n = x0.len();
    assert!(n > 0, "cannot optimize a zero-dimensional problem");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        xi[i] += opts.initial_step;
        let fi = eval(&xi, &mut evals);
        simplex.push((xi, fi));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let f_best = simplex[0].1;
        let f_worst = simplex[n].1;
        let diam = simplex
            .iter()
            .skip(1)
            .map(|(x, _)| {
                x.iter()
                    .zip(&simplex[0].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if (f_worst - f_best).abs() < opts.f_tol && diam < opts.x_tol {
            break;
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (ci, xi) in centroid.iter_mut().zip(x) {
                *ci += xi / n as f64;
            }
        }

        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let f_reflect = eval(&reflect, &mut evals);

        if f_reflect < simplex[0].1 {
            // Try expanding.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let f_expand = eval(&expand, &mut evals);
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contract.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let f_contract = eval(&contract, &mut evals);
            if f_contract < worst.1 {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink towards the best point.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    for (xi, bi) in entry.0.iter_mut().zip(&best) {
                        *xi = bi + sigma * (*xi - bi);
                    }
                    entry.1 = eval(&entry.0, &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    OptimizeResult {
        x: simplex[0].0.clone(),
        fx: simplex[0].1,
        evals,
    }
}

/// An inequality constraint `g(x) ≥ 0` for [`cobyla_lite`].
pub type Constraint<'a> = &'a dyn Fn(&[f64]) -> f64;

/// Options controlling a [`cobyla_lite`] run.
#[derive(Clone, Debug)]
pub struct CobylaOptions {
    /// Initial trust-region radius.
    pub rho_start: f64,
    /// Final trust-region radius (convergence threshold).
    pub rho_end: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Weight of the exact constraint-violation penalty.
    pub penalty: f64,
}

impl Default for CobylaOptions {
    fn default() -> Self {
        CobylaOptions {
            rho_start: 0.5,
            rho_end: 1e-8,
            max_evals: 6000,
            penalty: 1e3,
        }
    }
}

/// Minimizes `f` subject to `g_i(x) ≥ 0` with a COBYLA-style
/// linear-approximation trust-region iteration.
///
/// The merit function is `f(x) + penalty · Σ max(0, −g_i(x))`. A linear model
/// of the merit is fit on an `n+1`-point simplex by least squares; the method
/// steps along the model's descent direction, clipped to the trust radius,
/// shrinking the radius when no progress is made — the essential mechanics of
/// Powell's method without the specialized linear-programming subproblem.
pub fn cobyla_lite(
    mut f: impl FnMut(&[f64]) -> f64,
    constraints: &[Constraint<'_>],
    x0: &[f64],
    opts: &CobylaOptions,
) -> OptimizeResult {
    let n = x0.len();
    assert!(n > 0, "cannot optimize a zero-dimensional problem");
    let mut evals = 0usize;
    let mut merit = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let mut m = f(x);
        for g in constraints {
            let v = g(x);
            if v < 0.0 {
                m += opts.penalty * (-v);
            }
        }
        m
    };

    let mut rho = opts.rho_start;
    let mut x = x0.to_vec();
    let mut fx = merit(&x, &mut evals);

    while rho > opts.rho_end && evals < opts.max_evals {
        // Sample a simplex of radius rho around x and fit a linear model
        // m(d) = fx + g·d by least squares on the differences.
        let mut grad = vec![0.0; n];
        for i in 0..n {
            let mut xp = x.clone();
            xp[i] += rho;
            let fp = merit(&xp, &mut evals);
            grad[i] = (fp - fx) / rho;
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-300 {
            rho *= 0.5;
            continue;
        }
        // Step along -grad, clipped to the trust radius.
        let candidate: Vec<f64> = x
            .iter()
            .zip(&grad)
            .map(|(xi, gi)| xi - rho * gi / gnorm)
            .collect();
        let f_cand = merit(&candidate, &mut evals);
        if f_cand < fx - 1e-15 {
            x = candidate;
            fx = f_cand;
        } else {
            rho *= 0.5;
        }
    }

    OptimizeResult { x, fx, evals }
}

/// Runs [`nelder_mead`] from several starting points and keeps the best
/// result. `starts` supplies the initial points.
pub fn nelder_mead_multistart(
    mut f: impl FnMut(&[f64]) -> f64,
    starts: &[Vec<f64>],
    opts: &NelderMeadOptions,
) -> OptimizeResult {
    assert!(!starts.is_empty(), "need at least one start point");
    let mut best: Option<OptimizeResult> = None;
    let mut total_evals = 0usize;
    for s in starts {
        let r = nelder_mead(&mut f, s, opts);
        total_evals += r.evals;
        if best.as_ref().is_none_or(|b| r.fx < b.fx) {
            best = Some(r);
        }
    }
    let mut best = best.unwrap();
    best.evals = total_evals;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_quadratic_bowl() {
        let r = nelder_mead(
            |x| (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 0.5).powi(2),
            &[5.0, 5.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-5, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 0.5).abs() < 1e-5, "x1 = {}", r.x[1]);
        assert!(r.fx < 1e-9);
    }

    #[test]
    fn nelder_mead_rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = NelderMeadOptions {
            max_evals: 20_000,
            ..Default::default()
        };
        let r = nelder_mead(rosen, &[-1.2, 1.0], &opts);
        assert!(r.fx < 1e-8, "rosenbrock fx = {}", r.fx);
    }

    #[test]
    fn cobyla_respects_constraint() {
        // Minimize x² + y² subject to x + y ≥ 1 → optimum at (0.5, 0.5).
        let g = |x: &[f64]| x[0] + x[1] - 1.0;
        let r = cobyla_lite(
            |x| x[0] * x[0] + x[1] * x[1],
            &[&g],
            &[2.0, 2.0],
            &CobylaOptions::default(),
        );
        assert!(g(&r.x) > -1e-4, "constraint violated: {}", g(&r.x));
        assert!((r.x[0] - 0.5).abs() < 0.05, "x = {:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 0.05, "x = {:?}", r.x);
    }

    #[test]
    fn cobyla_unconstrained_matches_nm() {
        let obj = |x: &[f64]| (x[0] + 3.0).powi(2) + 1.25;
        let r = cobyla_lite(obj, &[], &[10.0], &CobylaOptions::default());
        assert!((r.x[0] + 3.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.fx - 1.25).abs() < 1e-5);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well; the +0.5·v tilt makes the negative well global.
        let f = |x: &[f64]| {
            let v = x[0];
            (v * v - 4.0).powi(2) + 0.5 * v
        };
        let starts = vec![vec![3.0], vec![-3.0]];
        let r = nelder_mead_multistart(f, &starts, &NelderMeadOptions::default());
        assert!(r.x[0] < 0.0, "should find the global (negative) well");
    }

    #[test]
    fn eval_budget_respected() {
        let opts = NelderMeadOptions {
            max_evals: 50,
            ..Default::default()
        };
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[1.0, 1.0, 1.0],
            &opts,
        );
        // A few extra evaluations are allowed for the move that crosses the
        // boundary, but it must stay in the same order of magnitude.
        assert!(count <= 60, "used {count} evaluations");
    }
}
