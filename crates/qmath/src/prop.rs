//! Allocation-free short-time propagators.
//!
//! The pulse-level device simulator evaluates `exp(-i·H(tₖ)·dt)` once per
//! 0.22 ns sample — millions of times per experiment. The eigendecomposition
//! route ([`crate::unitary_exp`]) is exact but performs a full complex
//! Jacobi diagonalization plus several allocations per call. For the short
//! time steps the integrator actually takes (‖H·dt‖ ≲ 0.5), a truncated
//! Taylor series with scaling-and-squaring reaches the same 1e-12-level
//! accuracy at a fraction of the cost, and — with the scratch buffers held
//! here — performs **zero** heap allocations per propagator after warm-up.

use crate::complex::C64;
use crate::mat::CMat;

/// Taylor truncation degree. With the scaled norm held at ≤ 0.5 the
/// remainder is below 0.5¹³/13! ≈ 2·10⁻¹⁴, comfortably inside the
/// integrator tolerances even after the squaring stage doubles it a few
/// times. Degree 12 is chosen because it factors as 4 groups of 3 for
/// the Paterson–Stockmeyer evaluation below.
const TAYLOR_DEGREE: usize = 12;

/// cₖ = 1/k! for k = 0..=12, folded at compile time.
const INV_FACTORIAL: [f64; TAYLOR_DEGREE + 1] = {
    let mut c = [1.0f64; TAYLOR_DEGREE + 1];
    let mut k = 1;
    while k <= TAYLOR_DEGREE {
        c[k] = c[k - 1] / k as f64;
        k += 1;
    }
    c
};

/// Scratch buffers for repeated `exp(-i H t)` evaluations of one fixed
/// dimension. Create once per integration loop, reuse for every sample.
#[derive(Clone, Debug)]
pub struct PropagatorScratch {
    n: usize,
    a: CMat,
    a2: CMat,
    a3: CMat,
    tmp: CMat,
    sum: CMat,
}

impl PropagatorScratch {
    /// Scratch for `n × n` generators.
    pub fn new(n: usize) -> Self {
        PropagatorScratch {
            n,
            a: CMat::zeros(n, n),
            a2: CMat::zeros(n, n),
            a3: CMat::zeros(n, n),
            tmp: CMat::zeros(n, n),
            sum: CMat::zeros(n, n),
        }
    }

    /// Dimension this scratch serves.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Writes `exp(-i·h·t)` into `out` without allocating.
    ///
    /// `h` must be Hermitian for the result to be unitary (not checked
    /// here — the integrators construct Hermitian drive Hamiltonians by
    /// symmetry, and checking would cost as much as the exponential).
    ///
    /// # Panics
    ///
    /// Panics when `h` or `out` is not `n × n`.
    pub fn unitary_exp_into(&mut self, h: &CMat, t: f64, out: &mut CMat) {
        assert_eq!(h.rows(), self.n, "generator dimension mismatch");
        assert!(h.is_square(), "unitary_exp_into requires a square matrix");
        if self.n == 3 {
            // Qutrit fast path: fold the −i·t scaling and the norm estimate
            // into the stack-array kernel (‖−i·t·H‖ = |t|·‖H‖, so the
            // squaring count comes from one fused pass over `h`).
            assert_eq!(out.rows(), 3, "output row mismatch");
            assert_eq!(out.cols(), 3, "output column mismatch");
            let hs = h.as_slice();
            let mut norm2 = 0.0;
            for &z in &hs[..9] {
                norm2 += z.norm_sqr();
            }
            let norm = norm2.sqrt() * t.abs();
            let squarings = if norm > 0.5 {
                (norm / 0.5).log2().ceil().max(0.0) as u32
            } else {
                0
            };
            let factor = C64::imag(-t / f64::powi(2.0, squarings as i32));
            let mut a = [C64::ZERO; 9];
            for (x, &z) in a.iter_mut().zip(&hs[..9]) {
                *x = z * factor;
            }
            expm3(&a, squarings, out.as_mut_slice());
            return;
        }
        // A = -i·t·H.
        self.a.copy_from(h);
        self.a.scale_assign(C64::imag(-t));
        self.expm_into(out);
    }

    /// Writes `exp(a)` into `out` without allocating (general generator).
    pub fn expm_of_into(&mut self, a: &CMat, out: &mut CMat) {
        assert_eq!(a.rows(), self.n, "generator dimension mismatch");
        assert!(a.is_square(), "expm_of_into requires a square matrix");
        self.a.copy_from(a);
        self.expm_into(out);
    }

    /// Exponentiates `self.a` (destroying it) into `out`.
    ///
    /// The truncated Taylor sum Σₖ aᵏ/k! is evaluated Paterson–Stockmeyer
    /// style: with A² and A³ precomputed, the degree-12 polynomial groups
    /// as B₀ + A³·(B₁ + A³·(B₂ + A³·(B₃ + A³·c₁₂·I))) where each
    /// Bⱼ = c₃ⱼI + c₃ⱼ₊₁A + c₃ⱼ₊₂A² costs only scaled adds. That is 6
    /// matrix products per exponential instead of the 12 a term-by-term
    /// recurrence needs — matmuls dominate at these dimensions.
    fn expm_into(&mut self, out: &mut CMat) {
        let norm = self.a.frobenius_norm();
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil().max(0.0) as u32
        } else {
            0
        };
        if squarings > 0 {
            self.a
                .scale_assign(C64::real(1.0 / f64::powi(2.0, squarings as i32)));
        }
        if self.n == 3 {
            // Qutrit dimension is the integrator hot path — run the whole
            // evaluation on stack arrays so nothing round-trips through
            // heap-backed matrices between products.
            assert_eq!(out.rows(), 3, "output row mismatch");
            assert_eq!(out.cols(), 3, "output column mismatch");
            expm3(self.a.as_slice(), squarings, out.as_mut_slice());
            return;
        }
        let c = &INV_FACTORIAL;
        self.a.mul_into(&self.a, &mut self.a2);
        self.a2.mul_into(&self.a, &mut self.a3);
        // Horner in A³, innermost group first.
        self.sum.set_identity();
        self.sum.scale_assign(C64::real(c[12]));
        for j in (0..=3).rev() {
            self.sum.mul_into(&self.a3, &mut self.tmp);
            std::mem::swap(&mut self.sum, &mut self.tmp);
            for i in 0..self.n {
                self.sum[(i, i)] += C64::real(c[3 * j]);
            }
            self.sum.add_scaled_assign(&self.a, C64::real(c[3 * j + 1]));
            self.sum
                .add_scaled_assign(&self.a2, C64::real(c[3 * j + 2]));
        }
        // Undo the scaling: square `squarings` times.
        for _ in 0..squarings {
            self.tmp.copy_from(&self.sum);
            self.tmp.mul_into(&self.tmp, &mut self.sum);
        }
        out.copy_from(&self.sum);
    }
}

/// Degree-12 Paterson–Stockmeyer `exp` specialized to 3×3, entirely on
/// stack arrays. `a` is the already-scaled generator; `squarings` undoes
/// the scaling at the end. Same evaluation order as the generic path, so
/// the two agree to rounding.
fn expm3(a: &[C64], squarings: u32, out: &mut [C64]) {
    #[inline(always)]
    fn mul3(a: &[C64; 9], b: &[C64; 9]) -> [C64; 9] {
        let mut o = [C64::ZERO; 9];
        for r in 0..3 {
            let (a0, a1, a2) = (a[3 * r], a[3 * r + 1], a[3 * r + 2]);
            o[3 * r] = a0 * b[0] + a1 * b[3] + a2 * b[6];
            o[3 * r + 1] = a0 * b[1] + a1 * b[4] + a2 * b[7];
            o[3 * r + 2] = a0 * b[2] + a1 * b[5] + a2 * b[8];
        }
        o
    }
    let c = &INV_FACTORIAL;
    let mut m = [C64::ZERO; 9];
    m.copy_from_slice(&a[..9]);
    let m2 = mul3(&m, &m);
    let m3 = mul3(&m2, &m);
    // Horner in M³, innermost group first: start from c₁₂·I.
    let mut sum = [C64::ZERO; 9];
    for i in 0..3 {
        sum[4 * i] = C64::real(c[12]);
    }
    for j in (0..=3).rev() {
        sum = mul3(&sum, &m3);
        for i in 0..9 {
            sum[i] += m[i] * C64::real(c[3 * j + 1]) + m2[i] * C64::real(c[3 * j + 2]);
        }
        for i in 0..3 {
            sum[4 * i] += C64::real(c[3 * j]);
        }
    }
    for _ in 0..squarings {
        sum = mul3(&sum, &sum);
    }
    out[..9].copy_from_slice(&sum);
}

/// `out = a · b` for row-major 9×9 operands on stack arrays.
///
/// The two-qutrit pair integrator spends essentially all of its time in
/// 9×9 products; with the dimensions known at compile time the row
/// accumulator stays in registers and the product runs well ahead of the
/// generic heap-matrix loop. Same `i·k·j` accumulation order as
/// [`crate::CMat::mul_into`].
pub fn mul9_into(a: &[C64; 81], b: &[C64; 81], out: &mut [C64; 81]) {
    for r in 0..9 {
        let ar = &a[9 * r..9 * r + 9];
        let mut acc = [C64::ZERO; 9];
        for (k, &ak) in ar.iter().enumerate() {
            // Drive Hamiltonians (and their low Taylor powers) are sparse;
            // skipping zero coefficients mirrors the generic heap loop.
            if ak == C64::ZERO {
                continue;
            }
            let br = &b[9 * k..9 * k + 9];
            for (x, &bv) in acc.iter_mut().zip(br) {
                *x += ak * bv;
            }
        }
        out[9 * r..9 * r + 9].copy_from_slice(&acc);
    }
}

/// Writes `exp(-i·h·t)` of a row-major Hermitian 9×9 generator into `out`,
/// entirely on stack arrays — the two-qutrit analogue of the 3×3 fast path
/// inside [`PropagatorScratch::unitary_exp_into`]. Same degree-12
/// Paterson–Stockmeyer evaluation and scaling-and-squaring policy, so the
/// result agrees with the heap-matrix route to rounding.
pub fn unitary_exp9_into(h: &[C64; 81], t: f64, out: &mut [C64; 81]) {
    let mut norm2 = 0.0;
    for &z in h.iter() {
        norm2 += z.norm_sqr();
    }
    let norm = norm2.sqrt() * t.abs();
    let squarings = if norm > 0.5 {
        (norm / 0.5).log2().ceil().max(0.0) as u32
    } else {
        0
    };
    let factor = C64::imag(-t / f64::powi(2.0, squarings as i32));
    let mut a = [C64::ZERO; 81];
    for (x, &z) in a.iter_mut().zip(h.iter()) {
        *x = z * factor;
    }
    expm9(&a, squarings, out);
}

/// Degree-12 Paterson–Stockmeyer `exp` on 9×9 stack arrays; `a` is the
/// already-scaled generator, `squarings` undoes the scaling at the end.
fn expm9(a: &[C64; 81], squarings: u32, out: &mut [C64; 81]) {
    let c = &INV_FACTORIAL;
    let m = *a;
    let mut m2 = [C64::ZERO; 81];
    mul9_into(&m, &m, &mut m2);
    let mut m3 = [C64::ZERO; 81];
    mul9_into(&m2, &m, &mut m3);
    // Horner in M³, innermost group first: start from c₁₂·I.
    let mut sum = [C64::ZERO; 81];
    for i in 0..9 {
        sum[10 * i] = C64::real(c[12]);
    }
    let mut tmp = [C64::ZERO; 81];
    for j in (0..=3).rev() {
        mul9_into(&sum, &m3, &mut tmp);
        sum = tmp;
        for i in 0..81 {
            sum[i] += m[i] * C64::real(c[3 * j + 1]) + m2[i] * C64::real(c[3 * j + 2]);
        }
        for i in 0..9 {
            sum[10 * i] += C64::real(c[3 * j]);
        }
    }
    for _ in 0..squarings {
        mul9_into(&sum, &sum, &mut tmp);
        sum = tmp;
    }
    *out = sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::unitary_exp;
    use std::f64::consts::PI;

    fn pauli_x() -> CMat {
        CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    #[test]
    fn matches_eigendecomposition_route() {
        let h = pauli_x().scale(C64::real(0.5));
        let mut scratch = PropagatorScratch::new(2);
        let mut out = CMat::zeros(2, 2);
        for &t in &[0.0, 0.1, 0.45, PI, -2.7, 11.0] {
            scratch.unitary_exp_into(&h, t, &mut out);
            let reference = unitary_exp(&h, t);
            assert!(
                out.max_abs_diff(&reference) < 1e-11,
                "t = {t}: diff {}",
                out.max_abs_diff(&reference)
            );
            assert!(out.is_unitary(1e-11));
        }
    }

    #[test]
    fn hermitian_3x3_short_step() {
        // A transmon-like 3×3 Hamiltonian at the integrator's step size.
        let mut h = CMat::zeros(3, 3);
        h[(0, 1)] = C64::new(0.3, 0.1);
        h[(1, 0)] = C64::new(0.3, -0.1);
        h[(1, 2)] = C64::new(0.4, -0.2);
        h[(2, 1)] = C64::new(0.4, 0.2);
        h[(2, 2)] = C64::real(-1.5);
        let mut scratch = PropagatorScratch::new(3);
        let mut out = CMat::zeros(3, 3);
        scratch.unitary_exp_into(&h, 0.22, &mut out);
        let reference = unitary_exp(&h, 0.22);
        assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let h1 = pauli_x().scale(C64::real(0.5));
        let mut h2 = CMat::zeros(2, 2);
        h2[(0, 0)] = C64::real(1.0);
        h2[(1, 1)] = C64::real(-1.0);
        let mut scratch = PropagatorScratch::new(2);
        let mut out = CMat::zeros(2, 2);
        scratch.unitary_exp_into(&h1, 0.7, &mut out);
        let first = out.clone();
        scratch.unitary_exp_into(&h2, 1.3, &mut out);
        scratch.unitary_exp_into(&h1, 0.7, &mut out);
        assert!(out.max_abs_diff(&first) < 1e-15, "scratch leaked state");
    }

    #[test]
    fn stack_9x9_exponential_matches_heap_route() {
        // A CR-like Hermitian 9×9 generator: anharmonic diagonal plus
        // off-diagonal drive couplings, at both single-sample and
        // compressed-run (many-squaring) time steps.
        let mut h = CMat::zeros(9, 9);
        for i in 0..9 {
            h[(i, i)] = C64::real(-0.3 * (i as f64 - 4.0));
        }
        for i in 0..8 {
            h[(i, i + 1)] = C64::new(0.2, 0.05 * i as f64);
            h[(i + 1, i)] = h[(i, i + 1)].conj();
        }
        let mut scratch = PropagatorScratch::new(9);
        let mut heap = CMat::zeros(9, 9);
        let mut h9 = [C64::ZERO; 81];
        h9.copy_from_slice(h.as_slice());
        let mut stack = [C64::ZERO; 81];
        for &t in &[0.22, 1.0, 513.7] {
            scratch.unitary_exp_into(&h, t, &mut heap);
            unitary_exp9_into(&h9, t, &mut stack);
            let mut worst = 0.0f64;
            for (i, &z) in stack.iter().enumerate() {
                worst = worst.max((z - heap.as_slice()[i]).abs());
            }
            assert!(worst < 1e-11, "t = {t}: stack vs heap diff {worst:e}");
        }
    }

    #[test]
    fn stack_9x9_product_matches_generic() {
        let mut rng_state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = CMat::from_fn(9, 9, |_, _| C64::new(next(), next()));
        let b = CMat::from_fn(9, 9, |_, _| C64::new(next(), next()));
        let mut want = CMat::zeros(9, 9);
        a.mul_into(&b, &mut want);
        let mut a9 = [C64::ZERO; 81];
        a9.copy_from_slice(a.as_slice());
        let mut b9 = [C64::ZERO; 81];
        b9.copy_from_slice(b.as_slice());
        let mut got = [C64::ZERO; 81];
        mul9_into(&a9, &b9, &mut got);
        for (i, &z) in got.iter().enumerate() {
            assert!((z - want.as_slice()[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn general_exponential_matches_expm() {
        let mut nilp = CMat::zeros(2, 2);
        nilp[(0, 1)] = C64::ONE;
        let mut scratch = PropagatorScratch::new(2);
        let mut out = CMat::zeros(2, 2);
        scratch.expm_of_into(&nilp, &mut out);
        let mut expect = CMat::identity(2);
        expect[(0, 1)] = C64::ONE;
        assert!(out.max_abs_diff(&expect) < 1e-12);
    }
}
