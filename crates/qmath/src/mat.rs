//! Dense, row-major complex matrices.
//!
//! [`CMat`] is sized for quantum work: gate matrices (2×2 … 16×16), density
//! matrices up to a few dozen qubits' worth of 2ᴺ×2ᴺ entries, and the small
//! Hamiltonians integrated by the device simulator. Operations favour clarity
//! and numerical robustness over asymptotic cleverness.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix in row-major storage.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut m = CMat::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows in matrix literal");
            for (c, &v) in row.iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Builds a matrix from real-valued nested row slices.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        CMat::from_fn(rows.len(), cols, |r, c| C64::real(rows[r][c]))
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat::from_fn(self.rows, self.cols, |r, c| self[(r, c)].conj())
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: C64) -> CMat {
        CMat::from_fn(self.rows, self.cols, |r, c| self[(r, c)] * k)
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMat) -> CMat {
        let (p, q) = (other.rows, other.cols);
        CMat::from_fn(self.rows * p, self.cols * q, |r, c| {
            self[(r / p, c / q)] * other[(r % p, c % q)]
        })
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix-vector product into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, v: &[C64], out: &mut [C64]) {
        assert_eq!(self.cols, v.len(), "matrix-vector dimension mismatch");
        assert_eq!(self.rows, out.len(), "output length mismatch");
        for (row, o) in self.data.chunks_exact(self.cols).zip(out.iter_mut()) {
            let mut acc = C64::ZERO;
            for (&m, &x) in row.iter().zip(v) {
                acc += m * x;
            }
            *o = acc;
        }
    }

    /// Matrix product into a caller-provided buffer (no allocation).
    ///
    /// `out` is overwritten and must not alias `self` or `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_into(&self, rhs: &CMat, out: &mut CMat) {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.rows, self.rows, "output row mismatch");
        assert_eq!(out.cols, rhs.cols, "output column mismatch");
        // Fully unrolled 3×3 kernel: the qutrit propagator spends its whole
        // inner loop here, and keeping both operands in registers roughly
        // halves the per-product cost versus the generic row loop.
        if self.rows == 3 && self.cols == 3 && rhs.cols == 3 {
            let a = &self.data[..9];
            let b = &rhs.data[..9];
            let o = &mut out.data[..9];
            for r in 0..3 {
                let (a0, a1, a2) = (a[3 * r], a[3 * r + 1], a[3 * r + 2]);
                o[3 * r] = a0 * b[0] + a1 * b[3] + a2 * b[6];
                o[3 * r + 1] = a0 * b[1] + a1 * b[4] + a2 * b[7];
                o[3 * r + 2] = a0 * b[2] + a1 * b[5] + a2 * b[8];
            }
            return;
        }
        // Slice-based row iteration: the zip bounds are provable, so the
        // inner loop compiles without bounds checks and vectorizes.
        for (out_row, a_row) in out
            .data
            .chunks_exact_mut(rhs.cols)
            .zip(self.data.chunks_exact(self.cols))
        {
            out_row.fill(C64::ZERO);
            for (&a, rhs_row) in a_row.iter().zip(rhs.data.chunks_exact(rhs.cols)) {
                if a == C64::ZERO {
                    continue;
                }
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
            }
        }
    }

    /// Overwrites `self` with the entries of `other` (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, other: &CMat) {
        assert_eq!(self.rows, other.rows, "copy_from row mismatch");
        assert_eq!(self.cols, other.cols, "copy_from column mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Scales every entry in place.
    pub fn scale_assign(&mut self, k: C64) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// `self += k · other`, entry-wise, in place.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_scaled_assign(&mut self, other: &CMat, k: C64) {
        assert_eq!(self.rows, other.rows, "add_scaled_assign row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled_assign column mismatch");
        for (z, &o) in self.data.iter_mut().zip(&other.data) {
            *z += o * k;
        }
    }

    /// Zeroes every entry in place.
    pub fn set_zero(&mut self) {
        self.data.fill(C64::ZERO);
    }

    /// Overwrites `self` with the identity (square matrices only).
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity requires a square matrix");
        self.data.fill(C64::ZERO);
        for i in 0..self.rows {
            self.data[i * self.cols + i] = C64::ONE;
        }
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise distance to `other`.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns true when `‖A†A − I‖∞ ≤ tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.max_abs_diff(&CMat::identity(self.rows)) <= tol
    }

    /// Returns true when `‖A − A†‖∞ ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&self.dagger()) <= tol
    }

    /// Determinant by LU decomposition with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn det(&self) -> C64 {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = C64::ONE;
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below the diagonal.
            let (mut pivot_row, mut pivot_mag) = (k, a[(k, k)].abs());
            for r in (k + 1)..n {
                let mag = a[(r, k)].abs();
                if mag > pivot_mag {
                    pivot_row = r;
                    pivot_mag = mag;
                }
            }
            // opclint: allow(float-literal-eq): exact singularity test — a literally zero pivot column means det = 0
            if pivot_mag == 0.0 {
                return C64::ZERO;
            }
            if pivot_row != k {
                a.swap_rows(pivot_row, k);
                det = -det;
            }
            det *= a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / a[(k, k)];
                for c in k..n {
                    let sub = factor * a[(k, c)];
                    a[(r, c)] -= sub;
                }
            }
        }
        det
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` for singular (to working precision) systems.
    pub fn solve(&self, b: &[C64]) -> Option<Vec<C64>> {
        assert!(self.is_square(), "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            let (mut pivot_row, mut pivot_mag) = (k, a[(k, k)].abs());
            for r in (k + 1)..n {
                let mag = a[(r, k)].abs();
                if mag > pivot_mag {
                    pivot_row = r;
                    pivot_mag = mag;
                }
            }
            if pivot_mag < 1e-300 {
                return None;
            }
            if pivot_row != k {
                a.swap_rows(pivot_row, k);
                x.swap(pivot_row, k);
            }
            for r in (k + 1)..n {
                let factor = a[(r, k)] / a[(k, k)];
                for c in k..n {
                    let sub = factor * a[(k, c)];
                    a[(r, c)] -= sub;
                }
                let sub = factor * x[k];
                x[r] -= sub;
            }
        }
        for k in (0..n).rev() {
            let mut acc = x[k];
            for c in (k + 1)..n {
                acc -= a[(k, c)] * x[c];
            }
            x[k] = acc / a[(k, k)];
        }
        Some(x)
    }

    /// Matrix inverse via column-by-column solves.
    ///
    /// Returns `None` for singular matrices.
    pub fn inverse(&self) -> Option<CMat> {
        assert!(self.is_square(), "inverse of non-square matrix");
        let n = self.rows;
        let mut inv = CMat::zeros(n, n);
        for c in 0..n {
            let mut e = vec![C64::ZERO; n];
            e[c] = C64::ONE;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Some(inv)
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Removes any global phase by making the largest-modulus entry real
    /// and positive. Useful when comparing unitaries up to phase.
    pub fn normalize_global_phase(&self) -> CMat {
        let mut best = C64::ZERO;
        for &z in &self.data {
            if z.abs() > best.abs() {
                best = z;
            }
        }
        if best.abs() < 1e-300 {
            return self.clone();
        }
        let phase = C64::cis(-best.arg());
        self.scale(phase)
    }

    /// Distance to `other` ignoring a global phase difference:
    /// `min_φ ‖A − e^{iφ}B‖∞`, computed via phase alignment on the largest
    /// overlap.
    pub fn phase_invariant_diff(&self, other: &CMat) -> f64 {
        let overlap = (&self.dagger() * other).trace();
        if overlap.abs() < 1e-300 {
            return self.max_abs_diff(other);
        }
        let phase = C64::cis(-overlap.arg());
        self.max_abs_diff(&other.scale(phase))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for CMat {
    type Output = CMat;
    fn add(self, rhs: CMat) -> CMat {
        &self + &rhs
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMat::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub for CMat {
    type Output = CMat;
    fn sub(self, rhs: CMat) -> CMat {
        &self - &rhs
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMat::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Neg for CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(C64::real(-1.0))
    }
}

impl Mul for CMat {
    type Output = CMat;
    fn mul(self, rhs: CMat) -> CMat {
        &self * &rhs
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows, rhs.cols);
        self.mul_into(rhs, &mut out);
        out
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_y() -> CMat {
        CMat::from_rows(&[&[C64::ZERO, C64::imag(-1.0)], &[C64::imag(1.0), C64::ZERO]])
    }

    fn pauli_z() -> CMat {
        CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        let xy = &x * &y;
        assert!(xy.max_abs_diff(&z.scale(C64::I)) < 1e-12);
        // X² = I
        assert!((&x * &x).max_abs_diff(&CMat::identity(2)) < 1e-12);
        // Tr(X) = 0, Tr(I) = 2
        assert!(x.trace().abs() < 1e-12);
        assert!((CMat::identity(2).trace() - C64::real(2.0)).abs() < 1e-12);
    }

    #[test]
    fn unitarity_and_hermiticity_checks() {
        assert!(pauli_x().is_unitary(1e-12));
        assert!(pauli_x().is_hermitian(1e-12));
        let skew = CMat::from_real_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(!skew.is_unitary(1e-9));
        assert!(!skew.is_hermitian(1e-9));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let k = pauli_x().kron(&pauli_z());
        assert_eq!(k.rows(), 4);
        // (X⊗Z)[0,2] = X[0,1]·Z[0,0] = 1
        assert!(k[(0, 2)].approx_eq(C64::ONE, 1e-12));
        assert!(k[(1, 3)].approx_eq(C64::real(-1.0), 1e-12));
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn kron_mixed_product_law() {
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMat::identity(2);
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let lhs = &a.kron(&b) * &c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn determinant_and_inverse() {
        let m = CMat::from_rows(&[
            &[C64::new(2.0, 1.0), C64::new(0.0, -1.0)],
            &[C64::new(1.0, 0.0), C64::new(3.0, 2.0)],
        ]);
        let det = m.det();
        // det = (2+i)(3+2i) - (-i)(1) = 4+7i + i = 4 + 8i
        assert!(det.approx_eq(C64::new(4.0, 8.0), 1e-10));
        let inv = m.inverse().expect("invertible");
        assert!((&m * &inv).max_abs_diff(&CMat::identity(2)) < 1e-10);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = CMat::from_real_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.det().abs() < 1e-12);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn solve_linear_system() {
        let a = CMat::from_real_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let x_true = [C64::real(1.0), C64::real(-2.0), C64::real(0.5)];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("solvable");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(xi.approx_eq(*ti, 1e-10));
        }
    }

    #[test]
    fn dagger_reverses_products() {
        let a = pauli_x();
        let b = pauli_y();
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn phase_invariant_diff_ignores_global_phase() {
        let u = pauli_y();
        let v = u.scale(C64::cis(0.9));
        assert!(u.phase_invariant_diff(&v) < 1e-12);
        assert!(u.max_abs_diff(&v) > 0.1);
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let a = pauli_y();
        let v = [C64::new(0.6, 0.0), C64::new(0.0, 0.8)];
        let got = a.mul_vec(&v);
        assert!(got[0].approx_eq(C64::new(0.8, 0.0), 1e-12));
        assert!(got[1].approx_eq(C64::new(0.0, 0.6), 1e-12));
    }

    #[test]
    fn mul_into_matches_operator() {
        let a = pauli_x();
        let b = pauli_y();
        let expect = &a * &b;
        let mut out = CMat::zeros(2, 2);
        a.mul_into(&b, &mut out);
        assert!(out.max_abs_diff(&expect) < 1e-15);
        // Reuse of a dirty buffer must still give the same answer.
        a.mul_into(&b, &mut out);
        assert!(out.max_abs_diff(&expect) < 1e-15);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = pauli_y();
        let v = [C64::new(0.6, 0.0), C64::new(0.0, 0.8)];
        let mut out = [C64::ONE; 2];
        a.mul_vec_into(&v, &mut out);
        for (got, want) in out.iter().zip(a.mul_vec(&v)) {
            assert!(got.approx_eq(want, 1e-15));
        }
    }

    #[test]
    fn in_place_helpers() {
        let mut m = CMat::zeros(2, 2);
        m.set_identity();
        assert!(m.max_abs_diff(&CMat::identity(2)) < 1e-15);
        m.add_scaled_assign(&pauli_z(), C64::real(2.0));
        // I + 2Z = diag(3, -1).
        assert!(m[(0, 0)].approx_eq(C64::real(3.0), 1e-15));
        assert!(m[(1, 1)].approx_eq(C64::real(-1.0), 1e-15));
        m.scale_assign(C64::imag(1.0));
        assert!(m[(0, 0)].approx_eq(C64::imag(3.0), 1e-15));
        let snapshot = m.clone();
        m.set_zero();
        assert!(m.frobenius_norm() < 1e-15);
        m.copy_from(&snapshot);
        assert!(m.max_abs_diff(&snapshot) < 1e-15);
    }
}
