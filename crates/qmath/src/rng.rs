//! Seeded randomness helpers shared across the workspace.
//!
//! Every stochastic component (shot sampling, calibration drift, RB sequence
//! generation) takes an explicit RNG so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives the seed of an independent per-task RNG stream from a root seed
/// and a task index.
///
/// Parallel fan-outs (per-qubit calibration tasks, sweep points) give every
/// task its own stream, `seeded(stream_seed(root, index))`, so results are
/// bit-identical at any thread count: the stream a task draws from depends
/// only on its index, never on which worker ran it or in what order. The
/// mixing is a SplitMix64 finalizer over `root ^ index·φ64` (the 64-bit
/// golden-ratio increment), so adjacent indices — which differ in a couple
/// of low bits — land on statistically unrelated seeds instead of the
/// correlated key-space a plain `root ^ index` would produce.
pub fn stream_seed(root: u64, index: u64) -> u64 {
    let mut z = root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one sample from a normal distribution `N(mu, sigma²)` with the
/// Box–Muller transform (we avoid the `rand_distr` dependency).
pub fn normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    // Rejection-free polar Box–Muller.
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return mu + sigma * u * factor;
        }
    }
}

/// Draws one sample from an index-weighted categorical distribution.
///
/// `weights` need not be normalized but must be non-negative with a positive
/// sum.
pub fn categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "categorical weights must have positive finite sum (got {total})"
    );
    let mut draw = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

/// Samples `shots` draws from a probability distribution over outcome
/// indices, returning outcome counts. `probs` is renormalized defensively.
pub fn sample_counts(rng: &mut impl Rng, probs: &[f64], shots: usize) -> Vec<u64> {
    let mut counts = vec![0u64; probs.len()];
    for _ in 0..shots {
        counts[categorical(rng, probs)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn stream_seeds_are_deterministic_and_spread() {
        assert_eq!(stream_seed(42, 3), stream_seed(42, 3));
        // Adjacent indices and adjacent roots must land far apart — the
        // finalizer avalanches, so no two of these collide.
        let mut seen = std::collections::HashSet::new();
        for root in [0u64, 1, 42, u64::MAX] {
            for index in 0..32u64 {
                assert!(seen.insert(stream_seed(root, index)));
            }
        }
        // Streams from adjacent indices are unrelated, not shifted copies.
        let mut a = seeded(stream_seed(7, 0));
        let mut b = seeded(stream_seed(7, 1));
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = seeded(11);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0u64; 4];
        for _ in 0..100_000 {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        let ratio = counts[3] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn sample_counts_totals() {
        let mut rng = seeded(3);
        let counts = sample_counts(&mut rng, &[0.25, 0.75], 10_000);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        assert!((counts[1] as f64 / 10_000.0 - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn categorical_rejects_zero_weights() {
        let mut rng = seeded(1);
        categorical(&mut rng, &[0.0, 0.0]);
    }
}
