//! Numerical substrate for the OpenPulse-compilation reproduction.
//!
//! Everything the rest of the workspace needs and nothing more: complex
//! numbers, dense complex matrices, Hermitian eigendecomposition and matrix
//! exponentials, polynomial root finding (for Weyl-chamber analysis),
//! derivative-free optimizers (Nelder–Mead and a COBYLA-style method, used
//! for gate-decomposition searches and variational algorithm loops),
//! least-squares curve fitting, and seeded randomness helpers.
//!
//! # Example
//!
//! ```
//! use quant_math::{C64, CMat, unitary_exp};
//!
//! // Rx(π) = exp(-i·π·X/2) is the X gate up to phase.
//! let x = CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let rx_pi = unitary_exp(&x.scale(C64::real(0.5)), std::f64::consts::PI);
//! assert!(rx_pi.phase_invariant_diff(&x) < 1e-9);
//! ```

#![warn(missing_docs)]

mod complex;
mod eig;
mod fit;
mod mat;
mod optimize;
mod poly;
mod prop;
mod rng;

pub use complex::C64;
pub use eig::{eigh, expm, unitary_exp, HermitianEig};
pub use fit::{fit_cosine, fit_exp_decay, linear_least_squares, CosineFit, ExpDecayFit};
pub use mat::CMat;
pub use optimize::{
    cobyla_lite, nelder_mead, nelder_mead_multistart, CobylaOptions, Constraint, NelderMeadOptions,
    OptimizeResult,
};
pub use poly::{characteristic_polynomial, durand_kerner, eigenvalues};
pub use prop::{mul9_into, unitary_exp9_into, PropagatorScratch};
pub use rng::{categorical, normal, sample_counts, seeded, stream_seed};
