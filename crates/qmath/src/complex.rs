//! A small, dependency-free double-precision complex number type.
//!
//! The whole workspace is built on [`C64`]. It mirrors the subset of
//! `num_complex::Complex64` that quantum simulation needs: arithmetic with
//! both complex and real operands, polar form, exponentials, and conjugation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        C64 { re: 0.0, im }
    }

    /// Creates a complex number from polar form `r * e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`C64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Principal natural logarithm.
    pub fn ln(self) -> Self {
        C64::new(self.abs().ln(), self.arg())
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return C64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = C64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns true when `|self - other|` is at most `tol`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        rhs + self
    }
}

impl Sub<C64> for f64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs * self
    }
}

impl Div<C64> for f64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        C64::real(self) / rhs
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert!((z + C64::ZERO).approx_eq(z, TOL));
        assert!((z * C64::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(C64::ZERO, TOL));
        assert!((z / z).approx_eq(C64::ONE, TOL));
        assert!((z * z.inv()).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = C64::new(3.0, -4.0);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, 1.1);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 1.1).abs() < TOL);
    }

    #[test]
    fn euler_identity() {
        let z = C64::cis(std::f64::consts::PI);
        assert!(z.approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = C64::new(0.3, -0.7);
        assert!(z.exp().ln().approx_eq(z, 1e-10));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-1.5, 2.5);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-10));
    }

    #[test]
    fn integer_powers() {
        let z = C64::new(1.2, -0.4);
        assert!(z.powi(0).approx_eq(C64::ONE, TOL));
        assert!(z.powi(3).approx_eq(z * z * z, 1e-10));
        assert!(z.powi(-2).approx_eq((z * z).inv(), 1e-10));
    }

    #[test]
    fn mixed_real_ops() {
        let z = C64::new(1.0, 2.0);
        assert!((2.0 * z).approx_eq(C64::new(2.0, 4.0), TOL));
        assert!((z + 1.0).approx_eq(C64::new(2.0, 2.0), TOL));
        assert!((1.0 - z).approx_eq(C64::new(0.0, -2.0), TOL));
        assert!((4.0 / C64::new(2.0, 0.0)).approx_eq(C64::real(2.0), TOL));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(C64::new(6.0, 4.0), TOL));
    }
}
