//! Least-squares curve fitting for the characterization experiments.
//!
//! * Linear least squares (normal equations) for basis-function models.
//! * Exponential decay `y = a·fᵏ + b` for randomized benchmarking (Fig. 13).
//! * Cosine fits for Rabi calibration amplitude sweeps.

use crate::complex::C64;
use crate::mat::CMat;

/// Solves the linear least-squares problem `min ‖X β − y‖²` via the normal
/// equations. `x[i]` is the i-th row of the design matrix.
///
/// Returns `None` when the normal matrix is singular.
pub fn linear_least_squares(x: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(x.len(), y.len(), "design/observation length mismatch");
    assert!(!x.is_empty(), "empty least-squares problem");
    let p = x[0].len();
    // Normal matrix XᵀX and XᵀY assembled as a complex system (imag = 0).
    let mut xtx = CMat::zeros(p, p);
    let mut xty = vec![C64::ZERO; p];
    for (row, &yi) in x.iter().zip(y) {
        assert_eq!(row.len(), p, "ragged design matrix");
        for a in 0..p {
            for b in 0..p {
                xtx[(a, b)] += C64::real(row[a] * row[b]);
            }
            xty[a] += C64::real(row[a] * yi);
        }
    }
    let beta = xtx.solve(&xty)?;
    Some(beta.into_iter().map(|z| z.re).collect())
}

/// Result of an exponential-decay fit `y = a·fᵏ + b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpDecayFit {
    /// Amplitude.
    pub a: f64,
    /// Decay base per step — interpreted as gate fidelity in randomized
    /// benchmarking.
    pub f: f64,
    /// Offset (SPAM floor in RB).
    pub b: f64,
    /// Residual sum of squares.
    pub rss: f64,
}

/// Fits `y = a·fᵏ + b` to `(k, y)` samples.
///
/// For fixed `f` the model is linear in `(a, b)`, so we grid-scan `f` over
/// `(0, 1)` and polish the winner with a golden-section refinement.
pub fn fit_exp_decay(ks: &[f64], ys: &[f64]) -> ExpDecayFit {
    assert_eq!(ks.len(), ys.len());
    assert!(
        ks.len() >= 3,
        "need at least 3 points for a 3-parameter fit"
    );

    let eval = |f: f64| -> (f64, f64, f64) {
        // Linear LS for a, b given f.
        let design: Vec<Vec<f64>> = ks.iter().map(|&k| vec![f.powf(k), 1.0]).collect();
        let beta = linear_least_squares(&design, ys).unwrap_or_else(|| vec![0.0, 0.0]);
        let (a, b) = (beta[0], beta[1]);
        let mut rss: f64 = ks
            .iter()
            .zip(ys)
            .map(|(&k, &y)| {
                let model = a * f.powf(k) + b;
                (y - model).powi(2)
            })
            .sum();
        // The model describes survival probabilities: penalize unphysical
        // amplitude/offset pairs (the a→∞, b→−∞ degeneracy at f→1).
        if !(0.0..=1.5).contains(&a) || !(-0.5..=1.5).contains(&b) {
            rss += 1e3;
        }
        (a, b, rss)
    };

    // Coarse grid: linear over (0, 1) for strong decays, plus a log-spaced
    // refinement near 1 (f = 1 − 10^{−x}) — randomized-benchmarking decays
    // with per-gate error ≪ 1 are hopelessly ill-conditioned on a linear
    // grid alone.
    let mut best_f = 0.5;
    let mut best_rss = f64::INFINITY;
    for i in 1..1000 {
        let f = i as f64 / 1000.0;
        let (_, _, rss) = eval(f);
        if rss < best_rss {
            best_rss = rss;
            best_f = f;
        }
    }
    for i in 0..=400 {
        let x = 0.3 + 4.7 * i as f64 / 400.0;
        let f = 1.0 - 10.0_f64.powf(-x);
        let (_, _, rss) = eval(f);
        if rss < best_rss {
            best_rss = rss;
            best_f = f;
        }
    }
    // Golden-section polish in log(1−f) space around the winner.
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let x0 = -(1.0 - best_f).log10();
    let (mut lo, mut hi) = (x0 - 0.05, x0 + 0.05);
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        let f1 = 1.0 - 10.0_f64.powf(-m1);
        let f2 = 1.0 - 10.0_f64.powf(-m2);
        if eval(f1).2 < eval(f2).2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let f = 1.0 - 10.0_f64.powf(-(lo + hi) / 2.0);
    let (a, b, rss) = eval(f);
    ExpDecayFit { a, f, b, rss }
}

/// Result of a cosine fit `y = amp·cos(2π·x/period + phase) + offset`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CosineFit {
    /// Oscillation amplitude.
    pub amp: f64,
    /// Period in the units of `x`.
    pub period: f64,
    /// Phase offset in radians.
    pub phase: f64,
    /// Vertical offset.
    pub offset: f64,
    /// Residual sum of squares.
    pub rss: f64,
}

/// Fits a cosine to `(x, y)` samples; the model is the textbook Rabi
/// oscillation shape. For a fixed period the model is linear in
/// `(A·cos φ, −A·sin φ, offset)`, so we scan candidate periods and solve the
/// rest by linear least squares.
pub fn fit_cosine(xs: &[f64], ys: &[f64], period_range: (f64, f64)) -> CosineFit {
    assert_eq!(xs.len(), ys.len());
    assert!(
        xs.len() >= 4,
        "need at least 4 points for a 4-parameter fit"
    );
    let (pmin, pmax) = period_range;
    assert!(pmin > 0.0 && pmax > pmin, "invalid period range");

    let eval = |period: f64| -> (f64, f64, f64, f64) {
        let w = std::f64::consts::TAU / period;
        let design: Vec<Vec<f64>> = xs
            .iter()
            .map(|&x| vec![(w * x).cos(), (w * x).sin(), 1.0])
            .collect();
        let beta = linear_least_squares(&design, ys).unwrap_or_else(|| vec![0.0, 0.0, 0.0]);
        let (c, s, offset) = (beta[0], beta[1], beta[2]);
        let rss: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (y - (c * (w * x).cos() + s * (w * x).sin() + offset)).powi(2))
            .sum();
        let amp = c.hypot(s);
        let phase = (-s).atan2(c);
        (amp, phase, offset, rss)
    };

    let mut best = (pmin, f64::INFINITY);
    for i in 0..=2000 {
        let period = pmin + (pmax - pmin) * i as f64 / 2000.0;
        let (_, _, _, rss) = eval(period);
        if rss < best.1 {
            best = (period, rss);
        }
    }
    // Golden-section polish.
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let span = (pmax - pmin) / 2000.0;
    let (mut lo, mut hi) = ((best.0 - span).max(pmin), (best.0 + span).min(pmax));
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if eval(m1).3 < eval(m2).3 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let period = (lo + hi) / 2.0;
    let (amp, phase, offset, rss) = eval(period);
    CosineFit {
        amp,
        period,
        phase,
        offset,
        rss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn linear_ls_exact_line() {
        // y = 2x + 1
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let beta = linear_least_squares(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn linear_ls_overdetermined_noisy() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| 3.0 * i as f64 - 4.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let beta = linear_least_squares(&x, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-2);
        assert!((beta[1] + 4.0).abs() < 0.2);
    }

    #[test]
    fn exp_decay_recovers_parameters() {
        // Classic RB shape: a = 0.48, f = 0.9982, b = 0.51
        let ks: Vec<f64> = (2..=25).map(|k| k as f64).collect();
        let ys: Vec<f64> = ks
            .iter()
            .map(|&k| 0.48 * 0.9982_f64.powf(k) + 0.51)
            .collect();
        let fit = fit_exp_decay(&ks, &ys);
        assert!((fit.f - 0.9982).abs() < 1e-4, "f = {}", fit.f);
        assert!((fit.a - 0.48).abs() < 1e-2, "a = {}", fit.a);
        assert!((fit.b - 0.51).abs() < 1e-2, "b = {}", fit.b);
        assert!(fit.rss < 1e-8);
    }

    #[test]
    fn exp_decay_with_noise_is_close() {
        let ks: Vec<f64> = (1..=30).map(|k| k as f64).collect();
        let ys: Vec<f64> = ks
            .iter()
            .enumerate()
            .map(|(i, &k)| 0.5 * 0.97_f64.powf(k) + 0.5 + if i % 2 == 0 { 2e-3 } else { -2e-3 })
            .collect();
        let fit = fit_exp_decay(&ks, &ys);
        assert!((fit.f - 0.97).abs() < 5e-3, "f = {}", fit.f);
    }

    #[test]
    fn cosine_fit_recovers_rabi_curve() {
        // P(amp) = 0.5·cos(2π·amp/0.4 + π) + 0.5 — π-pulse at amp 0.2.
        let xs: Vec<f64> = (0..60).map(|i| i as f64 * 0.01).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 0.5 * (TAU * x / 0.4 + std::f64::consts::PI).cos() + 0.5)
            .collect();
        let fit = fit_cosine(&xs, &ys, (0.1, 1.0));
        assert!((fit.period - 0.4).abs() < 1e-3, "period = {}", fit.period);
        assert!((fit.amp - 0.5).abs() < 1e-3, "amp = {}", fit.amp);
        assert!((fit.offset - 0.5).abs() < 1e-3, "offset = {}", fit.offset);
    }
}
