//! Eigendecomposition of Hermitian matrices by the complex Jacobi method,
//! and matrix exponentials of (anti-)Hermitian generators built on top of it.

use crate::complex::C64;
use crate::mat::CMat;

/// Eigendecomposition `H = V · diag(λ) · V†` of a Hermitian matrix.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMat,
}

/// Diagonalizes a Hermitian matrix with cyclic complex Jacobi rotations.
///
/// # Panics
///
/// Panics when `h` is not square or not Hermitian to `1e-8`.
pub fn eigh(h: &CMat) -> HermitianEig {
    assert!(h.is_square(), "eigh requires a square matrix");
    assert!(
        h.is_hermitian(1e-8),
        "eigh requires a Hermitian matrix (‖H−H†‖ = {:.3e})",
        h.max_abs_diff(&h.dagger())
    );
    let n = h.rows();
    let mut a = h.clone();
    let mut v = CMat::identity(n);

    // Cyclic sweeps until all off-diagonal mass is annihilated.
    for _sweep in 0..100 {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + a.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Unitary 2×2 rotation that zeroes A[p,q].
                // Write A[p,q] = |apq| e^{iφ}; with the phase absorbed the
                // problem reduces to a real Jacobi rotation.
                let phi = apq.arg();
                let app = a[(p, p)].re;
                let aqq = a[(q, q)].re;
                let tau = (aqq - app) / (2.0 * apq.abs());
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotation columns: |p'> = c|p> - s e^{-iφ}|q>, |q'> = s e^{iφ}|p> + c|q>
                let e_pos = C64::cis(phi);
                let e_neg = C64::cis(-phi);

                // Update A = J† A J.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = akp * c - akq * e_neg * s;
                    a[(k, q)] = akp * e_pos * s + akq * c;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = apk * c - aqk * e_pos * s;
                    a[(q, k)] = apk * e_neg * s + aqk * c;
                }
                // Accumulate eigenvectors V = V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * c - vkq * e_neg * s;
                    v[(k, q)] = vkp * e_pos * s + vkq * c;
                }
            }
        }
    }

    // Sort ascending by eigenvalue, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[(i, i)].re.total_cmp(&a[(j, j)].re));
    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)].re).collect();
    let vectors = CMat::from_fn(n, n, |r, c| v[(r, order[c])]);
    HermitianEig { values, vectors }
}

/// Computes the unitary `exp(-i H t)` for Hermitian `H`.
///
/// This is the workhorse of the pulse-level device simulator: each sample of
/// a pulse schedule contributes one short-time propagator.
pub fn unitary_exp(h: &CMat, t: f64) -> CMat {
    let eig = eigh(h);
    let phases: Vec<C64> = eig
        .values
        .iter()
        .map(|&lambda| C64::cis(-lambda * t))
        .collect();
    let d = CMat::diag(&phases);
    &(&eig.vectors * &d) * &eig.vectors.dagger()
}

/// Computes `exp(A)` for a general square matrix by scaling and squaring
/// with a truncated Taylor series. Accurate for the modest norms seen in
/// short-time propagators; not intended for stiff problems.
pub fn expm(a: &CMat) -> CMat {
    assert!(a.is_square(), "expm requires a square matrix");
    let mut scratch = crate::prop::PropagatorScratch::new(a.rows());
    let mut out = CMat::zeros(a.rows(), a.cols());
    scratch.expm_of_into(a, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn pauli_x() -> CMat {
        CMat::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_z() -> CMat {
        CMat::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn eigh_pauli_z() {
        let eig = eigh(&pauli_z());
        assert!((eig.values[0] + 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        assert!(eig.vectors.is_unitary(1e-10));
    }

    #[test]
    fn eigh_reconstructs_matrix() {
        // Random-ish 4x4 Hermitian matrix.
        let mut h = CMat::zeros(4, 4);
        let vals = [
            (0, 0, 1.0, 0.0),
            (1, 1, -0.5, 0.0),
            (2, 2, 2.0, 0.0),
            (3, 3, 0.25, 0.0),
            (0, 1, 0.3, 0.7),
            (0, 2, -0.2, 0.1),
            (1, 3, 0.6, -0.4),
            (2, 3, 0.05, 0.9),
        ];
        for &(r, c, re, im) in &vals {
            h[(r, c)] = C64::new(re, im);
            if r != c {
                h[(c, r)] = C64::new(re, -im);
            }
        }
        let eig = eigh(&h);
        let lambda: Vec<C64> = eig.values.iter().map(|&v| C64::real(v)).collect();
        let recon = &(&eig.vectors * &CMat::diag(&lambda)) * &eig.vectors.dagger();
        assert!(recon.max_abs_diff(&h) < 1e-9);
        // Eigenvalues ascending.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn unitary_exp_rotation() {
        // exp(-i X π/2 / 1) with H = X/2 scaled: Rx(θ) = exp(-i θ X / 2).
        let h = pauli_x().scale(C64::real(0.5));
        let u = unitary_exp(&h, PI);
        // Rx(π) = -i X.
        let expect = pauli_x().scale(C64::imag(-1.0));
        assert!(u.max_abs_diff(&expect) < 1e-9);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn unitary_exp_identity_at_zero_time() {
        let h = pauli_x();
        let u = unitary_exp(&h, 0.0);
        assert!(u.max_abs_diff(&CMat::identity(2)) < 1e-12);
    }

    #[test]
    fn expm_matches_unitary_exp() {
        let h = pauli_x().scale(C64::real(0.5));
        let a = h.scale(C64::imag(-1.3)); // -i·1.3·H
        let via_taylor = expm(&a);
        let via_eig = unitary_exp(&h, 1.3);
        assert!(via_taylor.max_abs_diff(&via_eig) < 1e-9);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = CMat::zeros(3, 3);
        assert!(expm(&z).max_abs_diff(&CMat::identity(3)) < 1e-12);
    }

    #[test]
    fn expm_nilpotent() {
        // N = [[0,1],[0,0]] → exp(N) = I + N exactly.
        let mut n = CMat::zeros(2, 2);
        n[(0, 1)] = C64::ONE;
        let e = expm(&n);
        let mut expect = CMat::identity(2);
        expect[(0, 1)] = C64::ONE;
        assert!(e.max_abs_diff(&expect) < 1e-12);
    }
}
