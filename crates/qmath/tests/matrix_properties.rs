//! Randomized property tests of the linear-algebra substrate.
//!
//! Seeded-loop style (the environment is offline, so no proptest): each
//! test draws a fixed number of random cases from a deterministic RNG and
//! asserts the same invariants the original property suite checked.

use quant_math::{eigh, seeded, unitary_exp, CMat, C64};
use rand::Rng;

const CASES: usize = 64;

fn rand_c64(rng: &mut impl Rng) -> C64 {
    C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
}

fn rand_matrix(rng: &mut impl Rng, n: usize) -> CMat {
    let entries: Vec<C64> = (0..n * n).map(|_| rand_c64(rng)).collect();
    CMat::from_fn(n, n, |r, c| entries[r * n + c])
}

fn rand_hermitian(rng: &mut impl Rng, n: usize) -> CMat {
    let m = rand_matrix(rng, n);
    let dag = m.dagger();
    (&m + &dag).scale(C64::real(0.5))
}

#[test]
fn complex_field_axioms() {
    let mut rng = seeded(0x11);
    for _ in 0..CASES {
        let (a, b, c) = (rand_c64(&mut rng), rand_c64(&mut rng), rand_c64(&mut rng));
        assert!(((a + b) + c).approx_eq(a + (b + c), 1e-12));
        assert!((a * b).approx_eq(b * a, 1e-12));
        assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-10));
        assert!((a.conj().conj()).approx_eq(a, 1e-15));
        assert!(((a * b).conj()).approx_eq(a.conj() * b.conj(), 1e-12));
    }
}

#[test]
fn matrix_product_associativity() {
    let mut rng = seeded(0x12);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 3);
        let b = rand_matrix(&mut rng, 3);
        let c = rand_matrix(&mut rng, 3);
        let lhs = &(&a * &b) * &c;
        let rhs = &a * &(&b * &c);
        assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}

#[test]
fn dagger_antihomomorphism() {
    let mut rng = seeded(0x13);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 3);
        let b = rand_matrix(&mut rng, 3);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }
}

#[test]
fn kron_mixed_product() {
    let mut rng = seeded(0x14);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 2);
        let b = rand_matrix(&mut rng, 2);
        let c = rand_matrix(&mut rng, 2);
        let d = rand_matrix(&mut rng, 2);
        let lhs = &a.kron(&b) * &c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}

#[test]
fn eigh_reconstructs() {
    let mut rng = seeded(0x15);
    for _ in 0..CASES {
        let h = rand_hermitian(&mut rng, 4);
        let eig = eigh(&h);
        let lambda: Vec<C64> = eig.values.iter().map(|&v| C64::real(v)).collect();
        let recon = &(&eig.vectors * &CMat::diag(&lambda)) * &eig.vectors.dagger();
        assert!(recon.max_abs_diff(&h) < 1e-7);
        assert!(eig.vectors.is_unitary(1e-7));
        // Eigenvalues sorted ascending.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-10);
        }
    }
}

#[test]
fn unitary_exp_is_unitary_and_composes() {
    let mut rng = seeded(0x16);
    for _ in 0..CASES {
        let h = rand_hermitian(&mut rng, 3);
        let t1 = rng.gen_range(-2.0..2.0);
        let t2 = rng.gen_range(-2.0..2.0);
        let u1 = unitary_exp(&h, t1);
        let u2 = unitary_exp(&h, t2);
        let u12 = unitary_exp(&h, t1 + t2);
        assert!(u1.is_unitary(1e-8));
        assert!((&u1 * &u2).max_abs_diff(&u12) < 1e-7, "exp(-iHt) group law");
    }
}

#[test]
fn solve_then_multiply_round_trips() {
    let mut rng = seeded(0x17);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 3);
        let x: Vec<C64> = (0..3).map(|_| rand_c64(&mut rng)).collect();
        // Skip near-singular draws.
        if a.det().abs() > 0.1 {
            let b = a.mul_vec(&x);
            let solved = a.solve(&b).expect("well-conditioned");
            for (got, want) in solved.iter().zip(&x) {
                assert!(got.approx_eq(*want, 1e-6));
            }
        }
    }
}

#[test]
fn inverse_is_two_sided() {
    let mut rng = seeded(0x18);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 3);
        if a.det().abs() > 0.1 {
            let inv = a.inverse().expect("well-conditioned");
            assert!((&a * &inv).max_abs_diff(&CMat::identity(3)) < 1e-7);
            assert!((&inv * &a).max_abs_diff(&CMat::identity(3)) < 1e-7);
        }
    }
}

#[test]
fn trace_is_similarity_invariant() {
    let mut rng = seeded(0x19);
    for _ in 0..CASES {
        let a = rand_matrix(&mut rng, 3);
        let h = rand_hermitian(&mut rng, 3);
        let u = unitary_exp(&h, 1.0);
        let conj = &(&u * &a) * &u.dagger();
        assert!((a.trace() - conj.trace()).abs() < 1e-8);
    }
}
