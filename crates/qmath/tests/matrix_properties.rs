//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use quant_math::{eigh, unitary_exp, C64, CMat};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-1.0..1.0f64, -1.0..1.0f64).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_matrix(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(arb_c64(), n * n).prop_map(move |v| {
        CMat::from_fn(n, n, |r, c| v[r * n + c])
    })
}

fn arb_hermitian(n: usize) -> impl Strategy<Value = CMat> {
    arb_matrix(n).prop_map(|m| {
        let dag = m.dagger();
        (&m + &dag).scale(C64::real(0.5))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        prop_assert!(((a + b) + c).approx_eq(a + (b + c), 1e-12));
        prop_assert!((a * b).approx_eq(b * a, 1e-12));
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-10));
        prop_assert!((a.conj().conj()).approx_eq(a, 1e-15));
        prop_assert!(((a * b).conj()).approx_eq(a.conj() * b.conj(), 1e-12));
    }

    #[test]
    fn matrix_product_associativity(
        a in arb_matrix(3), b in arb_matrix(3), c in arb_matrix(3)
    ) {
        let lhs = &(&a * &b) * &c;
        let rhs = &a * &(&b * &c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn dagger_antihomomorphism(a in arb_matrix(3), b in arb_matrix(3)) {
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn kron_mixed_product(a in arb_matrix(2), b in arb_matrix(2),
                          c in arb_matrix(2), d in arb_matrix(2)) {
        let lhs = &a.kron(&b) * &c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn eigh_reconstructs(h in arb_hermitian(4)) {
        let eig = eigh(&h);
        let lambda: Vec<C64> = eig.values.iter().map(|&v| C64::real(v)).collect();
        let recon = &(&eig.vectors * &CMat::diag(&lambda)) * &eig.vectors.dagger();
        prop_assert!(recon.max_abs_diff(&h) < 1e-7);
        prop_assert!(eig.vectors.is_unitary(1e-7));
        // Eigenvalues sorted ascending.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn unitary_exp_is_unitary_and_composes(h in arb_hermitian(3),
                                           t1 in -2.0..2.0f64, t2 in -2.0..2.0f64) {
        let u1 = unitary_exp(&h, t1);
        let u2 = unitary_exp(&h, t2);
        let u12 = unitary_exp(&h, t1 + t2);
        prop_assert!(u1.is_unitary(1e-8));
        prop_assert!((&u1 * &u2).max_abs_diff(&u12) < 1e-7, "exp(-iHt) group law");
    }

    #[test]
    fn solve_then_multiply_round_trips(a in arb_matrix(3),
                                       x in proptest::collection::vec(arb_c64(), 3)) {
        // Skip near-singular draws.
        if a.det().abs() > 0.1 {
            let b = a.mul_vec(&x);
            let solved = a.solve(&b).expect("well-conditioned");
            for (got, want) in solved.iter().zip(&x) {
                prop_assert!(got.approx_eq(*want, 1e-6));
            }
        }
    }

    #[test]
    fn inverse_is_two_sided(a in arb_matrix(3)) {
        if a.det().abs() > 0.1 {
            let inv = a.inverse().expect("well-conditioned");
            prop_assert!((&a * &inv).max_abs_diff(&CMat::identity(3)) < 1e-7);
            prop_assert!((&inv * &a).max_abs_diff(&CMat::identity(3)) < 1e-7);
        }
    }

    #[test]
    fn trace_is_similarity_invariant(a in arb_matrix(3), h in arb_hermitian(3)) {
        let u = unitary_exp(&h, 1.0);
        let conj = &(&u * &a) * &u.dagger();
        prop_assert!((a.trace() - conj.trace()).abs() < 1e-8);
    }
}
