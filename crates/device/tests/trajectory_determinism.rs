//! Regression tests for the trajectory executor's determinism contract.
//!
//! The contract mirrors the shot engine's: one root `u64` plus a
//! `stream_seed(root, index)` RNG stream per trajectory means the returned
//! counts depend only on `(program, shots, root)` — **never** on the
//! thread count, and not on whether the stride-kernel fast path or the
//! retained reference path (skip-scan state-vector kernels, per-sample
//! pulse integration, clone-per-branch channel sampling) did the work.
//! These tests pin that down so a kernel or scheduler change cannot
//! silently reorder randomness, and check the ensemble still converges to
//! the exact density-matrix distribution.
//!
//! With gate fusion (`OPC_FUSION`) the same contract extends a third way:
//! the fused route replays a hoisted plan but spends every random draw at
//! the same program point with the same (to rounding) branch weights, so
//! its counts must match the unfused and reference routes bit-for-bit at
//! a fixed root too. CI runs this suite across the full
//! `OPC_FUSION={0,1} × OPC_THREADS={1,4}` matrix; the explicit fusion
//! test below pins all three routes against each other regardless of the
//! ambient knob.

use quant_device::{
    calibrate, Block, DeviceModel, ExecError, LoweredProgram, PulseExecutor, ShotPool,
    TrajectoryExecutor,
};
use quant_math::seeded;
use quant_pulse::Schedule;

/// An entangling line program on `n` qubits: X on qubit 0, then a CNOT
/// chain down the line — every 1Q, 2Q, relaxation and readout path runs.
fn line_program(device: &DeviceModel, n: u32) -> LoweredProgram {
    let mut rng = seeded(42);
    let cal = calibrate(device, &mut rng);
    let mut blocks = vec![Block::Gate1Q {
        qubit: 0,
        waveforms: vec![cal.qubit(0).rx180_waveform("x")],
    }];
    for q in 0..n - 1 {
        blocks.push(Block::Gate2Q {
            control: q,
            target: q + 1,
            schedule: cal.cmd_def().get("cx", &[q, q + 1]).unwrap().clone(),
        });
    }
    LoweredProgram {
        num_qubits: n,
        blocks,
        schedule: Schedule::new("line"),
    }
}

#[test]
fn counts_identical_across_thread_counts() {
    let mut rng = seeded(7);
    let device = DeviceModel::almaden_like(3, &mut rng);
    let program = line_program(&device, 3);
    let exec = TrajectoryExecutor::new(&device, 8);

    let root = 0xD1CE;
    let shots = 2000;
    let reference = exec
        .try_run_pooled(&program, shots, root, &ShotPool::new(1))
        .unwrap();
    assert_eq!(reference.iter().sum::<u64>(), shots as u64);
    for threads in [2, 4] {
        let counts = exec
            .try_run_pooled(&program, shots, root, &ShotPool::new(threads))
            .unwrap();
        assert_eq!(
            counts, reference,
            "{threads}-thread trajectory counts diverged from serial"
        );
    }
}

#[test]
fn kernel_path_reproduces_reference_counts_bit_identically() {
    // The fast path reassociates float arithmetic three ways — stride
    // kernels, in-place branch weighing, run-compressed 9×9 integration —
    // so amplitudes may differ from the reference route at the ulp level.
    // But every stochastic draw consumes the same RNG stream in the same
    // order, so at a fixed root the sampled counts must be bit-identical
    // (an outcome flip would need a uniform draw within ~1e-12 of a
    // branch/cdf boundary).
    let mut rng = seeded(23);
    let device = DeviceModel::almaden_like(3, &mut rng);
    let program = line_program(&device, 3);

    let fast = TrajectoryExecutor::new(&device, 6);
    let slow = TrajectoryExecutor::new(&device, 6).with_reference_path();
    for root in [1u64, 0xFEED, 0x5EED_CAFE] {
        let a = fast
            .try_run_pooled(&program, 1500, root, &ShotPool::new(4))
            .unwrap();
        let b = slow
            .try_run_pooled(&program, 1500, root, &ShotPool::new(1))
            .unwrap();
        assert_eq!(a, b, "kernel swap changed the counts at root {root:#x}");
    }
}

#[test]
fn fused_route_matches_unfused_and_reference_at_any_thread_count() {
    // The strongest form of the contract: at a fixed root, the fused
    // plan-replay route, the unfused per-gate route, and the reference
    // route must all return the same counts, and the fused route must not
    // care how many threads replay the plan. The program mixes 1Q gates,
    // a CNOT chain (block growth + merge + close) and an explicit idle
    // (a relaxation table entry no gate emits).
    let mut rng = seeded(47);
    let device = DeviceModel::almaden_like(4, &mut rng);
    let mut program = line_program(&device, 4);
    program.blocks.push(Block::Idle {
        qubit: 1,
        duration: 3_000,
    });

    let shots = 1800;
    for root in [0x00DD_5EED_u64, 0xFACE] {
        let fused = TrajectoryExecutor::new(&device, 6)
            .with_fusion(true)
            .try_run_pooled(&program, shots, root, &ShotPool::new(1))
            .unwrap();
        assert_eq!(fused.iter().sum::<u64>(), shots as u64);
        for threads in [2, 4] {
            let threaded = TrajectoryExecutor::new(&device, 6)
                .with_fusion(true)
                .try_run_pooled(&program, shots, root, &ShotPool::new(threads))
                .unwrap();
            assert_eq!(
                threaded, fused,
                "{threads}-thread fused counts diverged at root {root:#x}"
            );
        }
        let unfused = TrajectoryExecutor::new(&device, 6)
            .with_fusion(false)
            .try_run_pooled(&program, shots, root, &ShotPool::new(1))
            .unwrap();
        assert_eq!(
            fused, unfused,
            "fusion changed the counts at root {root:#x}"
        );
        let reference = TrajectoryExecutor::new(&device, 6)
            .with_reference_path()
            .try_run_pooled(&program, shots, root, &ShotPool::new(1))
            .unwrap();
        assert_eq!(
            fused, reference,
            "fused counts diverged from the reference path at root {root:#x}"
        );
    }
}

#[test]
fn uncoupled_pair_reported_as_error_not_panic() {
    let mut rng = seeded(31);
    let device = DeviceModel::almaden_like(3, &mut rng);
    let mut program = line_program(&device, 3);
    // Re-address the last CNOT to (0, 2) — not an edge of the line.
    if let Some(Block::Gate2Q {
        control, target, ..
    }) = program.blocks.last_mut()
    {
        *control = 0;
        *target = 2;
    }
    let exec = TrajectoryExecutor::new(&device, 4);
    let err = exec
        .try_run(&program, 100, &mut seeded(1))
        .expect_err("uncoupled pair must be an error");
    assert!(matches!(
        err,
        ExecError::UncoupledPair {
            control: 0,
            target: 2
        }
    ));
}

#[test]
fn ensemble_converges_to_density_matrix_distribution() {
    // Statistical cross-check against the exact density-matrix executor on
    // a register small enough for both: the 3-qubit entangling line. The
    // trajectory ensemble and the density path share no code on the state
    // side, so agreement here is an end-to-end physics check of the whole
    // fast path (integration, branch sampling, readout error).
    let mut rng = seeded(2);
    let device = DeviceModel::almaden_like(3, &mut rng);
    let program = line_program(&device, 3);

    let dm = PulseExecutor::new(&device).run(&program, &mut seeded(5));
    let traj = TrajectoryExecutor::new(&device, 128);
    let counts = traj.run(&program, 64_000, &mut seeded(6));
    let total: u64 = counts.iter().sum();
    assert_eq!(total, 64_000);
    for (i, (&c, &p)) in counts.iter().zip(&dm.probabilities).enumerate() {
        let freq = c as f64 / total as f64;
        assert!(
            (freq - p).abs() < 0.03,
            "outcome {i}: trajectory {freq:.3} vs density {p:.3}"
        );
    }
}
