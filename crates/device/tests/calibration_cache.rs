//! Determinism and cache-equivalence contracts of the parallel calibration
//! fast path: bit-identical results at any thread count, with or without
//! the probe cache, and across a snapshot save/load round trip.

use quant_device::cache::ProbeCache;
use quant_device::calibration::{Calibration, CalibrationOptions};
use quant_device::executor::ShotPool;
use quant_device::snapshot::{snapshot_key, CalStore};
use quant_device::DeviceModel;
use quant_math::seeded;

fn test_device() -> DeviceModel {
    DeviceModel::almaden_like(3, &mut seeded(21))
}

fn run(device: &DeviceModel, root: u64, store: &CalStore, pool: &ShotPool) -> Calibration {
    Calibration::run_seeded_with(
        device,
        &CalibrationOptions::default(),
        root,
        store,
        pool,
        &ProbeCache::with_enabled(true),
    )
}

#[test]
fn calibration_is_bit_identical_across_thread_counts() {
    let device = test_device();
    let store = CalStore::disabled();
    let serial = run(&device, 77, &store, &ShotPool::new(1));
    for threads in [2, 4] {
        let parallel = run(&device, 77, &store, &ShotPool::new(threads));
        assert_eq!(
            serial, parallel,
            "calibration diverged at {threads} threads"
        );
    }
}

#[test]
fn probe_cache_does_not_change_results() {
    let device = test_device();
    let pool = ShotPool::new(2);
    let opts = CalibrationOptions::default();
    let cached = Calibration::run_seeded_with(
        &device,
        &opts,
        5,
        &CalStore::disabled(),
        &pool,
        &ProbeCache::with_enabled(true),
    );
    let uncached = Calibration::run_seeded_with(
        &device,
        &opts,
        5,
        &CalStore::disabled(),
        &pool,
        &ProbeCache::with_enabled(false),
    );
    assert_eq!(cached, uncached);
}

#[test]
fn snapshot_round_trip_and_invalidation() {
    let dir = std::env::temp_dir().join(format!("opc-cal-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CalStore::at(&dir);
    let device = test_device();
    let opts = CalibrationOptions::default();
    let pool = ShotPool::new(2);

    let key = snapshot_key(&device, &opts, 9);
    assert!(store.load(key, &device).is_none(), "store starts empty");
    let computed = run(&device, 9, &store, &pool);
    let loaded = store.load(key, &device).expect("calibration was persisted");
    assert_eq!(
        computed, loaded,
        "round trip is bit-exact, cmd_def included"
    );

    // The warm path inside run_seeded_with returns the same thing.
    let warm = run(&device, 9, &store, &pool);
    assert_eq!(computed, warm);

    // Any input change retires the snapshot: different root, different
    // options, different device physics all map to different keys.
    assert_ne!(key, snapshot_key(&device, &opts, 10));
    let mut bigger = opts;
    bigger.shots *= 2;
    assert_ne!(key, snapshot_key(&device, &bigger, 9));
    let other = DeviceModel::almaden_like(3, &mut seeded(22));
    assert_ne!(key, snapshot_key(&other, &opts, 9));
    assert!(store
        .load(snapshot_key(&device, &opts, 10), &device)
        .is_none());

    // Execution-time drift redraws do NOT retire it: the daily tune-up
    // serves every drift age, as on hardware.
    let mut drifted = device.clone();
    drifted.redraw_drift(&mut seeded(1234));
    assert_eq!(key, snapshot_key(&drifted, &opts, 9));

    // A corrupted snapshot is a miss, not an error.
    let path = dir.join(format!("cal-{key:016x}.txt"));
    std::fs::write(&path, "opcal corrupted").unwrap();
    assert!(store.load(key, &device).is_none());
    let recomputed = run(&device, 9, &store, &pool);
    assert_eq!(computed, recomputed, "recompute after corruption matches");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_draws_one_root_from_caller_rng_on_hit_and_miss() {
    // `Calibration::run` must leave the caller's RNG in the same state
    // whether the snapshot store hit or missed, so downstream draws (e.g.
    // drift redraws, shot sampling) are unaffected by cache warmth.
    let dir = std::env::temp_dir().join(format!("opc-cal-root-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let device = DeviceModel::ideal(1);
    let opts = CalibrationOptions::default();

    // Miss path (fresh store), then hit path (warm store), via the
    // explicit entry point with identical roots.
    use rand::Rng;
    let mut rng_miss = seeded(31);
    let mut rng_hit = seeded(31);
    let store = CalStore::at(&dir);
    let root_a = rng_miss.gen::<u64>();
    let cold = Calibration::run_seeded_with(
        &device,
        &opts,
        root_a,
        &store,
        &ShotPool::new(1),
        &ProbeCache::with_enabled(true),
    );
    let root_b = rng_hit.gen::<u64>();
    assert_eq!(root_a, root_b);
    let warm = Calibration::run_seeded_with(
        &device,
        &opts,
        root_b,
        &store,
        &ShotPool::new(1),
        &ProbeCache::with_enabled(true),
    );
    assert_eq!(cold, warm);
    assert_eq!(rng_miss.gen::<u64>(), rng_hit.gen::<u64>());

    let _ = std::fs::remove_dir_all(&dir);
}
