//! Regression tests for the parallel shot engine's determinism contract
//! and the pulse cache's drift invalidation.
//!
//! The contract: with per-index RNG streams (`seeded(seed ^ index)`),
//! results are **bit-identical** across thread counts and across
//! cache-on/cache-off runs. These tests pin that down so a future
//! scheduler or cache change cannot silently reorder randomness.

use quant_device::{calibrate, Block, DeviceModel, LoweredProgram, PulseExecutor, ShotPool};
use quant_math::seeded;
use quant_pulse::Schedule;

/// An X-then-CNOT program on a 2-qubit device (exercises both the 1Q and
/// the 2Q integration paths, hence both cache key kinds).
fn bell_ish_program(device: &DeviceModel) -> LoweredProgram {
    let mut rng = seeded(42);
    let cal = calibrate(device, &mut rng);
    let cx = cal.cmd_def().get("cx", &[0, 1]).unwrap().clone();
    LoweredProgram {
        num_qubits: 2,
        blocks: vec![
            Block::Gate1Q {
                qubit: 0,
                waveforms: vec![cal.qubit(0).rx180_waveform("x")],
            },
            Block::Gate2Q {
                control: 0,
                target: 1,
                schedule: cx,
            },
        ],
        schedule: Schedule::new("bell-ish"),
    }
}

#[test]
fn counts_identical_across_thread_counts() {
    let mut rng = seeded(7);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let program = bell_ish_program(&device);
    let exec = PulseExecutor::new(&device);
    let out = exec.run(&program, &mut seeded(11));

    let seed = 0xD1CE;
    let shots = 5000;
    let reference = out.sample_counts_deterministic(seed, shots);
    assert_eq!(reference.iter().sum::<u64>(), shots as u64);
    for threads in [1, 2, 8] {
        let pool = ShotPool::new(threads);
        let counts = pool.sample_counts(&out.probabilities, shots, seed);
        assert_eq!(
            counts, reference,
            "{threads}-thread counts diverged from serial"
        );
    }
}

#[test]
fn sweep_results_identical_across_thread_counts() {
    let mut rng = seeded(9);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let program = bell_ish_program(&device);

    // Each sweep point is an independent noisy execution keyed by its
    // index; probabilities must agree bit-for-bit at every thread count.
    let sweep = |pool: &ShotPool| -> Vec<Vec<f64>> {
        pool.map_indices(6, |i| {
            let exec = PulseExecutor::new(&device);
            let mut rng = seeded(0xABCD ^ i as u64);
            exec.run(&program, &mut rng).probabilities
        })
    };
    let reference = sweep(&ShotPool::serial());
    for threads in [2, 8] {
        let probs = sweep(&ShotPool::new(threads));
        for (i, (a, b)) in reference.iter().zip(&probs).enumerate() {
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "sweep point {i} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn counts_identical_cache_on_and_off() {
    let mut rng = seeded(13);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let program = bell_ish_program(&device);

    let run_with_cache = |enabled: bool| -> (Vec<f64>, Vec<u64>) {
        device.set_pulse_cache_enabled(enabled);
        device.pulse_cache().invalidate();
        let exec = PulseExecutor::new(&device);
        // Two runs so the second can hit the cache when enabled.
        let _ = exec.run(&program, &mut seeded(21));
        let out = exec.run(&program, &mut seeded(21));
        (
            out.probabilities.clone(),
            out.sample_counts_deterministic(77, 4000),
        )
    };

    let (p_off, c_off) = run_with_cache(false);
    let (p_on, c_on) = run_with_cache(true);
    device.set_pulse_cache_enabled(true);
    assert!(
        p_off
            .iter()
            .zip(&p_on)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "cache changed the outcome distribution"
    );
    assert_eq!(c_off, c_on, "cache changed the sampled counts");
}

#[test]
fn cache_hits_repeated_noiseless_runs_and_drift_invalidates() {
    let mut rng = seeded(17);
    let mut device = DeviceModel::almaden_like(2, &mut rng);
    device.set_pulse_cache_enabled(true);
    let program = bell_ish_program(&device);
    let exec = PulseExecutor::noiseless(&device);

    // Noiseless runs replay bit-identical pulses: the second run must be
    // answered entirely from the cache.
    device.pulse_cache().reset_stats();
    let first = exec.run(&program, &mut seeded(31));
    let after_first = device.pulse_cache().stats();
    assert!(
        after_first.misses > 0,
        "first run should populate the cache"
    );
    assert_eq!(after_first.hits, 0);
    let second = exec.run(&program, &mut seeded(31));
    let after_second = device.pulse_cache().stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second noiseless run must not re-integrate"
    );
    assert_eq!(after_second.hits, after_first.misses);
    assert!(first
        .probabilities
        .iter()
        .zip(&second.probabilities)
        .all(|(a, b)| a.to_bits() == b.to_bits()));

    // Calibration drift mutates the execution-time physics: the cache is
    // flushed and the next run re-integrates against the new parameters.
    let before = device.pulse_cache().stats();
    assert!(before.entries > 0);
    device.redraw_drift(&mut seeded(99));
    let after_drift = device.pulse_cache().stats();
    assert_eq!(after_drift.entries, 0, "drift must flush the cache");
    assert_eq!(after_drift.generation, before.generation + 1);

    let exec = PulseExecutor::noiseless(&device);
    let third = exec.run(&program, &mut seeded(31));
    let stats = device.pulse_cache().stats();
    assert_eq!(
        stats.misses,
        after_drift.misses + after_first.misses,
        "post-drift run must re-integrate every pulse"
    );
    // And the physics actually changed — stale reuse would be invisible
    // otherwise.
    assert!(
        first
            .probabilities
            .iter()
            .zip(&third.probabilities)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "drift should perturb the outcome distribution"
    );
}

#[test]
fn kernel_path_reproduces_reference_counts_bit_identically() {
    // The stride kernels and the coalesced relaxation reassociate float
    // arithmetic, so probabilities may differ from the embed route at the
    // ulp level — but the sampled counts (categorical draws at a fixed
    // seed) must be bit-identical, and the distributions must agree to
    // simulation accuracy.
    let mut rng = seeded(23);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let program = bell_ish_program(&device);

    let fast = PulseExecutor::new(&device).run(&program, &mut seeded(55));
    let slow = PulseExecutor::new(&device)
        .with_reference_path()
        .run(&program, &mut seeded(55));

    for (a, b) in fast.probabilities.iter().zip(&slow.probabilities) {
        assert!((a - b).abs() < 1e-12, "kernel path drifted: {a} vs {b}");
    }
    let seed = 0xFEED;
    let shots = 20_000;
    assert_eq!(
        fast.sample_counts_deterministic(seed, shots),
        slow.sample_counts_deterministic(seed, shots),
        "kernel swap changed the sampled counts"
    );
    // The parallel pool agrees with both.
    assert_eq!(
        ShotPool::new(4).sample_counts(&fast.probabilities, shots, seed),
        slow.sample_counts_deterministic(seed, shots),
    );
}

#[test]
fn kernel_path_matches_reference_with_idles() {
    // Idle-heavy program: exercises the memoized coalesced relaxation on
    // repeated (qubit, duration) pairs against the per-stage reference.
    let mut rng = seeded(29);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let mut program = bell_ish_program(&device);
    for _ in 0..3 {
        program.blocks.push(Block::Idle {
            qubit: 0,
            duration: 4_800,
        });
        program.blocks.push(Block::Idle {
            qubit: 1,
            duration: 4_800,
        });
    }
    let fast = PulseExecutor::new(&device).run(&program, &mut seeded(61));
    let slow = PulseExecutor::new(&device)
        .with_reference_path()
        .run(&program, &mut seeded(61));
    for (a, b) in fast.probabilities.iter().zip(&slow.probabilities) {
        assert!(
            (a - b).abs() < 1e-12,
            "relax coalescing drifted: {a} vs {b}"
        );
    }
    assert_eq!(
        fast.sample_counts_deterministic(0xC0DE, 10_000),
        slow.sample_counts_deterministic(0xC0DE, 10_000),
    );
}
