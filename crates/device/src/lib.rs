//! The simulated quantum backend — the stand-in for IBM's Almaden and
//! Armonk devices that the paper ran on.
//!
//! Layers:
//!
//! * [`params`] — physical constants and Almaden/Armonk presets.
//! * [`transmon`] — 3-level driven-transmon pulse integration, including
//!   virtual-Z frames and the frequency-shifting that reaches the f12 and
//!   f02/2 qudit transitions.
//! * [`twoqubit`] — effective cross-resonance (ZX + spurious IX/ZI) pair
//!   integration; the physics behind the echoed-CR CNOT.
//! * [`calibration`] — the daily tune-up loop (Rabi, fine amplitude +
//!   Stark detuning, DRAG, CR width, phase corrections) that populates the
//!   backend's `cmd_def` pulse library.
//! * [`device`] — the backend façade with drift between calibration and
//!   execution time.
//! * [`readout`] — confusion-matrix readout error and IQ-cloud simulation.
//! * [`snapshot`] — persistent on-disk calibration snapshots keyed by
//!   device physics + options + seed (`OPC_CAL_CACHE`).
//! * [`knobs`] — the consolidated `OPC_*` environment-knob surface.
//! * [`executor`] — the noisy density-matrix executor for lowered programs.
//!
//! ```no_run
//! use quant_device::{calibrate, DeviceModel};
//!
//! let mut rng = quant_math::seeded(7);
//! let device = DeviceModel::almaden_like(2, &mut rng);
//! // The daily tune-up populates the backend's cmd_def pulse library.
//! let calibration = calibrate(&device, &mut rng);
//! assert!(calibration.cmd_def().contains("rx180", &[0]));
//! assert!(calibration.cmd_def().contains("cx", &[0, 1]));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod calibration;
pub mod device;
pub mod executor;
pub mod knobs;
pub mod params;
pub mod readout;
pub mod snapshot;
pub mod trajectory;
pub mod transmon;
pub mod tunable;
pub mod twoqubit;

pub use cache::{
    probe_key, quantize_probe, CacheStats, ProbeCache, ProbeKey, PulseCache, PulseKey,
};
pub use calibration::{
    calibrate, Calibration, CalibrationOptions, PairCalibration, QubitCalibration,
};
pub use device::{CouplingEdge, DeviceModel};
pub use executor::{
    Block, ExecError, ExecOutcome, LoweredProgram, PulseExecutor, QutritOutcome, ShotPool,
};
pub use params::{CrParams, DriftParams, ReadoutParams, TransmonParams, DT};
pub use snapshot::{snapshot_key, CalStore, CAL_ALGO_VERSION};
pub use trajectory::TrajectoryExecutor;
pub use transmon::{DriveState, FrameResult, Transmon};
pub use tunable::{calibrate_xy, XyCalibration, XyPair, XyParams};
pub use twoqubit::{
    extract_control_z, extract_zx_angle, lift_qubit_subspace, qubit_block_of, CrPair,
    PairFrameResult,
};
