//! Content-addressed memoization of integrated pulse unitaries.
//!
//! Integrating a pulse schedule is by far the most expensive step of a
//! simulated experiment: every 0.22 ns sample costs one matrix exponential.
//! But experiment suites replay the *same* waveforms thousands of times — a
//! 41-point θ-sweep executes 41 distinct rotation pulses while the
//! surrounding basis pulses never change. [`PulseCache`] memoizes the
//! integrated propagator of each distinct (pulse content, device physics)
//! pair so each is integrated exactly once per calibration epoch.
//!
//! **Keying.** Keys are exact: every f64 that enters the Hamiltonian —
//! waveform samples, frame state, transmon/CR parameters *after* drift —
//! is folded bit-for-bit into the key. Two lookups collide only when the
//! integrations would be bit-identical, so a hit can never return a stale
//! or approximate propagator. Per-pulse amplitude jitter therefore misses
//! by construction (the jittered samples differ), and calibration drift
//! changes the parameter bits, retiring every stale entry automatically.
//!
//! **Invalidation.** [`crate::DeviceModel::redraw_drift`] and
//! [`crate::DeviceModel::set_drift`] additionally call
//! [`PulseCache::invalidate`], dropping all entries and bumping the
//! generation counter. This keeps the map from accumulating entries for
//! parameter sets that can never be looked up again.
//!
//! **Knob.** The cache is on by default; set `OPC_PULSE_CACHE=0` (or call
//! [`crate::DeviceModel::set_pulse_cache_enabled`]) to disable it, e.g.
//! when measuring raw integrator throughput.

use crate::params::{CrParams, TransmonParams};
use crate::transmon::{DriveState, FrameResult};
use quant_math::CMat;
use quant_pulse::{Channel, Instruction, Schedule, Waveform};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Hard cap on resident entries; inserts beyond it are dropped. Keeps
/// pathological workloads (per-pulse jitter → every key unique) from
/// growing the map without bound.
const MAX_ENTRIES: usize = 4096;

/// A bit-exact content address for one pulse integration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PulseKey {
    words: Vec<u64>,
}

/// Builder folding every input of an integration into a [`PulseKey`].
#[derive(Debug, Default)]
struct KeyBuilder {
    words: Vec<u64>,
}

impl KeyBuilder {
    fn with_capacity(n: usize) -> Self {
        KeyBuilder {
            words: Vec::with_capacity(n),
        }
    }

    fn word(&mut self, w: u64) {
        self.words.push(w);
    }

    fn f64(&mut self, x: f64) {
        self.words.push(x.to_bits());
    }

    fn transmon(&mut self, p: &TransmonParams) {
        // T1/T2 do not enter the coherent integration, but they are two
        // extra words per key and keeping them makes the key a complete
        // record of the parameter struct.
        self.words.extend(p.key_words());
    }

    fn cr(&mut self, p: &CrParams) {
        self.words.extend(p.key_words());
    }

    fn drive_state(&mut self, s: &DriveState) {
        self.f64(s.frame_phase);
        self.f64(s.freq_offset);
        self.f64(s.mod_phase);
        self.f64(s.static_phase);
    }

    fn channel(&mut self, ch: Channel) {
        let (tag, idx) = match ch {
            Channel::Drive(q) => (0u64, q),
            Channel::Control(k) => (1, k),
            Channel::Measure(q) => (2, q),
            Channel::Acquire(q) => (3, q),
        };
        self.word(tag << 32 | idx as u64);
    }

    fn waveform(&mut self, w: &Waveform) {
        let samples = w.samples();
        self.word(samples.len() as u64);
        for s in samples {
            self.f64(s.re);
            self.f64(s.im);
        }
    }

    fn finish(self) -> PulseKey {
        PulseKey { words: self.words }
    }
}

/// Builds the key for a single-qubit `Play` integrated from `state` by a
/// transmon with (drifted) parameters `p`.
pub fn single_play_key(p: &TransmonParams, state: &DriveState, w: &Waveform) -> PulseKey {
    let mut k = KeyBuilder::with_capacity(12 + 2 * w.samples().len());
    k.word(TAG_1Q);
    k.transmon(p);
    k.drive_state(state);
    k.waveform(w);
    k.finish()
}

/// Builds the key for a two-qubit schedule integrated by a [`crate::CrPair`]
/// with (drifted) parameters, bound to the given channel roles.
pub fn pair_schedule_key(
    control: &TransmonParams,
    target: &TransmonParams,
    cr: &CrParams,
    schedule: &Schedule,
    control_drive: Channel,
    target_drive: Channel,
    cr_channel: Channel,
) -> PulseKey {
    let mut k = KeyBuilder::with_capacity(32);
    k.word(TAG_2Q);
    k.transmon(control);
    k.transmon(target);
    k.cr(cr);
    k.channel(control_drive);
    k.channel(target_drive);
    k.channel(cr_channel);
    k.word(schedule.duration());
    for ti in schedule.instructions() {
        k.word(ti.start);
        k.channel(ti.instruction.channel());
        match &ti.instruction {
            Instruction::Play { waveform, .. } => {
                k.word(10);
                k.waveform(waveform);
            }
            Instruction::ShiftPhase { phase, .. } => {
                k.word(11);
                k.f64(*phase);
            }
            Instruction::SetFrequency { frequency, .. } => {
                k.word(12);
                k.f64(*frequency);
            }
            Instruction::ShiftFrequency { delta, .. } => {
                k.word(13);
                k.f64(*delta);
            }
            Instruction::Delay { duration, .. } => {
                k.word(14);
                k.word(*duration);
            }
            Instruction::Acquire {
                duration, qubit, ..
            } => {
                k.word(15);
                k.word(*duration);
                k.word(*qubit as u64);
            }
        }
    }
    k.finish()
}

// Leading tag words keep single- and two-qubit keys in disjoint namespaces.
const TAG_1Q: u64 = 0x5051_3151;
const TAG_2Q: u64 = 0x5051_3251;
const TAG_PROBE: u64 = 0x5051_3351;

/// Snaps a calibration probe input (amplitude, detuning, DRAG β) onto a
/// coarse bit-grid by zeroing the low 20 mantissa bits, leaving a 32-bit
/// mantissa (relative grid ≈ 2.3·10⁻¹⁰ — more than five orders of
/// magnitude below every calibration tolerance).
///
/// Golden-section refinement revisits probe points that coincide
/// *mathematically* (this iteration's lower probe equals the last
/// iteration's upper probe, since φ² = 1 − φ) but differ by a few ulps in
/// floating point, so exact-bit cache keys would never hit. Snapping the
/// inputs to this grid before rendering the waveform makes near-coincident
/// probes bit-identical. The quantization is applied unconditionally —
/// cache enabled or not — so cached and uncached calibrations produce
/// bit-identical results.
pub fn quantize_probe(x: f64) -> f64 {
    f64::from_bits(x.to_bits() & !0xF_FFFF)
}

/// Compact content address of one noiseless calibration probe: the probed
/// transmon's parameter bits plus the rendered waveform's length and
/// 64-bit content hash.
///
/// Unlike [`PulseKey`], the waveform enters by [`Waveform::content_hash64`]
/// rather than by full sample bits: a device calibration issues a few
/// thousand distinct probes, so the collision probability is ≈ n²/2⁶⁵
/// ~ 10⁻¹³ — far below the probability of a cosmic-ray bit flip — and the
/// fixed-size key keeps lookups cheap next to a 3×3 per-sample integration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbeKey([u64; 8]);

/// Builds the key for a noiseless single-qubit probe integration
/// ([`crate::Transmon::integrate_waveform`] and friends) during tune-up.
pub fn probe_key(p: &TransmonParams, w: &Waveform) -> ProbeKey {
    let t = p.key_words();
    ProbeKey([
        TAG_PROBE,
        t[0],
        t[1],
        t[2],
        t[3],
        t[4],
        w.duration(),
        w.content_hash64(),
    ])
}

/// Cache statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to integrate.
    pub misses: u64,
    /// Resident entries.
    pub entries: usize,
    /// Number of invalidations since construction (drift redraws).
    pub generation: u64,
}

#[derive(Debug, Default)]
struct Inner {
    // opclint: allow(unordered-iter): lookup-only memo — get/insert/len/
    // clear via exact content keys; never iterated, so iteration order
    // cannot reach any result. HashMap keeps shot-loop lookups O(1).
    map: HashMap<PulseKey, CMat>,
    hits: u64,
    misses: u64,
    generation: u64,
}

/// Thread-safe memo table from pulse content to integrated propagator.
#[derive(Debug)]
pub struct PulseCache {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for PulseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PulseCache {
    /// An empty cache. Enabled unless `OPC_PULSE_CACHE` is set to `0`,
    /// `off` or `false`.
    pub fn new() -> Self {
        let enabled = crate::knobs::pulse_cache();
        PulseCache {
            enabled: AtomicBool::new(enabled),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns memoization on or off (lookups/inserts become no-ops).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Returns the cached propagator for `key`, or computes it with
    /// `integrate`, stores it, and returns it. The closure runs outside
    /// the lock, so concurrent shot threads never serialize on an
    /// integration (at worst two threads race to integrate the same new
    /// pulse once).
    pub fn get_or_integrate(&self, key: PulseKey, integrate: impl FnOnce() -> CMat) -> CMat {
        if !self.is_enabled() {
            return integrate();
        }
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(u) = inner.map.get(&key) {
                let u = u.clone();
                inner.hits += 1;
                return u;
            }
            inner.misses += 1;
        }
        let u = integrate();
        let mut inner = self.inner.lock().unwrap();
        if inner.map.len() < MAX_ENTRIES {
            inner.map.insert(key, u.clone());
        }
        u
    }

    /// Drops every entry and bumps the generation counter. Called when
    /// calibration drift mutates the device physics.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.generation += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            generation: inner.generation,
        }
    }

    /// Zeroes the hit/miss counters (entries stay resident).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// Cap on resident probe entries. A full qubit tune-up issues a few
/// thousand distinct probes; 2¹⁶ covers a 20-qubit device with room to
/// spare while bounding memory at a few tens of MB of 3×3 propagators.
const MAX_PROBE_ENTRIES: usize = 1 << 16;

#[derive(Debug, Default)]
struct ProbeInner {
    // opclint: allow(unordered-iter): lookup-only memo — get/insert/len
    // via fixed-size content keys; never iterated (values are pure
    // functions of the key, so there is nothing order-dependent to walk).
    map: HashMap<ProbeKey, FrameResult>,
    hits: u64,
    misses: u64,
}

/// Memo table for noiseless calibration probe integrations (layer 2 of the
/// calibration fast path): maps [`ProbeKey`] to the integrated
/// [`FrameResult`].
///
/// One cache is shared by all qubit tasks of a calibration run, so
/// identical probes — golden-section re-probes on one qubit, or identical
/// sweep points across the identical qubits of an ideal device — integrate
/// once. Values are pure functions of the key (quantized inputs, no noise
/// draws), so a hit is bit-identical to a recomputation no matter which
/// task inserted it; enabling or disabling the cache can therefore never
/// change a calibration result, only its cost.
#[derive(Debug)]
pub struct ProbeCache {
    enabled: bool,
    inner: Mutex<ProbeInner>,
}

impl Default for ProbeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeCache {
    /// An empty probe cache. Enabled unless `OPC_PROBE_CACHE` is set to
    /// `0`, `off` or `false`.
    pub fn new() -> Self {
        let enabled = crate::knobs::probe_cache();
        Self::with_enabled(enabled)
    }

    /// An empty probe cache with memoization explicitly on or off
    /// (env-independent — what the equivalence tests and benches use).
    pub fn with_enabled(enabled: bool) -> Self {
        ProbeCache {
            enabled,
            inner: Mutex::new(ProbeInner::default()),
        }
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the cached probe result for `key`, or computes it with
    /// `integrate`, stores it, and returns it. As with
    /// [`PulseCache::get_or_integrate`], the closure runs outside the lock.
    pub fn get_or_integrate(
        &self,
        key: ProbeKey,
        integrate: impl FnOnce() -> FrameResult,
    ) -> FrameResult {
        if !self.enabled {
            return integrate();
        }
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(r) = inner.map.get(&key) {
                let r = r.clone();
                inner.hits += 1;
                return r;
            }
            inner.misses += 1;
        }
        let r = integrate();
        let mut inner = self.inner.lock().unwrap();
        if inner.map.len() < MAX_PROBE_ENTRIES {
            inner.map.insert(key, r.clone());
        }
        r
    }

    /// Current counters (`generation` is always 0: probe keys embed the
    /// calibration-time physics, which never drifts, so the cache is never
    /// invalidated).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            generation: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::C64;
    use quant_pulse::Gaussian;

    fn wf(amp: f64) -> Waveform {
        Gaussian {
            duration: 32,
            amp,
            sigma: 8.0,
        }
        .waveform("w")
    }

    #[test]
    fn identical_content_hits() {
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        let cache = PulseCache::new();
        cache.set_enabled(true);
        let mut calls = 0;
        for _ in 0..3 {
            let k = single_play_key(&p, &s, &wf(0.25));
            cache.get_or_integrate(k, || {
                calls += 1;
                CMat::identity(3)
            });
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn different_content_misses() {
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        let k1 = single_play_key(&p, &s, &wf(0.25));
        let k2 = single_play_key(&p, &s, &wf(0.2500001));
        assert_ne!(k1, k2, "amplitude change must change the key");
        let mut drifted = p;
        drifted.rabi_hz_per_amp *= 1.0 + 1e-9;
        let k3 = single_play_key(&drifted, &s, &wf(0.25));
        assert_ne!(k1, k3, "parameter drift must change the key");
    }

    #[test]
    fn invalidate_clears_entries() {
        let cache = PulseCache::new();
        cache.set_enabled(true);
        let p = TransmonParams::almaden_like();
        let k = single_play_key(&p, &DriveState::default(), &wf(0.3));
        cache.get_or_integrate(k.clone(), || CMat::identity(3));
        assert_eq!(cache.stats().entries, 1);
        cache.invalidate();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.generation, 1);
        // Next lookup must re-integrate.
        let mut calls = 0;
        cache.get_or_integrate(k, || {
            calls += 1;
            CMat::identity(3)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn disabled_cache_always_integrates() {
        let cache = PulseCache::new();
        cache.set_enabled(false);
        let p = TransmonParams::almaden_like();
        let mut calls = 0;
        for _ in 0..2 {
            let k = single_play_key(&p, &DriveState::default(), &wf(0.3));
            cache.get_or_integrate(k, || {
                calls += 1;
                CMat::identity(3)
            });
        }
        assert_eq!(calls, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn pair_key_distinguishes_schedules() {
        let p = TransmonParams::almaden_like();
        let cr = CrParams::almaden_like();
        let mk = |phase: f64| {
            let mut s = Schedule::new("s");
            s.append(Instruction::ShiftPhase {
                phase,
                channel: Channel::Control(0),
            });
            s.append(Instruction::Play {
                waveform: wf(0.3),
                channel: Channel::Control(0),
            });
            pair_schedule_key(
                &p,
                &p,
                &cr,
                &s,
                Channel::Drive(0),
                Channel::Drive(1),
                Channel::Control(0),
            )
        };
        assert_eq!(mk(0.5), mk(0.5));
        assert_ne!(mk(0.5), mk(0.5 + 1e-12));
    }

    #[test]
    fn quantize_probe_snaps_near_coincident_points() {
        // φ-section arithmetic reproduces a probe point only to a few ulps;
        // the grid must merge those while separating genuinely new points.
        let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
        let x = 0.327_f64;
        let y = (x / phi) * phi; // == x mathematically, off by ~1 ulp
        assert_eq!(quantize_probe(x).to_bits(), quantize_probe(y).to_bits());
        assert_ne!(
            quantize_probe(x),
            quantize_probe(x * (1.0 + 1e-6)),
            "distinct probe points must stay distinct"
        );
        assert_eq!(quantize_probe(0.0), 0.0);
        assert!(quantize_probe(-x) < 0.0, "sign must survive quantization");
        assert!((quantize_probe(x) / x - 1.0).abs() < 3e-10);
    }

    #[test]
    fn probe_cache_hits_identical_probes_and_respects_disable() {
        let p = TransmonParams::almaden_like();
        let t = crate::transmon::Transmon::new(p);
        let w = wf(0.25);
        for (enabled, expected_calls) in [(true, 1), (false, 2)] {
            let cache = ProbeCache::with_enabled(enabled);
            let mut calls = 0;
            let mut results = Vec::new();
            for _ in 0..2 {
                results.push(cache.get_or_integrate(probe_key(&p, &w), || {
                    calls += 1;
                    t.integrate_waveform(&w)
                }));
            }
            assert_eq!(calls, expected_calls);
            // A hit returns the bit-identical propagator.
            assert_eq!(
                results[0].unitary[(1, 0)].re.to_bits(),
                results[1].unitary[(1, 0)].re.to_bits()
            );
        }
    }

    #[test]
    fn probe_keys_separate_params_and_waveforms() {
        let p = TransmonParams::almaden_like();
        let mut q = p;
        q.rabi_hz_per_amp *= 1.0 + 1e-12;
        assert_ne!(probe_key(&p, &wf(0.25)), probe_key(&q, &wf(0.25)));
        assert_ne!(probe_key(&p, &wf(0.25)), probe_key(&p, &wf(0.26)));
        assert_eq!(probe_key(&p, &wf(0.25)), probe_key(&p, &wf(0.25)));
    }

    #[test]
    fn keys_carry_complex_sample_bits() {
        // Two waveforms whose samples differ only in the imaginary part.
        let mut a = wf(0.3);
        let b = a.clone();
        let samples: Vec<C64> = a
            .samples()
            .iter()
            .map(|s| C64::new(s.re, s.im + 1e-15))
            .collect();
        a = Waveform::new("w", samples);
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        assert_ne!(single_play_key(&p, &s, &a), single_play_key(&p, &s, &b));
    }
}
