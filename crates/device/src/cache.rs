//! Content-addressed memoization of integrated pulse unitaries.
//!
//! Integrating a pulse schedule is by far the most expensive step of a
//! simulated experiment: every 0.22 ns sample costs one matrix exponential.
//! But experiment suites replay the *same* waveforms thousands of times — a
//! 41-point θ-sweep executes 41 distinct rotation pulses while the
//! surrounding basis pulses never change. [`PulseCache`] memoizes the
//! integrated propagator of each distinct (pulse content, device physics)
//! pair so each is integrated exactly once per calibration epoch.
//!
//! **Keying.** Keys are exact: every f64 that enters the Hamiltonian —
//! waveform samples, frame state, transmon/CR parameters *after* drift —
//! is folded bit-for-bit into the key. Two lookups collide only when the
//! integrations would be bit-identical, so a hit can never return a stale
//! or approximate propagator. Per-pulse amplitude jitter therefore misses
//! by construction (the jittered samples differ), and calibration drift
//! changes the parameter bits, retiring every stale entry automatically.
//!
//! **Invalidation.** [`crate::DeviceModel::redraw_drift`] and
//! [`crate::DeviceModel::set_drift`] additionally call
//! [`PulseCache::invalidate`], dropping all entries and bumping the
//! generation counter. This keeps the map from accumulating entries for
//! parameter sets that can never be looked up again.
//!
//! **Knob.** The cache is on by default; set `OPC_PULSE_CACHE=0` (or call
//! [`crate::DeviceModel::set_pulse_cache_enabled`]) to disable it, e.g.
//! when measuring raw integrator throughput.

use crate::params::{CrParams, TransmonParams};
use crate::transmon::DriveState;
use quant_math::CMat;
use quant_pulse::{Channel, Instruction, Schedule, Waveform};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Hard cap on resident entries; inserts beyond it are dropped. Keeps
/// pathological workloads (per-pulse jitter → every key unique) from
/// growing the map without bound.
const MAX_ENTRIES: usize = 4096;

/// A bit-exact content address for one pulse integration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PulseKey {
    words: Vec<u64>,
}

/// Builder folding every input of an integration into a [`PulseKey`].
#[derive(Debug, Default)]
struct KeyBuilder {
    words: Vec<u64>,
}

impl KeyBuilder {
    fn with_capacity(n: usize) -> Self {
        KeyBuilder {
            words: Vec::with_capacity(n),
        }
    }

    fn word(&mut self, w: u64) {
        self.words.push(w);
    }

    fn f64(&mut self, x: f64) {
        self.words.push(x.to_bits());
    }

    fn transmon(&mut self, p: &TransmonParams) {
        // T1/T2 do not enter the coherent integration, but they are two
        // extra words per key and keeping them makes the key a complete
        // record of the parameter struct.
        self.f64(p.f01);
        self.f64(p.alpha);
        self.f64(p.rabi_hz_per_amp);
        self.f64(p.t1);
        self.f64(p.t2);
    }

    fn cr(&mut self, p: &CrParams) {
        self.f64(p.zx_hz_per_amp);
        self.f64(p.ix_hz_per_amp);
        self.f64(p.zi_hz_per_amp);
        self.f64(p.zz_static_hz);
    }

    fn drive_state(&mut self, s: &DriveState) {
        self.f64(s.frame_phase);
        self.f64(s.freq_offset);
        self.f64(s.mod_phase);
        self.f64(s.static_phase);
    }

    fn channel(&mut self, ch: Channel) {
        let (tag, idx) = match ch {
            Channel::Drive(q) => (0u64, q),
            Channel::Control(k) => (1, k),
            Channel::Measure(q) => (2, q),
            Channel::Acquire(q) => (3, q),
        };
        self.word(tag << 32 | idx as u64);
    }

    fn waveform(&mut self, w: &Waveform) {
        let samples = w.samples();
        self.word(samples.len() as u64);
        for s in samples {
            self.f64(s.re);
            self.f64(s.im);
        }
    }

    fn finish(self) -> PulseKey {
        PulseKey { words: self.words }
    }
}

/// Builds the key for a single-qubit `Play` integrated from `state` by a
/// transmon with (drifted) parameters `p`.
pub fn single_play_key(p: &TransmonParams, state: &DriveState, w: &Waveform) -> PulseKey {
    let mut k = KeyBuilder::with_capacity(12 + 2 * w.samples().len());
    k.word(TAG_1Q);
    k.transmon(p);
    k.drive_state(state);
    k.waveform(w);
    k.finish()
}

/// Builds the key for a two-qubit schedule integrated by a [`crate::CrPair`]
/// with (drifted) parameters, bound to the given channel roles.
pub fn pair_schedule_key(
    control: &TransmonParams,
    target: &TransmonParams,
    cr: &CrParams,
    schedule: &Schedule,
    control_drive: Channel,
    target_drive: Channel,
    cr_channel: Channel,
) -> PulseKey {
    let mut k = KeyBuilder::with_capacity(32);
    k.word(TAG_2Q);
    k.transmon(control);
    k.transmon(target);
    k.cr(cr);
    k.channel(control_drive);
    k.channel(target_drive);
    k.channel(cr_channel);
    k.word(schedule.duration());
    for ti in schedule.instructions() {
        k.word(ti.start);
        k.channel(ti.instruction.channel());
        match &ti.instruction {
            Instruction::Play { waveform, .. } => {
                k.word(10);
                k.waveform(waveform);
            }
            Instruction::ShiftPhase { phase, .. } => {
                k.word(11);
                k.f64(*phase);
            }
            Instruction::SetFrequency { frequency, .. } => {
                k.word(12);
                k.f64(*frequency);
            }
            Instruction::ShiftFrequency { delta, .. } => {
                k.word(13);
                k.f64(*delta);
            }
            Instruction::Delay { duration, .. } => {
                k.word(14);
                k.word(*duration);
            }
            Instruction::Acquire { duration, qubit, .. } => {
                k.word(15);
                k.word(*duration);
                k.word(*qubit as u64);
            }
        }
    }
    k.finish()
}

// Leading tag words keep single- and two-qubit keys in disjoint namespaces.
const TAG_1Q: u64 = 0x5051_3151;
const TAG_2Q: u64 = 0x5051_3251;

/// Cache statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to integrate.
    pub misses: u64,
    /// Resident entries.
    pub entries: usize,
    /// Number of invalidations since construction (drift redraws).
    pub generation: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PulseKey, CMat>,
    hits: u64,
    misses: u64,
    generation: u64,
}

/// Thread-safe memo table from pulse content to integrated propagator.
#[derive(Debug)]
pub struct PulseCache {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for PulseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PulseCache {
    /// An empty cache. Enabled unless `OPC_PULSE_CACHE` is set to `0`,
    /// `off` or `false`.
    pub fn new() -> Self {
        let enabled = match std::env::var("OPC_PULSE_CACHE") {
            Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
            Err(_) => true,
        };
        PulseCache {
            enabled: AtomicBool::new(enabled),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns memoization on or off (lookups/inserts become no-ops).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Returns the cached propagator for `key`, or computes it with
    /// `integrate`, stores it, and returns it. The closure runs outside
    /// the lock, so concurrent shot threads never serialize on an
    /// integration (at worst two threads race to integrate the same new
    /// pulse once).
    pub fn get_or_integrate(&self, key: PulseKey, integrate: impl FnOnce() -> CMat) -> CMat {
        if !self.is_enabled() {
            return integrate();
        }
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(u) = inner.map.get(&key) {
                let u = u.clone();
                inner.hits += 1;
                return u;
            }
            inner.misses += 1;
        }
        let u = integrate();
        let mut inner = self.inner.lock().unwrap();
        if inner.map.len() < MAX_ENTRIES {
            inner.map.insert(key, u.clone());
        }
        u
    }

    /// Drops every entry and bumps the generation counter. Called when
    /// calibration drift mutates the device physics.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.generation += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            generation: inner.generation,
        }
    }

    /// Zeroes the hit/miss counters (entries stay resident).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.hits = 0;
        inner.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::C64;
    use quant_pulse::Gaussian;

    fn wf(amp: f64) -> Waveform {
        Gaussian {
            duration: 32,
            amp,
            sigma: 8.0,
        }
        .waveform("w")
    }

    #[test]
    fn identical_content_hits() {
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        let cache = PulseCache::new();
        cache.set_enabled(true);
        let mut calls = 0;
        for _ in 0..3 {
            let k = single_play_key(&p, &s, &wf(0.25));
            cache.get_or_integrate(k, || {
                calls += 1;
                CMat::identity(3)
            });
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn different_content_misses() {
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        let k1 = single_play_key(&p, &s, &wf(0.25));
        let k2 = single_play_key(&p, &s, &wf(0.2500001));
        assert_ne!(k1, k2, "amplitude change must change the key");
        let mut drifted = p;
        drifted.rabi_hz_per_amp *= 1.0 + 1e-9;
        let k3 = single_play_key(&drifted, &s, &wf(0.25));
        assert_ne!(k1, k3, "parameter drift must change the key");
    }

    #[test]
    fn invalidate_clears_entries() {
        let cache = PulseCache::new();
        cache.set_enabled(true);
        let p = TransmonParams::almaden_like();
        let k = single_play_key(&p, &DriveState::default(), &wf(0.3));
        cache.get_or_integrate(k.clone(), || CMat::identity(3));
        assert_eq!(cache.stats().entries, 1);
        cache.invalidate();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.generation, 1);
        // Next lookup must re-integrate.
        let mut calls = 0;
        cache.get_or_integrate(k, || {
            calls += 1;
            CMat::identity(3)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn disabled_cache_always_integrates() {
        let cache = PulseCache::new();
        cache.set_enabled(false);
        let p = TransmonParams::almaden_like();
        let mut calls = 0;
        for _ in 0..2 {
            let k = single_play_key(&p, &DriveState::default(), &wf(0.3));
            cache.get_or_integrate(k, || {
                calls += 1;
                CMat::identity(3)
            });
        }
        assert_eq!(calls, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn pair_key_distinguishes_schedules() {
        let p = TransmonParams::almaden_like();
        let cr = CrParams::almaden_like();
        let mk = |phase: f64| {
            let mut s = Schedule::new("s");
            s.append(Instruction::ShiftPhase {
                phase,
                channel: Channel::Control(0),
            });
            s.append(Instruction::Play {
                waveform: wf(0.3),
                channel: Channel::Control(0),
            });
            pair_schedule_key(
                &p,
                &p,
                &cr,
                &s,
                Channel::Drive(0),
                Channel::Drive(1),
                Channel::Control(0),
            )
        };
        assert_eq!(mk(0.5), mk(0.5));
        assert_ne!(mk(0.5), mk(0.5 + 1e-12));
    }

    #[test]
    fn keys_carry_complex_sample_bits() {
        // Two waveforms whose samples differ only in the imaginary part.
        let mut a = wf(0.3);
        let b = a.clone();
        let samples: Vec<C64> = a
            .samples()
            .iter()
            .map(|s| C64::new(s.re, s.im + 1e-15))
            .collect();
        a = Waveform::new("w", samples);
        let p = TransmonParams::almaden_like();
        let s = DriveState::default();
        assert_ne!(
            single_play_key(&p, &s, &a),
            single_play_key(&p, &s, &b)
        );
    }
}
