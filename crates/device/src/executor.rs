//! The noisy pulse executor.
//!
//! Consumes a [`LoweredProgram`] — the compiler's output: a sequence of
//! per-gate schedule blocks with virtual-Z frames already resolved into the
//! waveforms — and evolves an n-qubit density matrix through it:
//!
//! * every pulse is integrated against the **drifted** execution-time
//!   device physics (coherent calibration error, §8.3 source 2),
//! * each `Play` gets a fresh additive amplitude jitter (control
//!   electronics noise — this is why one big pulse beats two small ones),
//! * thermal relaxation is applied per qubit for exactly the wall-clock
//!   time it spends, busy or idle (shorter schedules decohere less, §8.3
//!   source 1),
//! * single-qubit leakage out of the computational subspace is captured by
//!   a Kraus completion of the integrated qubit block (smaller amplitudes
//!   leak less, §8.3 source 3),
//! * the final distribution passes through the readout confusion model.
//!
//! A separate single-qutrit path ([`PulseExecutor::run_qutrit`]) evolves the
//! full 3-level density matrix and produces simulated IQ readout points for
//! the paper's §7 counter experiment.

use crate::device::DeviceModel;
use crate::params::DT;
use crate::readout;
use crate::transmon::DriveState;
use quant_math::{normal, CMat, C64};
use quant_pulse::{Channel, Instruction, Schedule};
use quant_sim::{channels, DensityMatrix, KernelScratch};
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Execution failure: the lowered program asked the device for something
/// its topology cannot provide. Compilers targeting the device's coupling
/// map never produce these; hand-built programs (and future multi-backend
/// routing) get a descriptive error instead of a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A two-qubit block names a (control, target) pair with no directed
    /// coupling edge on the device.
    UncoupledPair {
        /// Control qubit of the offending block.
        control: u32,
        /// Target qubit of the offending block.
        target: u32,
    },
    /// A coupled pair has no CR control channel — an inconsistent device
    /// topology (every coupling edge is supposed to carry one).
    MissingControlChannel {
        /// Control qubit of the offending block.
        control: u32,
        /// Target qubit of the offending block.
        target: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UncoupledPair { control, target } => write!(
                f,
                "qubits {control},{target} are not coupled on this device \
                 (no directed edge control={control} -> target={target})"
            ),
            ExecError::MissingControlChannel { control, target } => write!(
                f,
                "coupled pair {control},{target} has no CR control channel \
                 (inconsistent device topology)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One lowered block: a pulse-schedule fragment implementing one gate.
#[derive(Clone, Debug)]
pub enum Block {
    /// A single-qubit gate: waveforms played back-to-back on the qubit's
    /// drive channel (frames pre-resolved).
    Gate1Q {
        /// Target qubit.
        qubit: u32,
        /// Sequential waveforms.
        waveforms: Vec<quant_pulse::Waveform>,
    },
    /// A two-qubit gate: a schedule fragment over the pair's drive channels
    /// and their CR control channel (frames pre-resolved).
    Gate2Q {
        /// Control qubit.
        control: u32,
        /// Target qubit.
        target: u32,
        /// The fragment (times relative to block start).
        schedule: Schedule,
    },
    /// Explicit idling (NO-OP padding, as in Fig. 13's "optimized-slow").
    Idle {
        /// Idling qubit.
        qubit: u32,
        /// Duration in `dt`.
        duration: u64,
    },
}

impl Block {
    /// Duration of the block in `dt`.
    pub fn duration(&self) -> u64 {
        match self {
            Block::Gate1Q { waveforms, .. } => waveforms.iter().map(|w| w.duration()).sum(),
            Block::Gate2Q { schedule, .. } => schedule.duration(),
            Block::Idle { duration, .. } => *duration,
        }
    }

    /// Qubits the block acts on.
    pub fn qubits(&self) -> Vec<u32> {
        match self {
            Block::Gate1Q { qubit, .. } | Block::Idle { qubit, .. } => vec![*qubit],
            Block::Gate2Q {
                control, target, ..
            } => vec![*control, *target],
        }
    }
}

/// A compiled program ready for noisy execution.
#[derive(Clone, Debug, Default)]
pub struct LoweredProgram {
    /// Number of qubits.
    pub num_qubits: u32,
    /// Gate blocks in program order.
    pub blocks: Vec<Block>,
    /// The full display schedule (for duration accounting and ASCII art).
    pub schedule: Schedule,
}

impl LoweredProgram {
    /// Total duration in `dt`, from the display schedule.
    pub fn duration(&self) -> u64 {
        self.schedule.duration()
    }

    /// Total number of pulses played.
    pub fn pulse_count(&self) -> usize {
        self.schedule.pulse_count()
    }
}

/// Result of a noisy execution.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Outcome distribution over `2^n` basis states, *after* readout error.
    pub probabilities: Vec<f64>,
    /// The pre-readout (true) distribution.
    pub true_probabilities: Vec<f64>,
    /// Program duration in `dt`.
    pub duration: u64,
}

impl ExecOutcome {
    /// Samples measurement counts from the post-readout distribution.
    pub fn sample_counts(&self, rng: &mut impl Rng, shots: usize) -> Vec<u64> {
        quant_math::sample_counts(rng, &self.probabilities, shots)
    }

    /// Samples counts with one deterministic RNG stream per shot
    /// (`seeded(seed ^ shot_index)`). This is the serial reference for
    /// [`ShotPool::sample_counts`], which produces bit-identical counts at
    /// any thread count.
    pub fn sample_counts_deterministic(&self, seed: u64, shots: usize) -> Vec<u64> {
        let mut counts = vec![0u64; self.probabilities.len()];
        for shot in 0..shots {
            let mut rng = quant_math::seeded(seed ^ shot as u64);
            counts[quant_math::categorical(&mut rng, &self.probabilities)] += 1;
        }
        counts
    }
}

/// Per-run evolution context: the stride-kernel scratch shared by every
/// operator application in the block loop, plus the memo of coalesced
/// thermal-relaxation channels keyed by `(qubit, duration)`. Programs
/// repeat a handful of distinct idle/gate durations many times, so after
/// the first few blocks the hot loop neither allocates nor recomposes
/// channels.
struct EvolveCtx {
    scratch: KernelScratch,
    // opclint: allow(unordered-iter): lookup-only memo — entry()/get keyed
    // by exact (qubit, duration); never iterated, so its order cannot leak
    // into results. HashMap keeps the hot relax() path O(1).
    relax_memo: HashMap<(u32, u64), Vec<CMat>>,
}

impl EvolveCtx {
    fn new() -> Self {
        EvolveCtx {
            scratch: KernelScratch::new(),
            // opclint: allow(unordered-iter): constructor of the lookup-only memo above.
            relax_memo: HashMap::new(),
        }
    }
}

/// The executor.
#[derive(Clone, Debug)]
pub struct PulseExecutor<'a> {
    device: &'a DeviceModel,
    noisy: bool,
    reference: bool,
}

impl<'a> PulseExecutor<'a> {
    /// An executor with the full noise model.
    pub fn new(device: &'a DeviceModel) -> Self {
        PulseExecutor {
            device,
            noisy: true,
            reference: false,
        }
    }

    /// An executor that integrates pulse physics but skips decoherence,
    /// jitter and readout error (for characterizing pure pulse effects).
    pub fn noiseless(device: &'a DeviceModel) -> Self {
        PulseExecutor {
            device,
            noisy: false,
            reference: false,
        }
    }

    /// Switches density-matrix evolution to the embed-based reference
    /// route with per-stage (uncoalesced) relaxation — float-for-float the
    /// pre-kernel implementation. Slow; exists so tests can assert the
    /// fast path reproduces identical sampled counts.
    pub fn with_reference_path(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Runs a lowered program and returns the outcome distribution.
    ///
    /// Panics if the program addresses a pair the device topology does
    /// not couple; use [`PulseExecutor::try_run`] to get the error as a
    /// value instead.
    pub fn run(&self, program: &LoweredProgram, rng: &mut impl Rng) -> ExecOutcome {
        match self.try_run(program, rng) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs a lowered program, reporting topology mismatches as
    /// [`ExecError`] instead of panicking.
    pub fn try_run(
        &self,
        program: &LoweredProgram,
        rng: &mut impl Rng,
    ) -> Result<ExecOutcome, ExecError> {
        let n = program.num_qubits as usize;
        assert!(n >= 1 && n <= self.device.num_qubits());
        let mut rho = DensityMatrix::zero_qubits(n);
        let mut ctx = EvolveCtx::new();
        // Thermal SPAM: imperfect reset leaves residual |1⟩ population that
        // readout mitigation (a measurement-side correction) cannot remove.
        let p_reset = self.device.reset_excited_prob();
        if self.noisy && p_reset > 0.0 {
            let flip = vec![
                CMat::identity(2).scale(C64::real((1.0 - p_reset).sqrt())),
                quant_sim::gates::x().scale(C64::real(p_reset.sqrt())),
            ];
            for q in 0..n {
                self.apply_kraus_ctx(&mut rho, &flip, &[q], &mut ctx);
            }
        }
        let mut cursor = vec![0u64; n];

        for block in &program.blocks {
            match block {
                Block::Idle { qubit, duration } => {
                    if self.noisy {
                        self.relax(&mut rho, *qubit, *duration, &mut ctx);
                    }
                    cursor[*qubit as usize] += duration;
                }
                Block::Gate1Q { qubit, waveforms } => {
                    let q = *qubit as usize;
                    let transmon = self.device.transmon_exec(*qubit);
                    for w in waveforms {
                        let w = self.jittered(w, rng);
                        let key = crate::cache::single_play_key(
                            transmon.params(),
                            &DriveState::default(),
                            &w,
                        );
                        let u3x3 = self.device.pulse_cache().get_or_integrate(key, || {
                            let mut state = DriveState::default();
                            transmon.integrate_play(&mut state, &w)
                        });
                        let kraus = qubit_block_kraus(&u3x3);
                        self.apply_kraus_ctx(&mut rho, &kraus, &[q], &mut ctx);
                        let dur = w.duration();
                        if self.noisy {
                            self.relax(&mut rho, *qubit, dur, &mut ctx);
                        }
                        cursor[q] += dur;
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    let (c, t) = (*control as usize, *target as usize);
                    // Synchronize the two qubits (ASAP alignment): the
                    // later cursor wins; the earlier qubit idles.
                    let start = cursor[c].max(cursor[t]);
                    for &q in &[*control, *target] {
                        let idle = start - cursor[q as usize];
                        if idle > 0 && self.noisy {
                            self.relax(&mut rho, q, idle, &mut ctx);
                        }
                        cursor[q as usize] = start;
                    }
                    let pair = self.device.pair_exec(*control, *target).ok_or(
                        ExecError::UncoupledPair {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let u_ch = self.device.control_channel(*control, *target).ok_or(
                        ExecError::MissingControlChannel {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let schedule = if self.noisy {
                        jitter_schedule(schedule, self.device.pulse_amp_jitter(), rng)
                    } else {
                        schedule.clone()
                    };
                    let key = crate::cache::pair_schedule_key(
                        pair.control_params(),
                        pair.target_params(),
                        pair.cr_params(),
                        &schedule,
                        Channel::Drive(*control),
                        Channel::Drive(*target),
                        u_ch,
                    );
                    let unitary = self.device.pulse_cache().get_or_integrate(key, || {
                        pair.integrate(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        )
                        .unitary
                    });
                    // The raw propagator is what physically happened;
                    // leftover virtual-Z frames are compiler bookkeeping
                    // (baked into *subsequent* pulses by the lowering pass)
                    // and must not be realized here. Any frame pending at
                    // the end of the program is a pure Z rotation, which a
                    // computational-basis measurement cannot see. The qubit
                    // block is slightly sub-unitary (|2⟩ leakage); complete
                    // it to a CPTP channel.
                    self.apply_kraus_ctx(&mut rho, &contraction_kraus(&unitary), &[c, t], &mut ctx);
                    let dur = schedule.duration();
                    if self.noisy {
                        self.relax(&mut rho, *control, dur, &mut ctx);
                        self.relax(&mut rho, *target, dur, &mut ctx);
                    }
                    cursor[c] += dur;
                    cursor[t] += dur;
                }
            }
        }

        // Trailing idle: every qubit waits for the slowest one before the
        // simultaneous measurement.
        let end = cursor.iter().copied().max().unwrap_or(0);
        if self.noisy {
            for q in 0..n as u32 {
                let idle = end - cursor[q as usize];
                if idle > 0 {
                    self.relax(&mut rho, q, idle, &mut ctx);
                }
            }
        }

        let true_probabilities = rho.probabilities();
        let probabilities = if self.noisy {
            let readouts: Vec<_> = (0..n as u32).map(|q| *self.device.readout(q)).collect();
            readout::apply_confusion(&true_probabilities, &readouts)
        } else {
            true_probabilities.clone()
        };
        Ok(ExecOutcome {
            probabilities,
            true_probabilities,
            duration: end,
        })
    }

    /// Runs a raw single-qutrit schedule (drive channel 0) on the 3-level
    /// density matrix, returning level populations and, optionally,
    /// sampled IQ points per shot.
    pub fn run_qutrit(&self, schedule: &Schedule, rng: &mut impl Rng) -> QutritOutcome {
        let transmon = self.device.transmon_exec(0);
        let p = *transmon.params();
        let mut rho = DensityMatrix::zero(&[3]);
        let mut scratch = KernelScratch::new();
        let mut state = DriveState::default();
        let mut cursor = 0u64;

        let relax3 = |rho: &mut DensityMatrix, samples: u64, scratch: &mut KernelScratch| {
            if !self.noisy || samples == 0 {
                return;
            }
            let t = samples as f64 * DT;
            // |2⟩ relaxes roughly twice as fast as |1⟩ in a transmon.
            let g10 = 1.0 - (-t / p.t1).exp();
            let g21 = 1.0 - (-t / (p.t1 / 2.0)).exp();
            rho.apply_kraus_scratch(&channels::qutrit_relaxation(g10, g21), &[0], scratch);
            let inv_tphi = (1.0 / p.t2 - 1.0 / (2.0 * p.t1)).max(0.0);
            let lambda = 1.0 - (-2.0 * t * inv_tphi).exp();
            rho.apply_kraus_scratch(&channels::qutrit_dephasing(lambda), &[0], scratch);
        };

        for ti in schedule.instructions() {
            if ti.instruction.channel() != Channel::Drive(0) {
                continue;
            }
            if ti.start > cursor {
                transmon.advance_idle(&mut state, ti.start - cursor);
                relax3(&mut rho, ti.start - cursor, &mut scratch);
                cursor = ti.start;
            }
            if transmon.apply_frame_instruction(&mut state, &ti.instruction) {
                continue;
            }
            match &ti.instruction {
                Instruction::Delay { duration, .. } => {
                    transmon.advance_idle(&mut state, *duration);
                    relax3(&mut rho, *duration, &mut scratch);
                    cursor += duration;
                }
                Instruction::Acquire { duration, .. } => {
                    cursor += duration;
                }
                Instruction::Play { waveform, .. } => {
                    let w = self.jittered(waveform, rng);
                    let u = transmon.integrate_play(&mut state, &w);
                    rho.apply_unitary_scratch(&u, &[0], &mut scratch);
                    relax3(&mut rho, w.duration(), &mut scratch);
                    cursor += w.duration();
                }
                _ => unreachable!(),
            }
        }

        QutritOutcome {
            populations: rho.probabilities(),
            duration: cursor,
        }
    }

    /// Applies per-pulse additive amplitude jitter.
    fn jittered(&self, w: &quant_pulse::Waveform, rng: &mut impl Rng) -> quant_pulse::Waveform {
        let sigma = self.device.pulse_amp_jitter();
        // opclint: allow(float-literal-eq): exact short-circuit — noiseless devices report a literal 0.0 jitter sigma
        if !self.noisy || sigma == 0.0 {
            return w.clone();
        }
        let peak = w.peak();
        if peak < 1e-12 {
            return w.clone();
        }
        // Additive amplitude noise ξ (absolute units) realized as a
        // relative factor 1 + ξ/peak — large pulses are relatively cleaner.
        let xi = normal(rng, 0.0, sigma);
        w.scaled((1.0 + xi / peak).clamp(0.0, 1.0 / peak))
    }

    /// Applies a Kraus channel via the stride kernel and the shared
    /// scratch, or via the embed reference when the reference path is on.
    fn apply_kraus_ctx(
        &self,
        rho: &mut DensityMatrix,
        kraus: &[CMat],
        targets: &[usize],
        ctx: &mut EvolveCtx,
    ) {
        if self.reference {
            rho.apply_kraus_ref(kraus, targets);
        } else {
            rho.apply_kraus_scratch(kraus, targets, &mut ctx.scratch);
        }
    }

    /// Thermal relaxation on one qubit for `samples` of wall-clock time.
    ///
    /// Fast path: the T1/T2 stages are composed into one Kraus channel and
    /// memoized per `(qubit, duration)` — programs reuse a handful of
    /// distinct durations, so composition happens once per distinct pair.
    /// Reference path: one `apply_kraus_ref` per stage, float-identical to
    /// the pre-kernel implementation.
    fn relax(&self, rho: &mut DensityMatrix, qubit: u32, samples: u64, ctx: &mut EvolveCtx) {
        let p = self.device.qubit(qubit);
        let t = samples as f64 * DT;
        if self.reference {
            for stage in channels::thermal_relaxation(t, p.t1, p.t2) {
                rho.apply_kraus_ref(&stage, &[qubit as usize]);
            }
            return;
        }
        let EvolveCtx {
            scratch,
            relax_memo,
        } = ctx;
        let kraus = relax_memo
            .entry((qubit, samples))
            .or_insert_with(|| channels::thermal_relaxation_kraus(t, p.t1, p.t2));
        rho.apply_kraus_scratch(kraus, &[qubit as usize], scratch);
    }
}

/// Deterministic parallel fan-out engine for shots and sweep points.
///
/// Experiment suites are embarrassingly parallel in two directions: sweep
/// points (each θ of a rotation sweep, each RB sequence) and shots (count
/// sampling from an outcome distribution). `ShotPool` fans both across OS
/// threads with a determinism contract: **every job is keyed by its index
/// alone** — job `i` writes slot `i` and derives any randomness from a
/// per-index stream (`seeded(seed ^ i)`) — so results are bit-identical to
/// a serial run at any thread count.
///
/// The thread count comes from the `OPC_THREADS` environment variable when
/// constructed via [`ShotPool::from_env`] (unset or `0` → all available
/// cores).
///
/// Fan-out never exceeds the host's available parallelism: spawning more
/// workers than cores is pure time-slicing overhead (on a 1-core host a
/// 2-thread `fig12_reduced` run regressed to 0.96× from exactly this),
/// and the determinism contract makes the clamp invisible in the results.
/// Set `OPC_OVERSUBSCRIBE=1` to lift the clamp when a run must exercise
/// the cross-thread machinery itself (e.g. 4-thread determinism tests on
/// a 2-core CI runner).
#[derive(Clone, Copy, Debug)]
pub struct ShotPool {
    threads: usize,
}

/// The host's spawn ceiling for [`ShotPool`] fan-out: available
/// parallelism, or unlimited under `OPC_OVERSUBSCRIBE=1`. Cached — the
/// answer cannot change mid-process and this sits on every fan-out path.
fn host_parallelism() -> usize {
    static LIMIT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| {
        if crate::knobs::oversubscribe() {
            return usize::MAX;
        }
        std::thread::available_parallelism().map_or(usize::MAX, |n| n.get())
    })
}

impl ShotPool {
    /// A pool with an explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ShotPool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool (identical results, no fan-out).
    pub fn serial() -> Self {
        ShotPool::new(1)
    }

    /// Thread count from `OPC_THREADS`, defaulting to the number of
    /// available cores.
    pub fn from_env() -> Self {
        let threads = crate::knobs::threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ShotPool::new(threads)
    }

    /// Worker threads this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f(0), f(1), …, f(n-1)` across the pool and returns the
    /// results in index order. `f` must depend only on its index argument
    /// (derive randomness as `seeded(seed ^ index)`); the output is then
    /// independent of the thread count.
    ///
    /// Scheduling is work-stealing: workers pull the next unclaimed index
    /// from a shared atomic counter, so unequal per-index costs (e.g. RB
    /// sequences of different lengths, qubits whose golden-section searches
    /// converge at different depths) balance automatically instead of
    /// riding on whichever contiguous chunk they landed in. Slot `i` still
    /// receives `f(i)` whatever thread computed it, so the determinism
    /// contract is unchanged.
    pub fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indices_with(n, || (), |(), i| f(i))
    }

    /// [`ShotPool::map_indices`] with **worker-local state**: `init()` runs
    /// once on each worker thread and the resulting value is threaded
    /// through every job that worker claims. Use it to reuse expensive
    /// per-worker buffers (a `StateVector`, a `KernelScratch`) across jobs
    /// without sharing them between threads.
    ///
    /// The determinism contract is unchanged — `f` must compute slot `i`
    /// from the index alone, treating the state strictly as scratch (its
    /// contents must never leak information from one index into another's
    /// result).
    pub fn map_indices_with<S, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let threads = self.threads.min(n.max(1)).min(host_parallelism());
        if threads <= 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let init = &init;
        let f = &f;
        let next = &next;
        let mut partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut state = init();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                return local;
                            }
                            local.push((i, f(&mut state, i)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Re-raise a worker panic with its original payload
                    // instead of double-panicking on an opaque `Any`.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut indexed: Vec<(usize, T)> = partials.drain(..).flatten().collect();
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// Parallel map over a slice, in index order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// Samples `shots` measurement outcomes from `probabilities` using one
    /// deterministic RNG stream per shot (`seeded(seed ^ shot_index)`), and
    /// returns the per-outcome counts. Counts are u64 sums of independent
    /// per-shot draws, so the result is bit-identical at any thread count
    /// (and to [`ExecOutcome::sample_counts_deterministic`]).
    pub fn sample_counts(&self, probabilities: &[f64], shots: usize, seed: u64) -> Vec<u64> {
        // A single categorical draw is tens of nanoseconds; below a few
        // tens of thousands of shots per worker, thread spawn + join costs
        // more than the sampling itself (the fig04 suite regressed to
        // 0.9× when its 10 k-shot jobs were split across 2 threads). Cap
        // the fan-out so every worker has enough draws to amortize.
        const MIN_SHOTS_PER_WORKER: usize = 16_384;
        let bins = probabilities.len();
        let threads = self
            .threads
            .min(shots.max(1))
            .min((shots / MIN_SHOTS_PER_WORKER).max(1));
        let chunk = shots.div_ceil(threads.max(1)).max(1);
        let ranges: Vec<(usize, usize)> = (0..shots)
            .step_by(chunk)
            .map(|start| (start, (start + chunk).min(shots)))
            .collect();
        let partials = self.map(&ranges, |_, &(start, end)| {
            let mut counts = vec![0u64; bins];
            for shot in start..end {
                let mut rng = quant_math::seeded(seed ^ shot as u64);
                counts[quant_math::categorical(&mut rng, probabilities)] += 1;
            }
            counts
        });
        let mut total = vec![0u64; bins];
        for part in partials {
            for (t, p) in total.iter_mut().zip(part) {
                *t += p;
            }
        }
        total
    }
}

/// Result of a qutrit schedule execution.
#[derive(Clone, Debug)]
pub struct QutritOutcome {
    /// Populations of |0⟩, |1⟩, |2⟩.
    pub populations: Vec<f64>,
    /// Duration in `dt`.
    pub duration: u64,
}

impl QutritOutcome {
    /// Samples per-shot IQ readout points for this outcome's distribution.
    pub fn sample_iq_shots(
        &self,
        device: &DeviceModel,
        rng: &mut impl Rng,
        shots: usize,
    ) -> Vec<((f64, f64), usize)> {
        let r = device.readout(0);
        (0..shots)
            .map(|_| {
                let level = quant_math::categorical(rng, &self.populations);
                (readout::sample_iq(r, level, rng), level)
            })
            .collect()
    }
}

/// Returns a copy of a schedule with fresh additive amplitude jitter on
/// every `Play`.
fn jitter_schedule(schedule: &Schedule, sigma: f64, rng: &mut impl Rng) -> Schedule {
    // opclint: allow(float-literal-eq): exact short-circuit — noiseless devices report a literal 0.0 jitter sigma
    if sigma == 0.0 {
        return schedule.clone();
    }
    let mut out = Schedule::new(schedule.name());
    for ti in schedule.instructions() {
        let instruction = match &ti.instruction {
            Instruction::Play { waveform, channel } => {
                let peak = waveform.peak();
                let w = if peak < 1e-12 {
                    waveform.clone()
                } else {
                    let mut factor = 1.0 + normal(rng, 0.0, sigma) / peak;
                    // CR pulses additionally carry a calibration-transfer
                    // error: the stretched pulse is derived from the 45°
                    // tune-up, and the area→angle transfer on hardware is
                    // only good to ~1.5 % (cf. the paper's Fig. 9 spread).
                    if matches!(channel, Channel::Control(_)) {
                        factor += normal(rng, 0.0, 0.015);
                    }
                    waveform.scaled(factor.clamp(0.0, 1.0 / peak))
                };
                Instruction::Play {
                    waveform: w,
                    channel: *channel,
                }
            }
            other => other.clone(),
        };
        out.insert(ti.start, instruction);
    }
    out
}

/// Turns the 3-level propagator of a single-qubit pulse into a qubit-space
/// Kraus channel: the (sub-unitary) qubit block plus completion operators.
fn qubit_block_kraus(u3x3: &CMat) -> Vec<CMat> {
    let b = CMat::from_rows(&[&[u3x3[(0, 0)], u3x3[(0, 1)]], &[u3x3[(1, 0)], u3x3[(1, 1)]]]);
    contraction_kraus(&b)
}

/// Completes a sub-unitary contraction `B` (‖B†B‖ ≤ 1) into a CPTP Kraus
/// set. The lost weight of each contracted direction is deposited onto the
/// basis state where that direction has the most support — for leakage this
/// sends the weight to the state the leaked population would be read out
/// as.
fn contraction_kraus(b: &CMat) -> Vec<CMat> {
    let n = b.rows();
    // M = I − B†B is PSD with small eigenvalues (the leaked weight).
    let m = &CMat::identity(n) - &(&b.dagger() * b);
    let eig = quant_math::eigh(&m);
    let mut kraus = vec![b.clone()];
    for (i, &lambda) in eig.values.iter().enumerate() {
        if lambda > 1e-14 {
            let v: Vec<C64> = (0..n).map(|r| eig.vectors[(r, i)].conj()).collect();
            let deposit = v
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            let mut k = CMat::zeros(n, n);
            for (col, &vc) in v.iter().enumerate() {
                k[(deposit, col)] = C64::real(lambda.max(0.0).sqrt()) * vc;
            }
            kraus.push(k);
        }
    }
    kraus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;
    use quant_math::seeded;
    use quant_pulse::Gaussian;

    fn x_block(device: &DeviceModel, q: u32) -> Block {
        let mut rng = seeded(99);
        let cal = calibrate(device, &mut rng);
        Block::Gate1Q {
            qubit: q,
            waveforms: vec![cal.qubit(q).rx180_waveform("x")],
        }
    }

    #[test]
    fn ideal_execution_flips_qubit() {
        let device = DeviceModel::ideal(1);
        let block = x_block(&device, 0);
        let program = LoweredProgram {
            num_qubits: 1,
            blocks: vec![block],
            schedule: Schedule::new("x"),
        };
        let exec = PulseExecutor::noiseless(&device);
        let mut rng = seeded(1);
        let out = exec.run(&program, &mut rng);
        assert!(out.probabilities[1] > 0.999, "p = {:?}", out.probabilities);
    }

    #[test]
    fn noisy_execution_shows_readout_error() {
        let mut rng = seeded(2);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let block = x_block(&device, 0);
        let program = LoweredProgram {
            num_qubits: 1,
            blocks: vec![block],
            schedule: Schedule::new("x"),
        };
        let exec = PulseExecutor::new(&device);
        let out = exec.run(&program, &mut rng);
        // True state is nearly |1⟩; readout drags ~5 % back to 0.
        assert!(out.true_probabilities[1] > 0.98);
        assert!(out.probabilities[1] < 0.98);
        assert!(out.probabilities[1] > 0.90);
    }

    #[test]
    fn idle_blocks_decohere() {
        let mut rng = seeded(3);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let x = x_block(&device, 0);
        let short = LoweredProgram {
            num_qubits: 1,
            blocks: vec![x.clone()],
            schedule: Schedule::new("s"),
        };
        // Same gate followed by a long idle (~30 µs).
        let long = LoweredProgram {
            num_qubits: 1,
            blocks: vec![
                x,
                Block::Idle {
                    qubit: 0,
                    duration: 135_000,
                },
            ],
            schedule: Schedule::new("l"),
        };
        let exec = PulseExecutor::new(&device);
        let p_short = exec.run(&short, &mut rng).true_probabilities[1];
        let p_long = exec.run(&long, &mut rng).true_probabilities[1];
        assert!(
            p_long < p_short - 0.1,
            "idle should relax: {p_short} vs {p_long}"
        );
    }

    #[test]
    fn qubit_block_kraus_is_trace_preserving() {
        // A contracting block (leakage) must still give a valid channel.
        let device = DeviceModel::ideal(1);
        let t = device.transmon_cal(0);
        let w = Gaussian {
            duration: 48,
            amp: 0.9,
            sigma: 12.0,
        }
        .waveform("leaky");
        let mut state = DriveState::default();
        let u = t.integrate_play(&mut state, &w);
        let kraus = qubit_block_kraus(&u);
        assert!(channels::is_trace_preserving(&kraus, 1e-9));
        assert!(kraus.len() >= 2, "leaky pulse should need completion ops");
    }

    #[test]
    fn two_qubit_block_executes_cnot() {
        let device = DeviceModel::ideal(2);
        let mut rng = seeded(4);
        let cal = calibrate(&device, &mut rng);
        let cx = cal.cmd_def().get("cx", &[0, 1]).unwrap().clone();
        let x0 = Block::Gate1Q {
            qubit: 0,
            waveforms: vec![cal.qubit(0).rx180_waveform("x")],
        };
        let program = LoweredProgram {
            num_qubits: 2,
            blocks: vec![
                x0,
                Block::Gate2Q {
                    control: 0,
                    target: 1,
                    schedule: cx,
                },
            ],
            schedule: Schedule::new("bell-ish"),
        };
        let exec = PulseExecutor::noiseless(&device);
        let out = exec.run(&program, &mut rng);
        // |00⟩ → X on q0 → |01⟩(q0=1) → CNOT(0→1) → |11⟩ = index 3.
        assert!(out.probabilities[3] > 0.98, "p = {:?}", out.probabilities);
    }

    #[test]
    fn uncoupled_pair_is_a_described_error_not_a_panic() {
        let device = DeviceModel::ideal(3);
        let mut rng = seeded(7);
        let cal = calibrate(&device, &mut rng);
        let cx = cal.cmd_def().get("cx", &[0, 1]).unwrap().clone();
        // ideal(3) couples only adjacent pairs (both directions); 0 and 2
        // share no edge.
        let program = LoweredProgram {
            num_qubits: 3,
            blocks: vec![Block::Gate2Q {
                control: 0,
                target: 2,
                schedule: cx,
            }],
            schedule: Schedule::new("uncoupled"),
        };
        let exec = PulseExecutor::noiseless(&device);
        let err = exec.try_run(&program, &mut rng).unwrap_err();
        assert_eq!(
            err,
            ExecError::UncoupledPair {
                control: 0,
                target: 2
            }
        );
        assert!(err.to_string().contains("not coupled"), "{err}");
    }

    #[test]
    fn qutrit_run_increment() {
        // X01 pulse then an f12-shifted pulse: |0⟩ → |1⟩ → |2⟩.
        let device = DeviceModel::ideal(1);
        let mut rng = seeded(5);
        let cal = calibrate(&device, &mut rng);
        let p = device.qubit(0);
        let mut s = Schedule::new("q");
        s.append(Instruction::Play {
            waveform: cal.qubit(0).rx180_waveform("x01"),
            channel: Channel::Drive(0),
        });
        s.append(Instruction::ShiftFrequency {
            delta: p.alpha,
            channel: Channel::Drive(0),
        });
        // π pulse on 1↔2: matrix element √2 stronger.
        s.append(Instruction::Play {
            waveform: cal
                .qubit(0)
                .rx180
                .waveform("x12")
                .scaled(1.0 / std::f64::consts::SQRT_2),
            channel: Channel::Drive(0),
        });
        let exec = PulseExecutor::noiseless(&device);
        let out = exec.run_qutrit(&s, &mut rng);
        assert!(
            out.populations[2] > 0.95,
            "populations = {:?}",
            out.populations
        );
    }

    #[test]
    fn iq_sampling_separates_levels() {
        let mut rng = seeded(6);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let outcome = QutritOutcome {
            populations: vec![1.0, 0.0, 0.0],
            duration: 0,
        };
        let shots = outcome.sample_iq_shots(&device, &mut rng, 500);
        assert_eq!(shots.len(), 500);
        let r = device.readout(0);
        let mean_i: f64 = shots.iter().map(|((i, _), _)| *i).sum::<f64>() / shots.len() as f64;
        assert!((mean_i - r.iq0.0).abs() < 0.1, "mean I = {mean_i}");
    }
}
