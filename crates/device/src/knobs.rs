//! The `OPC_*` environment-knob surface, consolidated.
//!
//! Every runtime knob that can change behaviour lives behind a typed
//! accessor here, so the determinism surface stays auditable in one
//! place: opclint's `env-read` rule confines `std::env::var("OPC_*")`
//! reads to designated `knobs` modules. Knobs only toggle *strategies*
//! (caching, fan-out, verification) — results are bit-identical across
//! every setting; that invariant is what CI's knob matrix pins.
//!
//! | knob | accessor | default |
//! |---|---|---|
//! | `OPC_FUSION` | [`fusion`] | on (off only at `0`) |
//! | `OPC_PULSE_CACHE` | [`pulse_cache`] | on (off at `0`/`off`/`false`) |
//! | `OPC_PROBE_CACHE` | [`probe_cache`] | on (off at `0`/`off`/`false`) |
//! | `OPC_CAL_CACHE` | [`cal_cache`] | default store under `target/` |
//! | `OPC_OVERSUBSCRIBE` | [`oversubscribe`] | off (on only at `1`) |
//! | `OPC_THREADS` | [`threads`] | unset (available parallelism) |
//! | `OPC_VERIFY` | [`verify`] | on (off only at `0`) |

/// `OPC_FUSION`: gate fusion in the trajectory executor. On unless the
/// variable is set to `0`.
pub fn fusion() -> bool {
    match std::env::var("OPC_FUSION") {
        Ok(v) => v != "0",
        Err(_) => true,
    }
}

/// `OPC_PULSE_CACHE`: the content-addressed pulse-unitary cache. Enabled
/// unless set to `0`, `off` or `false`.
pub fn pulse_cache() -> bool {
    match std::env::var("OPC_PULSE_CACHE") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// `OPC_PROBE_CACHE`: the calibration probe memo. Enabled unless set to
/// `0`, `off` or `false`.
pub fn probe_cache() -> bool {
    match std::env::var("OPC_PROBE_CACHE") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Resolved `OPC_CAL_CACHE` setting for the persistent calibration store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalCacheKnob {
    /// Snapshots disabled (`0`/`off`/`false`).
    Disabled,
    /// Store rooted at an explicit directory.
    Dir(String),
    /// Unset or empty: the default store under `target/`.
    Default,
}

/// `OPC_CAL_CACHE`: where (whether) calibration snapshots persist.
pub fn cal_cache() -> CalCacheKnob {
    match std::env::var("OPC_CAL_CACHE") {
        Ok(v) if matches!(v.trim(), "0" | "off" | "false") => CalCacheKnob::Disabled,
        Ok(v) if !v.trim().is_empty() => CalCacheKnob::Dir(v.trim().to_string()),
        _ => CalCacheKnob::Default,
    }
}

/// `OPC_OVERSUBSCRIBE`: lift the physical-core clamp on pool fan-out
/// (CI uses this so 4-thread rows exercise real parallelism on small
/// runners). On only at exactly `1`.
pub fn oversubscribe() -> bool {
    std::env::var("OPC_OVERSUBSCRIBE").is_ok_and(|v| v.trim() == "1")
}

/// `OPC_THREADS`: explicit worker count for [`crate::ShotPool`];
/// `None` (unset/unparsable/zero) means use available parallelism.
pub fn threads() -> Option<usize> {
    std::env::var("OPC_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// `OPC_VERIFY`: the mandatory post-lowering schedule verification pass.
/// On unless the variable is set to `0`.
pub fn verify() -> bool {
    match std::env::var("OPC_VERIFY") {
        Ok(v) => v != "0",
        Err(_) => true,
    }
}
