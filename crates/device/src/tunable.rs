//! Frequency-tunable coupling: the iSWAP / √iSWAP native-gate family.
//!
//! Table 2's right-hand columns rest on the observation that
//! frequency-tunable superconducting qubits (and quantum-dot / nuclear-spin
//! qubits) natively implement the XY exchange interaction, and that
//! *damping the pulse* realizes "half" an iSWAP — the √iSWAP gate whose
//! per-use cost the paper counts as 0.5. This module provides the
//! substrate: an exchange-interaction pair integrator driven by a flux
//! pulse on the coupler channel, plus the tune-up that calibrates the
//! iSWAP and √iSWAP pulse areas.
//!
//! Physics: a flux pulse of envelope `a(t)` activates
//!
//! ```text
//! H(t)/ħ = 2π·g·a(t) · (XX + YY)/2   (qubit subspace)
//! ```
//!
//! so the accumulated area sets the rotation angle in the |01⟩/|10⟩
//! subspace; area for angle π gives iSWAP, half of it gives √iSWAP —
//! exactly the paper's "damping the pulse shape of a standard iSWAP".

use crate::params::{TransmonParams, DT};
use quant_math::{unitary_exp, CMat, C64};
use quant_pulse::{Channel, GaussianSquare, Instruction, Schedule};
use quant_sim::gates;
use std::f64::consts::TAU;

/// Exchange-interaction parameters for a tunable-coupler pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct XyParams {
    /// Exchange rate per unit flux-pulse amplitude, in Hz.
    pub g_hz_per_amp: f64,
    /// Residual static ZZ during the pulse, in Hz.
    pub zz_hz: f64,
}

impl XyParams {
    /// Typical tunable-coupler values.
    pub fn tunable_like() -> Self {
        XyParams {
            g_hz_per_amp: 8.0e6,
            zz_hz: 0.03e6,
        }
    }
}

/// Integrator for one tunable-coupler pair (3-level qubits, exchange
/// term on the qubit subspace).
#[derive(Clone, Debug)]
pub struct XyPair {
    a: TransmonParams,
    b: TransmonParams,
    xy: XyParams,
}

impl XyPair {
    /// Creates the integrator.
    pub fn new(a: TransmonParams, b: TransmonParams, xy: XyParams) -> Self {
        XyPair { a, b, xy }
    }

    /// The exchange parameters.
    pub fn xy_params(&self) -> &XyParams {
        &self.xy
    }

    /// Integrates flux pulses on `coupler` (other channels ignored) and
    /// returns the 4×4 qubit-subspace propagator (qubit `a` = LSB digit).
    pub fn integrate(&self, schedule: &Schedule, coupler: Channel) -> CMat {
        // Exchange generator (XX + YY)/2 and residual ZZ on the qubit
        // subspace, lifted to the two-qutrit space.
        let x = gates::x();
        let y = gates::y();
        let z = gates::z();
        let exchange4 = (&x.kron(&x) + &y.kron(&y)).scale(C64::real(0.5));
        let zz4 = z.kron(&z);
        let exchange = super::twoqubit::lift_qubit_subspace(&exchange4);
        let zz = super::twoqubit::lift_qubit_subspace(&zz4);
        // Anharmonic |2⟩ phases (identical treatment to the CR pair).
        let mut h0 = CMat::zeros(9, 9);
        for idx in 0..9usize {
            let (qa, qb) = (idx % 3, idx / 3);
            let mut e = 0.0;
            if qa == 2 {
                e += TAU * self.a.alpha;
            }
            if qb == 2 {
                e += TAU * self.b.alpha;
            }
            h0[(idx, idx)] = C64::real(e);
        }

        // Rasterize the coupler channel.
        let total = schedule.duration() as usize;
        let mut amp = vec![0.0_f64; total];
        for ti in schedule.instructions() {
            if ti.instruction.channel() != coupler {
                continue;
            }
            if let Instruction::Play { waveform, .. } = &ti.instruction {
                for (k, &s) in waveform.samples().iter().enumerate() {
                    amp[ti.start as usize + k] += s.re;
                }
            }
        }

        let mut u = CMat::identity(9);
        for &a_k in &amp {
            let mut h = h0.clone();
            // opclint: allow(float-literal-eq): exact skip — zero-amplitude samples contribute exactly H0, so the coupling term is omitted
            if a_k != 0.0 {
                // Negative coupling convention so a positive flux pulse yields
                // iSWAP's +i phases (exp(+iθ(XX+YY)/4) at θ = π).
                h = &h + &exchange.scale(C64::real(-TAU * self.xy.g_hz_per_amp * a_k));
                h = &h + &zz.scale(C64::real(TAU * self.xy.zz_hz / 4.0 * a_k.abs()));
            }
            let step = unitary_exp(&h, DT);
            u = &step * &u;
        }
        super::twoqubit::qubit_block_of(&u)
    }
}

/// Calibrated flux pulses for the exchange gates.
#[derive(Clone, Debug)]
pub struct XyCalibration {
    /// Full-iSWAP flux pulse.
    pub iswap: GaussianSquare,
    /// √iSWAP flux pulse ("damped" iSWAP, half the area).
    pub sqrt_iswap: GaussianSquare,
}

impl XyCalibration {
    /// Builds the schedule playing one calibrated pulse on the coupler.
    pub fn schedule(&self, pulse: &GaussianSquare, coupler: Channel) -> Schedule {
        let mut s = Schedule::new("xy");
        s.append(Instruction::Play {
            waveform: pulse.waveform("flux"),
            channel: coupler,
        });
        s
    }
}

/// Tunes up the iSWAP and √iSWAP pulses for a pair: probe the exchange
/// rate, solve the flat-top width for rotation angle π (iSWAP), then damp
/// the area by half for √iSWAP, with a refinement step each.
pub fn calibrate_xy(pair: &XyPair, coupler: Channel) -> XyCalibration {
    let amp = 0.25;
    let sigma = 16.0;
    let base = GaussianSquare {
        duration: 8 * sigma as u64 + 200,
        amp,
        sigma,
        width: 200,
    };

    // Probe: exchange angle per unit pulse area. The |01⟩→|10⟩ transfer
    // amplitude is sin(θ/2) for exp(−iθ/2(XX+YY)/... ) restricted to the
    // single-excitation subspace.
    let angle_of = |gs: &GaussianSquare| -> f64 {
        let cal = XyCalibration {
            iswap: *gs,
            sqrt_iswap: *gs,
        };
        let u = pair.integrate(&cal.schedule(gs, coupler), coupler);
        // u[2,1] = ⟨10|U|01⟩ = −i·sin(θ) for exchange angle θ (in the
        // convention where iSWAP corresponds to θ = π/2·2 = π… extract via
        // atan2 of transfer vs survival.
        let transfer = u[(2, 1)].abs();
        let survive = u[(1, 1)].abs();
        transfer.atan2(survive)
    };
    let probe_angle = angle_of(&base);
    let probe_area = base.waveform("p").area().re;
    let rad_per_area = probe_angle / probe_area;

    // iSWAP: angle π/2 in this extraction convention corresponds to full
    // population transfer (|01⟩→|10⟩). Solve, then refine once.
    let target = std::f64::consts::FRAC_PI_2;
    let mut area = target / rad_per_area;
    let edge = GaussianSquare {
        width: 0,
        duration: 8 * sigma as u64,
        ..base
    };
    let edge_area = edge.waveform("e").area().re;
    let mk = |area: f64| -> GaussianSquare {
        let width = ((area - edge_area) / amp).max(0.0).round() as u64;
        GaussianSquare {
            duration: 8 * sigma as u64 + width,
            amp,
            sigma,
            width,
        }
    };
    for _ in 0..2 {
        let got = angle_of(&mk(area));
        if got > 1e-9 {
            area *= target / got;
        }
    }
    let iswap = mk(area);
    let sqrt_iswap = iswap.stretched_area(0.5);

    XyCalibration { iswap, sqrt_iswap }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> XyPair {
        XyPair::new(
            TransmonParams::almaden_like(),
            TransmonParams::almaden_like(),
            XyParams::tunable_like(),
        )
    }

    #[test]
    fn calibrated_iswap_matches_gate() {
        let p = pair();
        let coupler = Channel::Control(0);
        let cal = calibrate_xy(&p, coupler);
        let u = p.integrate(&cal.schedule(&cal.iswap, coupler), coupler);
        let diff = u.phase_invariant_diff(&gates::iswap());
        assert!(diff < 0.05, "iSWAP diff = {diff}");
    }

    #[test]
    fn damped_pulse_gives_sqrt_iswap() {
        // The paper's core claim for this family: halving the pulse area
        // gives √iSWAP.
        let p = pair();
        let coupler = Channel::Control(0);
        let cal = calibrate_xy(&p, coupler);
        let u = p.integrate(&cal.schedule(&cal.sqrt_iswap, coupler), coupler);
        let diff = u.phase_invariant_diff(&gates::sqrt_iswap());
        assert!(diff < 0.05, "√iSWAP diff = {diff}");
        // And two of them compose back to the full iSWAP.
        let two = &u * &u;
        assert!(two.phase_invariant_diff(&gates::iswap()) < 0.1);
    }

    #[test]
    fn sqrt_iswap_is_half_the_duration_of_two_iswap_uses() {
        // Cost accounting behind Table 2: a √iSWAP pulse is about half an
        // iSWAP pulse, so "2 × √iSWAP" costs what one iSWAP does.
        let p = pair();
        let coupler = Channel::Control(0);
        let cal = calibrate_xy(&p, coupler);
        let full = cal.iswap.duration;
        let half = cal.sqrt_iswap.duration;
        assert!(
            (2 * half) as f64 <= 1.3 * full as f64 + 2.0 * 8.0 * 16.0,
            "2×√iSWAP ≈ iSWAP + one extra set of edges: {half}·2 vs {full}"
        );
        assert!(half < full);
    }

    #[test]
    fn exchange_preserves_excitation_number() {
        let p = pair();
        let coupler = Channel::Control(0);
        let cal = calibrate_xy(&p, coupler);
        let u = p.integrate(&cal.schedule(&cal.iswap, coupler), coupler);
        // |00⟩ and |11⟩ are (phase-)invariant under exchange.
        assert!((u[(0, 0)].abs() - 1.0).abs() < 0.02);
        assert!((u[(3, 3)].abs() - 1.0).abs() < 0.05);
        assert!(u[(1, 0)].abs() < 0.05);
    }
}
