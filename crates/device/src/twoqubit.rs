//! Pulse-level integration of a coupled transmon pair under
//! cross-resonance drive.
//!
//! We use the effective-Hamiltonian model of Magesan & Gambetta
//! (arXiv:1804.04073), which the paper's own §5–6 analysis is phrased in:
//! driving the *control* qubit at the *target's* frequency produces
//!
//! ```text
//! H_eff(t)/ħ = 2π·a(t)·( zx/2·Z⊗X + ix/2·I⊗X + zi/2·Z⊗I ) + 2π·zz/4·Z⊗Z
//! ```
//!
//! with rates proportional to the control-channel amplitude `a(t)`. The
//! spurious IX and ZI terms are what forces the "echoed" CR construction
//! (two half pulses of opposite sign separated by an X on the control): the
//! echo flips the sign of every Z⊗·-conditioned term while the amplitude
//! sign flip restores ZX and cancels IX.
//!
//! Single-qubit drive pulses on the pair's drive channels are integrated in
//! the same pass (two-level per qubit; leakage is handled by the executor's
//! surrogate channel), so a complete CNOT pulse schedule — CR halves, echo
//! X pulses, target Rx90, virtual-Z frames — evolves as one 4×4 propagator.

use crate::params::{CrParams, TransmonParams, DT};
use quant_math::{mul9_into, unitary_exp9_into, CMat, PropagatorScratch, C64};
use quant_pulse::{Channel, Instruction, Schedule};
use quant_sim::gates;
use std::collections::BTreeMap;
use std::f64::consts::TAU;

/// Result of integrating a two-qubit pulse schedule.
#[derive(Clone, Debug)]
pub struct PairFrameResult {
    /// 4×4 qubit-subspace block of the propagator, with the **control
    /// qubit as the least-significant digit** (matching
    /// [`quant_sim::gates::cr`]), excluding trailing frame corrections.
    /// Slightly sub-unitary when population leaks to the |2⟩ levels; the
    /// executor restores trace preservation with a Kraus completion.
    pub unitary: CMat,
    /// The full 9×9 two-qutrit propagator (control digit base-3 LSB).
    pub full_unitary: CMat,
    /// Leftover frame phase on the control qubit's drive channel.
    pub control_frame: f64,
    /// Leftover frame phase on the target qubit's drive channel.
    pub target_frame: f64,
    /// Total duration in `dt` samples.
    pub duration: u64,
}

impl PairFrameResult {
    /// The propagator with both leftover virtual-Z frames realized
    /// (`Rz(−φ)` on each qubit).
    pub fn corrected_unitary(&self) -> CMat {
        let rz_c = rz_phase(-self.control_frame);
        let rz_t = rz_phase(-self.target_frame);
        // Control is digit 0 (LSB) → kron(target_op, control_op).
        let corr = rz_t.kron(&rz_c);
        &corr * &self.unitary
    }
}

/// diag(1, e^{iθ}) — Rz(θ) up to global phase.
fn rz_phase(theta: f64) -> CMat {
    CMat::diag(&[C64::ONE, C64::cis(theta)])
}

/// Extracts the ZX rotation angle from a (possibly contaminated) CR
/// propagator (control = LSB): the X-rotation angles of the control-|0⟩ and
/// control-|1⟩ blocks differ by `2·θ_zx`.
pub fn extract_zx_angle(u: &CMat) -> f64 {
    let block_angle = |c: usize| -> f64 {
        let b00 = u[(c, c)];
        let b01 = u[(c, 2 + c)];
        // b ∝ Rx(θ): b01/b00 = −i·tan(θ/2).
        let r = b01 / b00;
        2.0 * (C64::I * r).re.atan()
    };
    (block_angle(0) - block_angle(1)) / 2.0
}

/// Extracts the residual control-Z angle φ of a propagator of the form
/// `Rz_c(φ)·CR(θ)` (the surviving ZI term of an echoed CR pulse).
pub fn extract_control_z(u: &CMat, theta: f64) -> f64 {
    let m = u * &gates::cr(theta).dagger();
    // M ≈ diag(1, e^{iφ}, 1, e^{iφ}) up to global phase (control = LSB).
    (m[(1, 1)] / m[(0, 0)]).arg()
}

/// Integrator for one directed, coupled pair.
#[derive(Clone, Debug)]
pub struct CrPair {
    control: TransmonParams,
    target: TransmonParams,
    cr: CrParams,
}

impl CrPair {
    /// Creates the integrator. `control` is the qubit that is physically
    /// driven on the control channel.
    pub fn new(control: TransmonParams, target: TransmonParams, cr: CrParams) -> Self {
        CrPair {
            control,
            target,
            cr,
        }
    }

    /// The CR parameters.
    pub fn cr_params(&self) -> &CrParams {
        &self.cr
    }

    /// The control qubit's transmon parameters.
    pub fn control_params(&self) -> &TransmonParams {
        &self.control
    }

    /// The target qubit's transmon parameters.
    pub fn target_params(&self) -> &TransmonParams {
        &self.target
    }

    /// Integrates a two-qubit schedule.
    ///
    /// * `control_drive` / `target_drive` — the drive channels of the two
    ///   qubits (resonant single-qubit pulses).
    /// * `cr_channel` — the control channel carrying CR pulses.
    ///
    /// Pulses are processed in start-time order; overlapping `Play`s on
    /// different channels are integrated jointly sample-by-sample. Runs of
    /// bitwise-identical drive samples — the flat top of a `GaussianSquare`
    /// CR pulse, delays, dead time between pulses — have a constant
    /// Hamiltonian, so the whole run is advanced with a single
    /// `exp(-i·H·m·dt)` (one scaling-and-squaring pass, `O(log m)` products)
    /// instead of `m` per-sample exponentials. Echoed-CR schedules are
    /// mostly flat top, which makes this the difference between the
    /// trajectory executor being integration-bound or not.
    pub fn integrate(
        &self,
        schedule: &Schedule,
        control_drive: Channel,
        target_drive: Channel,
        cr_channel: Channel,
    ) -> PairFrameResult {
        self.integrate_impl(schedule, control_drive, target_drive, cr_channel, true)
    }

    /// The reference integrator: one exponential and one product per
    /// sample, with no constant-run compression. Bitwise-faithful to the
    /// original per-sample loop; kept as the equivalence-test and perfsuite
    /// baseline (compressed runs regroup the floating-point products, so
    /// [`CrPair::integrate`] agrees only to integrator tolerance).
    pub fn integrate_ref(
        &self,
        schedule: &Schedule,
        control_drive: Channel,
        target_drive: Channel,
        cr_channel: Channel,
    ) -> PairFrameResult {
        self.integrate_impl(schedule, control_drive, target_drive, cr_channel, false)
    }

    fn integrate_impl(
        &self,
        schedule: &Schedule,
        control_drive: Channel,
        target_drive: Channel,
        cr_channel: Channel,
        compress: bool,
    ) -> PairFrameResult {
        // Collect, per channel, the (start, waveform) plays plus frame
        // bookkeeping in time order.
        let mut frames: BTreeMap<Channel, f64> = BTreeMap::new();
        frames.insert(control_drive, 0.0);
        frames.insert(target_drive, 0.0);
        frames.insert(cr_channel, 0.0);

        // Rasterize all three channels into complex per-sample drives.
        let total = schedule.duration() as usize;
        let mut drive_c = vec![C64::ZERO; total];
        let mut drive_t = vec![C64::ZERO; total];
        let mut drive_u = vec![C64::ZERO; total];

        for ti in schedule.instructions() {
            let ch = ti.instruction.channel();
            if !frames.contains_key(&ch) {
                continue;
            }
            match &ti.instruction {
                Instruction::ShiftPhase { phase, .. } => {
                    if let Some(frame) = frames.get_mut(&ch) {
                        *frame += phase;
                    }
                }
                Instruction::Play { waveform, .. } => {
                    let phase = frames[&ch];
                    let rot = C64::cis(phase);
                    let buf: &mut Vec<C64> = if ch == control_drive {
                        &mut drive_c
                    } else if ch == target_drive {
                        &mut drive_t
                    } else {
                        &mut drive_u
                    };
                    for (k, &s) in waveform.samples().iter().enumerate() {
                        buf[ti.start as usize + k] += s * rot;
                    }
                }
                // Frequency shifts are not meaningful in the effective CR
                // model; delays/acquires just occupy time.
                _ => {}
            }
        }

        // Static + per-sample Hamiltonian assembly in the full 3⊗3 space
        // (index = control + 3·target). The qubits' drives see the complete
        // 3-level ladder, so the calibrated DRAG/detuning/phase corrections
        // mean exactly the same thing here as in the single-qubit
        // integrator; the effective CR terms act on the qubit subspace.
        let x = gates::x();
        let y = gates::y();
        let z = gates::z();
        let id = CMat::identity(2);
        // Qubit-subspace generators embedded into 9×9.
        let e9 = |m4: &CMat| lift_qubit_subspace(m4);
        let zx = e9(&x.kron(&z));
        let zy = e9(&y.kron(&z));
        let ix = e9(&x.kron(&id));
        let iy = e9(&y.kron(&id));
        let zi = e9(&id.kron(&z));
        let zz = e9(&z.kron(&z));
        // 3-level drive quadratures on each qutrit digit.
        let (xc3, yc3) = drive_quadratures_on(0);
        let (xt3, yt3) = drive_quadratures_on(1);
        // Anharmonicity of each qutrit.
        let mut h0 = CMat::zeros(9, 9);
        for idx in 0..9usize {
            let (c, t) = (idx % 3, idx / 3);
            let mut e = 0.0;
            if c == 2 {
                e += TAU * self.control.alpha;
            }
            if t == 2 {
                e += TAU * self.target.alpha;
            }
            h0[(idx, idx)] = C64::real(e);
        }

        let om_c = TAU * self.control.rabi_hz_per_amp;
        let om_t = TAU * self.target.rabi_hz_per_amp;
        let zz_static = TAU * self.cr.zz_static_hz / 4.0;

        // The drive-free part of H is constant: assemble it once.
        let mut h_static = h0;
        h_static.add_scaled_assign(&zz, C64::real(zz_static));

        let om_u_x = TAU * self.cr.zx_hz_per_amp / 2.0;
        let om_u_ix = TAU * self.cr.ix_hz_per_amp / 2.0;
        let om_u_zi = TAU * self.cr.zi_hz_per_amp / 2.0;

        let u = if compress {
            // Fast path: the whole propagation runs on 9×9 stack arrays
            // (the two-qutrit analogue of the qutrit `expm3` route), and
            // runs of bitwise-identical drive samples advance with a single
            // `exp(-i·H·m·dt)`.
            let to9 = |m: &CMat| -> [C64; 81] {
                let mut a = [C64::ZERO; 81];
                a.copy_from_slice(m.as_slice());
                a
            };
            let hs9 = to9(&h_static);
            let (zx9, zy9, ix9, iy9, zi9) = (to9(&zx), to9(&zy), to9(&ix), to9(&iy), to9(&zi));
            let (xc9, yc9, xt9, yt9) = (to9(&xc3), to9(&yc3), to9(&xt3), to9(&yt3));
            let axpy = |y: &mut [C64; 81], x: &[C64; 81], s: f64| {
                let k = C64::real(s);
                for (yv, &xv) in y.iter_mut().zip(x) {
                    *yv += xv * k;
                }
            };
            let mut h9 = [C64::ZERO; 81];
            let mut next9 = [C64::ZERO; 81];
            let mut u9 = [C64::ZERO; 81];
            for i in 0..9 {
                u9[10 * i] = C64::ONE;
            }
            // Step-propagator memo: schedules repeat drive samples exactly
            // (the echo X pulse plays twice, pulse edges rise and fall
            // through mirrored values), and `exp` is a pure function of the
            // drive triple and the run length, so repeats are a lookup
            // keyed on the sample bit patterns instead of a fresh
            // exponential. Bitwise-conservative: a miss only costs the
            // exponential we would have computed anyway.
            let mut memo: BTreeMap<([u64; 6], u32), usize> = BTreeMap::new();
            let mut steps: Vec<[C64; 81]> = Vec::new();
            let mut k = 0usize;
            while k < total {
                let dc = drive_c[k];
                let dt_ = drive_t[k];
                let du = drive_u[k];
                // Constant-drive run starting at `k`: flat pulse tops,
                // delays and dead time all have a constant Hamiltonian.
                let mut run = 1usize;
                while k + run < total
                    && drive_c[k + run] == dc
                    && drive_t[k + run] == dt_
                    && drive_u[k + run] == du
                {
                    run += 1;
                }
                let key = (
                    [
                        dc.re.to_bits(),
                        dc.im.to_bits(),
                        dt_.re.to_bits(),
                        dt_.im.to_bits(),
                        du.re.to_bits(),
                        du.im.to_bits(),
                    ],
                    run as u32,
                );
                let idx = match memo.get(&key) {
                    Some(&i) => i,
                    None => {
                        h9.copy_from_slice(&hs9);
                        if dc != C64::ZERO {
                            axpy(&mut h9, &xc9, om_c / 2.0 * dc.re);
                            axpy(&mut h9, &yc9, om_c / 2.0 * dc.im);
                        }
                        if dt_ != C64::ZERO {
                            axpy(&mut h9, &xt9, om_t / 2.0 * dt_.re);
                            axpy(&mut h9, &yt9, om_t / 2.0 * dt_.im);
                        }
                        if du != C64::ZERO {
                            axpy(&mut h9, &zx9, om_u_x * du.re);
                            axpy(&mut h9, &zy9, om_u_x * du.im);
                            axpy(&mut h9, &ix9, om_u_ix * du.re);
                            axpy(&mut h9, &iy9, om_u_ix * du.im);
                            // The ZI term is the control's own AC-Stark
                            // shift: it scales with the drive *power
                            // envelope* (phase- and sign-independent),
                            // which is exactly why the echo's X flip
                            // refocuses it.
                            axpy(&mut h9, &zi9, om_u_zi * du.abs());
                        }
                        let mut step9 = [C64::ZERO; 81];
                        unitary_exp9_into(&h9, DT * run as f64, &mut step9);
                        steps.push(step9);
                        memo.insert(key, steps.len() - 1);
                        steps.len() - 1
                    }
                };
                mul9_into(&steps[idx], &u9, &mut next9);
                std::mem::swap(&mut u9, &mut next9);
                k += run;
            }
            let mut u = CMat::zeros(9, 9);
            u.as_mut_slice().copy_from_slice(&u9);
            u
        } else {
            // Reference path: the original per-sample heap-matrix loop —
            // a copy + a handful of AXPYs + one Taylor propagator per
            // sample, with no heap allocation after warm-up.
            let mut h = CMat::zeros(9, 9);
            let mut step = CMat::zeros(9, 9);
            let mut next = CMat::zeros(9, 9);
            let mut scratch = PropagatorScratch::new(9);

            let mut u = CMat::identity(9);
            for k in 0..total {
                let dc = drive_c[k];
                let dt_ = drive_t[k];
                let du = drive_u[k];
                h.copy_from(&h_static);
                if dc != C64::ZERO {
                    h.add_scaled_assign(&xc3, C64::real(om_c / 2.0 * dc.re));
                    h.add_scaled_assign(&yc3, C64::real(om_c / 2.0 * dc.im));
                }
                if dt_ != C64::ZERO {
                    h.add_scaled_assign(&xt3, C64::real(om_t / 2.0 * dt_.re));
                    h.add_scaled_assign(&yt3, C64::real(om_t / 2.0 * dt_.im));
                }
                if du != C64::ZERO {
                    h.add_scaled_assign(&zx, C64::real(om_u_x * du.re));
                    h.add_scaled_assign(&zy, C64::real(om_u_x * du.im));
                    h.add_scaled_assign(&ix, C64::real(om_u_ix * du.re));
                    h.add_scaled_assign(&iy, C64::real(om_u_ix * du.im));
                    h.add_scaled_assign(&zi, C64::real(om_u_zi * du.abs()));
                }
                scratch.unitary_exp_into(&h, DT, &mut step);
                step.mul_into(&u, &mut next);
                std::mem::swap(&mut u, &mut next);
            }
            u
        };

        PairFrameResult {
            unitary: qubit_block_of(&u),
            full_unitary: u,
            control_frame: frames[&control_drive],
            target_frame: frames[&target_drive],
            duration: schedule.duration(),
        }
    }
}

/// Lifts a 4×4 qubit-subspace operator (control = base-2 LSB) into the
/// 9×9 two-qutrit space (control = base-3 LSB), zero outside the subspace.
pub fn lift_qubit_subspace(m4: &CMat) -> CMat {
    let mut out = CMat::zeros(9, 9);
    let map = |i4: usize| -> usize { (i4 % 2) + 3 * (i4 / 2) };
    for r in 0..4 {
        for c in 0..4 {
            out[(map(r), map(c))] = m4[(r, c)];
        }
    }
    out
}

/// The drive quadrature generators `(a† + a)` and `i(a† − a)`-style on one
/// qutrit digit (0 = control, 1 = target) of the 9-dim space, with ladder
/// elements 1, √2.
fn drive_quadratures_on(digit: usize) -> (CMat, CMat) {
    let mut a = CMat::zeros(3, 3);
    a[(0, 1)] = C64::ONE;
    a[(1, 2)] = C64::real(std::f64::consts::SQRT_2);
    let adag = a.dagger();
    // H_x = (a† + a), H_y couples with the imaginary part: for d = dx + i·dy,
    // H = (d·a† + d̄·a)/… → split: dx·(a†+a) + dy·i(a† − a).
    let hx3 = &adag + &a;
    let hy3 = (&adag - &a).scale(C64::imag(1.0));
    let id3 = CMat::identity(3);
    if digit == 0 {
        (id3.kron(&hx3), id3.kron(&hy3))
    } else {
        (hx3.kron(&id3), hy3.kron(&id3))
    }
}

/// Extracts the 4×4 qubit-subspace block of a 9×9 two-qutrit operator.
pub fn qubit_block_of(u9: &CMat) -> CMat {
    let map = |i4: usize| -> usize { (i4 % 2) + 3 * (i4 / 2) };
    CMat::from_fn(4, 4, |r, c| u9[(map(r), map(c))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::unitary_exp;
    use quant_pulse::GaussianSquare;
    use std::f64::consts::FRAC_PI_2;

    fn pair() -> CrPair {
        CrPair::new(
            TransmonParams::almaden_like(),
            TransmonParams::almaden_like(),
            CrParams::almaden_like(),
        )
    }

    /// A CR flat-top pulse whose ZX area is θ (rad) for the given pair.
    fn cr_pulse(p: &CrPair, theta: f64, amp: f64) -> GaussianSquare {
        // θ = 2π·zx·amp·t → t = θ / (2π·zx·amp); subtract the edge area.
        let sigma = 20.0;
        let base = GaussianSquare {
            duration: 2 * ((4.0 * sigma) as u64),
            amp,
            sigma,
            width: 0,
        };
        let edge_area_dt = base.waveform("e").area().re; // in amp·dt
        let target_area_s = theta / (TAU * p.cr.zx_hz_per_amp * 1.0); // amp·s for unit... careful
        let target_area_dt = target_area_s / DT; // in amp·dt units (amp=1)
        let width = ((target_area_dt - edge_area_dt) / amp).max(0.0).round() as u64;
        GaussianSquare {
            duration: base.duration + width,
            amp,
            sigma,
            width,
        }
    }

    fn play(s: &mut Schedule, w: quant_pulse::Waveform, ch: Channel) {
        s.append(Instruction::Play {
            waveform: w,
            channel: ch,
        });
    }

    #[test]
    fn plain_cr_pulse_has_spurious_terms() {
        // A single (un-echoed) CR pulse deviates from pure exp(-iθ/2 ZX)
        // because of the IX and ZI terms.
        let p = pair();
        let gs = cr_pulse(&p, FRAC_PI_2, 0.3);
        let mut s = Schedule::new("plain");
        play(&mut s, gs.waveform("cr"), Channel::Control(0));
        let r = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let ideal = gates::cr(FRAC_PI_2);
        assert!(
            r.unitary.phase_invariant_diff(&ideal) > 0.05,
            "spurious terms should be visible"
        );
    }

    /// Distance to `Rz_c(φ)·CR(θ)` minimized over the control-Z angle φ —
    /// the surviving ZI term of an echoed CR commutes with ZX and is
    /// absorbed by a virtual-Z in real calibrations.
    fn diff_up_to_control_z(u: &CMat, theta: f64) -> f64 {
        let mut best = f64::INFINITY;
        for k in 0..720 {
            let phi = k as f64 / 720.0 * std::f64::consts::TAU;
            let rz_c = CMat::identity(2).kron(&rz_phase(phi));
            let cand = &rz_c * &gates::cr(theta);
            best = best.min(u.phase_invariant_diff(&cand));
        }
        best
    }

    #[test]
    fn echoed_cr_cancels_ix_term() {
        // CR(θ/2)⁺ | X_c | CR(θ/2)⁻ | X_c  ≈  Rz_c(φ)·CR(θ): the echo
        // cancels IX; the surviving ZI is a pure control-Z.
        let p = pair();
        let theta = FRAC_PI_2;
        let amp = 0.3;
        let gs = cr_pulse(&p, theta / 2.0, amp);
        let xc = x_pulse(&p.control);
        let barrier = [Channel::Drive(0), Channel::Control(0)];

        let mut s = Schedule::new("echo");
        let steps: Vec<(quant_pulse::Waveform, Channel)> = vec![
            (gs.waveform("cr+"), Channel::Control(0)),
            (xc.clone(), Channel::Drive(0)),
            (gs.waveform("cr-").scaled(-1.0), Channel::Control(0)),
            (xc, Channel::Drive(0)),
        ];
        for (w, ch) in steps {
            s.append_after(
                Instruction::Play {
                    waveform: w,
                    channel: ch,
                },
                &barrier,
            );
        }
        let r = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let echoed = diff_up_to_control_z(&r.unitary, theta);

        // Compare with a single un-echoed pulse of the full area.
        let plain_gs = cr_pulse(&p, theta, amp);
        let mut plain = Schedule::new("plain");
        play(&mut plain, plain_gs.waveform("cr"), Channel::Control(0));
        let rp = p.integrate(
            &plain,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let unechoed = diff_up_to_control_z(&rp.unitary, theta);

        assert!(
            echoed < 0.05,
            "echoed CR residual = {echoed} (unechoed {unechoed})"
        );
        assert!(
            echoed < unechoed * 0.5,
            "echo should beat no-echo: {echoed} vs {unechoed}"
        );
    }

    /// Resonant π pulse on a drive channel.
    fn x_pulse(q: &TransmonParams) -> quant_pulse::Waveform {
        let amp = 0.2;
        let sigma = 20.0_f64;
        let dur = (8.0 * sigma) as u64;
        let w = quant_pulse::Gaussian {
            duration: dur,
            amp,
            sigma,
        }
        .waveform("x");
        // Rescale to exact π area.
        let area_s = w.area().re * DT;
        let theta = TAU * q.rabi_hz_per_amp * area_s;
        w.scaled(std::f64::consts::PI / theta)
    }

    #[test]
    fn x_pulse_flips_control() {
        let p = pair();
        let mut s = Schedule::new("x");
        play(&mut s, x_pulse(&p.control), Channel::Drive(0));
        let r = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        // X on control = kron(I_target, X_control). The helper pulse is
        // deliberately uncalibrated (no DRAG/detuning), so the 3-level
        // physics leaves a visible Stark phase error; calibrated pulses
        // are covered by the calibration tests.
        let expect = CMat::identity(2).kron(&gates::x());
        let diff = r.unitary.phase_invariant_diff(&expect);
        assert!(diff < 0.08, "control X diff = {diff}");
    }

    #[test]
    fn target_drive_rotates_target() {
        let p = pair();
        let mut s = Schedule::new("xt");
        play(&mut s, x_pulse(&p.target), Channel::Drive(1));
        let r = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let expect = gates::x().kron(&CMat::identity(2));
        // Uncalibrated helper pulse: see `x_pulse_flips_control`.
        assert!(r.unitary.phase_invariant_diff(&expect) < 0.08);
    }

    #[test]
    fn stretching_cr_scales_angle() {
        // Twice the flat-top area → twice the ZX angle.
        let p = pair();
        let amp = 0.25;
        let gs = cr_pulse(&p, 0.5, amp);
        let doubled = gs.stretched_area(2.0);
        let measure = |g: &GaussianSquare| -> f64 {
            let mut s = Schedule::new("cr");
            play(&mut s, g.waveform("w"), Channel::Control(0));
            let r = p.integrate(
                &s,
                Channel::Drive(0),
                Channel::Drive(1),
                Channel::Control(0),
            );
            extract_zx_angle(&r.unitary)
        };
        let theta1 = measure(&gs);
        let theta2 = measure(&doubled);
        assert!((theta1 - 0.5).abs() < 0.03, "θ₁ = {theta1}");
        assert!((theta2 - 1.0).abs() < 0.06, "θ₂ = {theta2}");
        assert!((theta2 / theta1 - 2.0).abs() < 0.05);
    }

    #[test]
    fn compressed_integration_matches_per_sample_reference() {
        // The echoed-CR schedule is the worst case the executor feeds the
        // integrator: long flat tops (compressed into single exponentials)
        // interleaved with Gaussian edges (stepped per sample). Fast and
        // reference routes must agree to integrator tolerance on the full
        // 9×9 propagator, not just the qubit block.
        let p = pair();
        let theta = FRAC_PI_2;
        let gs = cr_pulse(&p, theta / 2.0, 0.3);
        let xc = x_pulse(&p.control);
        let barrier = [Channel::Drive(0), Channel::Control(0)];
        let mut s = Schedule::new("echo");
        let steps: Vec<(quant_pulse::Waveform, Channel)> = vec![
            (gs.waveform("cr+"), Channel::Control(0)),
            (xc.clone(), Channel::Drive(0)),
            (gs.waveform("cr-").scaled(-1.0), Channel::Control(0)),
            (xc, Channel::Drive(0)),
        ];
        for (w, ch) in steps {
            s.append_after(
                Instruction::Play {
                    waveform: w,
                    channel: ch,
                },
                &barrier,
            );
        }
        let fast = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let slow = p.integrate_ref(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        let d = fast.full_unitary.max_abs_diff(&slow.full_unitary);
        assert!(d < 1e-9, "compressed vs per-sample diff = {d:e}");
        assert_eq!(fast.duration, slow.duration);
        assert_eq!(fast.control_frame, slow.control_frame);
        assert_eq!(fast.target_frame, slow.target_frame);
    }

    #[test]
    fn frame_phase_on_control_channel_rotates_cr_axis() {
        // ShiftPhase(π/2) on the CR channel turns ZX into ZY. Use a pure-ZX
        // pair to isolate the frame behaviour.
        let p = CrPair::new(
            TransmonParams::almaden_like(),
            TransmonParams::almaden_like(),
            CrParams::pure_zx(2.4e6),
        );
        let gs = cr_pulse(&p, FRAC_PI_2, 0.3);
        let mut s = Schedule::new("zy");
        s.append(Instruction::ShiftPhase {
            phase: FRAC_PI_2,
            channel: Channel::Control(0),
        });
        play(&mut s, gs.waveform("cr"), Channel::Control(0));
        let r = p.integrate(
            &s,
            Channel::Drive(0),
            Channel::Drive(1),
            Channel::Control(0),
        );
        // ZY generator: kron(y, z).
        let gen = gates::y().kron(&gates::z());
        let ideal = unitary_exp(&gen.scale(C64::real(0.5)), FRAC_PI_2);
        let d_zy = r.unitary.phase_invariant_diff(&ideal);
        assert!(d_zy < 0.02, "ZY diff = {d_zy}");
    }
}
