//! The simulated backend: qubits, coupling map, noise and drift.
//!
//! [`DeviceModel`] is the stand-in for IBM's Almaden/Armonk hardware. It
//! owns the *true* physical parameters (which the calibration experiments
//! estimate with finite precision) and the *drifted* parameters in effect
//! at execution time (the paper's jobs ran up to 24 h after the daily
//! calibration). The gap between calibrated pulses and drifted physics is
//! what produces §8.3's "calibration error susceptibility".

use crate::cache::PulseCache;
use crate::params::{CrParams, DriftParams, ReadoutParams, TransmonParams};
use crate::transmon::Transmon;
use crate::twoqubit::CrPair;
use quant_math::normal;
use quant_pulse::{Channel, VerifySpec};
use rand::Rng;
use std::sync::Arc;

/// A directed coupled pair with its CR interaction strengths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CouplingEdge {
    /// Control qubit (physically driven at the target's frequency).
    pub control: u32,
    /// Target qubit.
    pub target: u32,
    /// Effective CR interaction parameters.
    pub cr: CrParams,
}

/// The simulated device.
#[derive(Clone, Debug)]
pub struct DeviceModel {
    qubits: Vec<TransmonParams>,
    edges: Vec<CouplingEdge>,
    readout: Vec<ReadoutParams>,
    drift: DriftParams,
    /// Execution-time multiplicative drift of each qubit's Rabi rate
    /// (1 + ε); the calibration saw a rate of exactly `qubits[q]`.
    rabi_drift: Vec<f64>,
    /// Execution-time multiplicative drift of each edge's ZX rate.
    zx_drift: Vec<f64>,
    /// 1σ of the per-pulse-application additive amplitude jitter (control
    /// electronics noise floor, in absolute amplitude units).
    pulse_amp_jitter: f64,
    /// Residual excited-state population after reset (thermal SPAM error).
    reset_excited_prob: f64,
    /// Memo table for integrated pulse propagators. Shared (not deep-
    /// copied) across clones; keys are content-addressed over the drifted
    /// physics, so sharing can only trade hits for misses, never
    /// correctness.
    pulse_cache: Arc<PulseCache>,
}

impl DeviceModel {
    /// Builds an Almaden-like linear chain of `n` qubits with directed CR
    /// edges `(i → i+1)` and `(i+1 → i)`, small seeded parameter spread,
    /// and execution-time drift drawn from [`DriftParams::almaden_like`].
    pub fn almaden_like(n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 1, "device needs at least one qubit");
        let base = TransmonParams::almaden_like();
        let qubits: Vec<TransmonParams> = (0..n)
            .map(|_| {
                let t1 = (base.t1 * (1.0 + normal(rng, 0.0, 0.15))).max(20e-6);
                TransmonParams {
                    f01: base.f01 + normal(rng, 0.0, 40e6),
                    alpha: base.alpha + normal(rng, 0.0, 5e6),
                    rabi_hz_per_amp: base.rabi_hz_per_amp * (1.0 + normal(rng, 0.0, 0.03)),
                    t1,
                    t2: (base.t2 * (1.0 + normal(rng, 0.0, 0.15))).clamp(10e-6, 2.0 * t1),
                }
            })
            .collect();
        let cr_base = CrParams::almaden_like();
        let mut edges = Vec::new();
        for i in 0..n.saturating_sub(1) {
            for (c, t) in [(i as u32, i as u32 + 1), (i as u32 + 1, i as u32)] {
                edges.push(CouplingEdge {
                    control: c,
                    target: t,
                    cr: CrParams {
                        zx_hz_per_amp: cr_base.zx_hz_per_amp * (1.0 + normal(rng, 0.0, 0.05)),
                        ..cr_base
                    },
                });
            }
        }
        let readout = vec![ReadoutParams::almaden_like(); n];
        let drift = DriftParams::almaden_like();
        let mut model = DeviceModel {
            qubits,
            edges,
            readout,
            drift,
            rabi_drift: vec![1.0; n],
            zx_drift: Vec::new(),
            pulse_amp_jitter: 6.0e-4,
            reset_excited_prob: 0.012,
            pulse_cache: Arc::new(PulseCache::new()),
        };
        model.zx_drift = vec![1.0; model.edges.len()];
        model.redraw_drift(rng);
        model
    }

    /// Builds an Almaden-like device over an arbitrary undirected coupling
    /// topology: each undirected edge becomes two directed CR edges. Use
    /// with the compiler's routing pass for lattice devices.
    pub fn with_topology(n: usize, undirected_edges: &[(u32, u32)], rng: &mut impl Rng) -> Self {
        let mut model = DeviceModel::almaden_like(n.max(1), rng);
        let cr_base = CrParams::almaden_like();
        model.edges.clear();
        for &(a, b) in undirected_edges {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
            for (c, t) in [(a, b), (b, a)] {
                model.edges.push(CouplingEdge {
                    control: c,
                    target: t,
                    cr: CrParams {
                        zx_hz_per_amp: cr_base.zx_hz_per_amp * (1.0 + normal(rng, 0.0, 0.05)),
                        ..cr_base
                    },
                });
            }
        }
        model.zx_drift = vec![1.0; model.edges.len()];
        model.redraw_drift(rng);
        model
    }

    /// Single-qubit Armonk-like device.
    pub fn armonk_like(rng: &mut impl Rng) -> Self {
        let mut m = DeviceModel {
            qubits: vec![TransmonParams::armonk_like()],
            edges: Vec::new(),
            readout: vec![ReadoutParams::almaden_like()],
            drift: DriftParams::almaden_like(),
            rabi_drift: vec![1.0],
            zx_drift: Vec::new(),
            pulse_amp_jitter: 6.0e-4,
            reset_excited_prob: 0.012,
            pulse_cache: Arc::new(PulseCache::new()),
        };
        m.redraw_drift(rng);
        m
    }

    /// A noiseless device: no drift, no jitter, no decoherence (T1/T2 set
    /// astronomically long), perfect readout. Pulse physics (leakage,
    /// spurious CR terms) remains.
    pub fn ideal(n: usize) -> Self {
        let base = TransmonParams {
            t1: 1.0,
            t2: 1.0,
            ..TransmonParams::almaden_like()
        };
        let cr = CrParams::almaden_like();
        let mut edges = Vec::new();
        for i in 0..n.saturating_sub(1) {
            for (c, t) in [(i as u32, i as u32 + 1), (i as u32 + 1, i as u32)] {
                edges.push(CouplingEdge {
                    control: c,
                    target: t,
                    cr,
                });
            }
        }
        let zx_len = edges.len();
        DeviceModel {
            qubits: vec![base; n],
            edges,
            readout: vec![
                ReadoutParams {
                    p1_given_0: 0.0,
                    p0_given_1: 0.0,
                    ..ReadoutParams::almaden_like()
                };
                n
            ],
            drift: DriftParams::ideal(),
            rabi_drift: vec![1.0; n],
            zx_drift: vec![1.0; zx_len],
            pulse_amp_jitter: 0.0,
            reset_excited_prob: 0.0,
            pulse_cache: Arc::new(PulseCache::new()),
        }
    }

    /// Redraws the execution-time drift multipliers (a new "job" some hours
    /// after calibration).
    pub fn redraw_drift(&mut self, rng: &mut impl Rng) {
        let sigma = self.drift.total_sigma();
        for d in &mut self.rabi_drift {
            *d = 1.0 + normal(rng, 0.0, sigma);
        }
        for d in &mut self.zx_drift {
            *d = 1.0 + normal(rng, 0.0, sigma);
        }
        // The drifted physics just changed: retire every memoized
        // propagator (their keys embed the old parameter bits and can
        // never be looked up again).
        self.pulse_cache.invalidate();
    }

    /// Overrides the drift model (e.g. for ablation benches).
    pub fn set_drift(&mut self, drift: DriftParams, rng: &mut impl Rng) {
        self.drift = drift;
        self.redraw_drift(rng);
    }

    /// Overrides the per-pulse additive amplitude jitter.
    pub fn set_pulse_amp_jitter(&mut self, jitter: f64) {
        self.pulse_amp_jitter = jitter;
    }

    /// The device's pulse-propagator memo table.
    pub fn pulse_cache(&self) -> &PulseCache {
        &self.pulse_cache
    }

    /// Enables or disables pulse-propagator memoization.
    pub fn set_pulse_cache_enabled(&self, enabled: bool) {
        self.pulse_cache.set_enabled(enabled);
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Calibration-time parameters of qubit `q`.
    pub fn qubit(&self, q: u32) -> &TransmonParams {
        &self.qubits[q as usize]
    }

    /// Readout model of qubit `q`.
    pub fn readout(&self, q: u32) -> &ReadoutParams {
        &self.readout[q as usize]
    }

    /// Drift model.
    pub fn drift(&self) -> &DriftParams {
        &self.drift
    }

    /// Per-pulse additive amplitude jitter (1σ).
    pub fn pulse_amp_jitter(&self) -> f64 {
        self.pulse_amp_jitter
    }

    /// Residual excited-state population after reset (thermal SPAM error).
    pub fn reset_excited_prob(&self) -> f64 {
        self.reset_excited_prob
    }

    /// Overrides the reset (SPAM) error.
    pub fn set_reset_excited_prob(&mut self, p: f64) {
        self.reset_excited_prob = p;
    }

    /// All directed coupling edges.
    pub fn edges(&self) -> &[CouplingEdge] {
        &self.edges
    }

    /// The control channel carrying CR pulses for the directed pair
    /// `(control, target)`, if they are coupled.
    pub fn control_channel(&self, control: u32, target: u32) -> Option<Channel> {
        self.edges
            .iter()
            .position(|e| e.control == control && e.target == target)
            .map(|k| Channel::Control(k as u32))
    }

    /// The directed pair served by control channel `k`.
    pub fn pair_for_control(&self, k: u32) -> Option<&CouplingEdge> {
        self.edges.get(k as usize)
    }

    /// The static-verification envelope for schedules compiled against
    /// this device: qubit count, coupled control pairs, full-scale
    /// amplitude, and a generous local-oscillator band around the qubit
    /// spectrum (wide enough for the qudit-addressing shifts to f12 and
    /// f02/2, tight enough to catch order-of-magnitude mistakes).
    pub fn verify_spec(&self) -> VerifySpec {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for q in &self.qubits {
            // alpha is negative, so f12 = f01 + alpha sits below f01.
            lo = lo.min(q.f01 + q.alpha.min(0.0));
            hi = hi.max(q.f01 + q.alpha.max(0.0));
        }
        let margin = 0.5e9;
        if !(lo.is_finite() && hi.is_finite()) {
            (lo, hi) = (margin, margin);
        }
        VerifySpec {
            num_qubits: self.qubits.len() as u32,
            control_pairs: self.edges.iter().map(|e| (e.control, e.target)).collect(),
            max_amp: 1.0,
            freq_band: (lo - margin, hi + margin),
            max_freq_shift: 1.0e9,
            align_dt: 1,
        }
    }

    /// Integrator for qubit `q` with **calibration-time** parameters (what
    /// the daily tune-up measures against).
    pub fn transmon_cal(&self, q: u32) -> Transmon {
        Transmon::new(self.qubits[q as usize])
    }

    /// Integrator for qubit `q` with **execution-time (drifted)**
    /// parameters.
    pub fn transmon_exec(&self, q: u32) -> Transmon {
        let mut p = self.qubits[q as usize];
        p.rabi_hz_per_amp *= self.rabi_drift[q as usize];
        Transmon::new(p)
    }

    /// CR-pair integrator for the directed pair, calibration-time.
    pub fn pair_cal(&self, control: u32, target: u32) -> Option<CrPair> {
        self.edges
            .iter()
            .find(|e| e.control == control && e.target == target)
            .map(|e| {
                CrPair::new(
                    self.qubits[e.control as usize],
                    self.qubits[e.target as usize],
                    e.cr,
                )
            })
    }

    /// CR-pair integrator for the directed pair, execution-time (drifted).
    pub fn pair_exec(&self, control: u32, target: u32) -> Option<CrPair> {
        let idx = self
            .edges
            .iter()
            .position(|e| e.control == control && e.target == target)?;
        let e = &self.edges[idx];
        let mut control_p = self.qubits[e.control as usize];
        control_p.rabi_hz_per_amp *= self.rabi_drift[e.control as usize];
        let mut target_p = self.qubits[e.target as usize];
        target_p.rabi_hz_per_amp *= self.rabi_drift[e.target as usize];
        let mut cr = e.cr;
        cr.zx_hz_per_amp *= self.zx_drift[idx];
        Some(CrPair::new(control_p, target_p, cr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;

    #[test]
    fn almaden_topology() {
        let mut rng = seeded(1);
        let d = DeviceModel::almaden_like(5, &mut rng);
        assert_eq!(d.num_qubits(), 5);
        assert_eq!(d.edges().len(), 8); // 4 undirected links × 2 directions
        assert!(d.control_channel(0, 1).is_some());
        assert!(d.control_channel(1, 0).is_some());
        assert!(d.control_channel(0, 2).is_none());
        let ch = d.control_channel(2, 3).unwrap();
        let Channel::Control(k) = ch else {
            panic!("expected control channel")
        };
        let e = d.pair_for_control(k).unwrap();
        assert_eq!((e.control, e.target), (2, 3));
    }

    #[test]
    fn parameter_spread_is_small_but_nonzero() {
        let mut rng = seeded(2);
        let d = DeviceModel::almaden_like(4, &mut rng);
        let f0: Vec<f64> = (0..4).map(|q| d.qubit(q).f01).collect();
        assert!(f0.windows(2).any(|w| (w[0] - w[1]).abs() > 1e3));
        for q in 0..4 {
            let p = d.qubit(q);
            assert!(p.t2 <= 2.0 * p.t1 + 1e-12);
            assert!((p.f01 - 4.97e9).abs() < 0.5e9);
        }
    }

    #[test]
    fn drift_changes_exec_params() {
        let mut rng = seeded(3);
        let d = DeviceModel::almaden_like(2, &mut rng);
        let cal = d.transmon_cal(0).params().rabi_hz_per_amp;
        let exec = d.transmon_exec(0).params().rabi_hz_per_amp;
        assert!(cal != exec, "drift should perturb the Rabi rate");
        assert!((exec / cal - 1.0).abs() < 0.05, "drift should be small");
    }

    #[test]
    fn ideal_device_has_no_drift_or_jitter() {
        let d = DeviceModel::ideal(3);
        assert_eq!(
            d.transmon_cal(1).params().rabi_hz_per_amp,
            d.transmon_exec(1).params().rabi_hz_per_amp
        );
        assert_eq!(d.pulse_amp_jitter(), 0.0);
        assert_eq!(d.readout(0).p1_given_0, 0.0);
    }

    #[test]
    fn custom_topology_edges() {
        let mut rng = seeded(6);
        let d = DeviceModel::with_topology(4, &[(0, 1), (1, 2), (1, 3)], &mut rng);
        assert_eq!(d.edges().len(), 6);
        assert!(d.control_channel(1, 3).is_some());
        assert!(d.control_channel(3, 1).is_some());
        assert!(d.control_channel(0, 2).is_none());
    }

    #[test]
    fn armonk_is_single_qubit() {
        let mut rng = seeded(4);
        let d = DeviceModel::armonk_like(&mut rng);
        assert_eq!(d.num_qubits(), 1);
        assert!(d.edges().is_empty());
    }
}
