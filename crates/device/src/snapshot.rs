//! Persistent calibration snapshots (layer 3 of the calibration fast path).
//!
//! The paper treats the daily tune-up as a reusable artifact: basis gates
//! are calibrated once per epoch and every job reads them from `cmd_def`
//! (§2.3). This module gives the reproduction the same economics. A
//! finished [`Calibration`] is serialized to a small text file keyed by a
//! hash of everything that determines it — the device's physics parameters,
//! the [`CalibrationOptions`], the root RNG seed, and a calibration
//! algorithm version — so repeated experiment, bench and test invocations
//! load the tune-up in milliseconds and only recompute when an input
//! actually changes.
//!
//! **Keying.** [`snapshot_key`] folds, bit-exactly (FNV-1a over `f64::to_bits`
//! words): [`CAL_ALGO_VERSION`]; every qubit's [`TransmonParams`]; every
//! directed edge and its [`CrParams`]; the [`DriftParams`] (whose
//! `cal_amp_sigma` scales the residual-error draws inside the tune-up); the
//! full [`CalibrationOptions`]; and the root seed. The execution-time drift
//! *multipliers* (`rabi_drift`/`zx_drift`) are deliberately excluded:
//! calibration runs against the calibration-time parameters, so two devices
//! differing only in their drift draws share a tune-up — exactly as on
//! hardware, where one daily calibration serves jobs at every drift age.
//!
//! **Staleness.** A snapshot is only valid for the algorithm that produced
//! it. Any change to the calibration draws or search logic must bump
//! [`CAL_ALGO_VERSION`], which retires every existing snapshot. Parse
//! failures (truncated files, older formats) are treated as misses and
//! recomputed, never errors. Floats round-trip through `to_bits` hex, so a
//! loaded calibration is bit-identical to the one that was saved, and the
//! `cmd_def` — a pure function of the loaded parameters — is rebuilt on
//! load rather than stored.
//!
//! **Knob.** `OPC_CAL_CACHE` selects the store directory; unset, it
//! defaults to `opc-cal-cache/` under the workspace `target/`. Set it to
//! `0`, `off` or `false` to disable persistence (every calibration
//! recomputes). Tests and benches that must not touch the shared store use
//! [`CalStore::disabled`] or [`CalStore::at`] explicitly.

use crate::calibration::{Calibration, CalibrationOptions, PairCalibration, QubitCalibration};
use crate::device::DeviceModel;
use quant_pulse::{Drag, GaussianSquare};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the calibration algorithm baked into every snapshot key.
///
/// Bump this whenever a change alters what [`Calibration::run_seeded`]
/// computes for a fixed device and root seed — different RNG draw order,
/// different sweep grids, different search logic. Version 2 is the
/// per-task-stream parallel tune-up (one RNG stream per qubit derived from
/// the root seed, quantized probe inputs).
pub const CAL_ALGO_VERSION: u64 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The snapshot key for calibrating `device` with `opts` from `root`.
///
/// Bit-exact over every input that enters the tune-up (see the module docs
/// for what is included and what is deliberately left out).
pub fn snapshot_key(device: &DeviceModel, opts: &CalibrationOptions, root: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, CAL_ALGO_VERSION);
    h = fnv1a(h, device.num_qubits() as u64);
    for q in 0..device.num_qubits() as u32 {
        for w in device.qubit(q).key_words() {
            h = fnv1a(h, w);
        }
    }
    h = fnv1a(h, device.edges().len() as u64);
    for e in device.edges() {
        h = fnv1a(h, (e.control as u64) << 32 | e.target as u64);
        for w in e.cr.key_words() {
            h = fnv1a(h, w);
        }
    }
    for w in device.drift().key_words() {
        h = fnv1a(h, w);
    }
    h = fnv1a(h, opts.shots as u64);
    h = fnv1a(h, opts.pulse_duration);
    h = fnv1a(h, opts.pulse_sigma.to_bits());
    h = fnv1a(h, opts.cr_amp.to_bits());
    h = fnv1a(h, opts.cr_sigma.to_bits());
    h = fnv1a(h, opts.measure_duration);
    fnv1a(h, root)
}

/// On-disk store of calibration snapshots, one text file per key.
#[derive(Clone, Debug)]
pub struct CalStore {
    dir: Option<PathBuf>,
}

impl CalStore {
    /// The store selected by `OPC_CAL_CACHE` (see module docs): a
    /// directory, the default under `target/`, or disabled.
    pub fn from_env() -> Self {
        match crate::knobs::cal_cache() {
            crate::knobs::CalCacheKnob::Disabled => CalStore::disabled(),
            crate::knobs::CalCacheKnob::Dir(dir) => CalStore::at(dir),
            crate::knobs::CalCacheKnob::Default => CalStore::at(default_dir()),
        }
    }

    /// A store rooted at an explicit directory (created on first save).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CalStore {
            dir: Some(dir.into()),
        }
    }

    /// A store that never loads and never saves.
    pub fn disabled() -> Self {
        CalStore { dir: None }
    }

    /// Whether this store persists anything.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Loads the snapshot for `key`, rebuilding the `cmd_def` pulse library
    /// against `device`. Returns `None` when disabled, absent, or on any
    /// parse failure (stale format, truncation) — callers recompute.
    pub fn load(&self, key: u64, device: &DeviceModel) -> Option<Calibration> {
        let text = std::fs::read_to_string(self.path(key)?).ok()?;
        let mut cal = parse_snapshot(&text, key)?;
        if cal.qubits().len() != device.num_qubits() {
            return None;
        }
        cal.rebuild_cmd_def(device);
        Some(cal)
    }

    /// Saves a snapshot for `key`. Best-effort: the write is atomic
    /// (unique temp file + rename, so concurrent processes never observe a
    /// torn snapshot) and I/O errors are swallowed — persistence is an
    /// optimization, not a correctness requirement.
    pub fn save(&self, key: u64, cal: &Calibration) {
        let Some(path) = self.path(key) else { return };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            "cal-{key:016x}.tmp.{}.{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, emit_snapshot(key, cal)).is_ok()
            && std::fs::rename(&tmp, &path).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn path(&self, key: u64) -> Option<PathBuf> {
        Some(self.dir.as_ref()?.join(format!("cal-{key:016x}.txt")))
    }
}

/// The default store directory: `opc-cal-cache/` under the workspace
/// `target/` (honouring `CARGO_TARGET_DIR`), so `cargo clean` retires it.
fn default_dir() -> PathBuf {
    match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) if !t.trim().is_empty() => PathBuf::from(t).join("opc-cal-cache"),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/opc-cal-cache"),
    }
}

// --- Text format -----------------------------------------------------------
//
// Whitespace-separated tokens: `u64` fields in decimal, `f64` fields as the
// 16-hex-digit `to_bits` image (exact round-trip; no float printing is
// involved anywhere). The leading magic carries the format version and the
// key, which `parse_snapshot` checks against the requested key so a renamed
// or corrupted file can never serve the wrong calibration.

fn push_f64(out: &mut String, x: f64) {
    out.push_str(&format!(" {:016x}", x.to_bits()));
}

fn push_u64(out: &mut String, x: u64) {
    out.push_str(&format!(" {x}"));
}

fn emit_snapshot(key: u64, cal: &Calibration) -> String {
    let mut out = format!("opcal {CAL_ALGO_VERSION} {key:016x}");
    push_u64(&mut out, cal.measure_duration());
    let qubits = cal.qubits();
    push_u64(&mut out, qubits.len() as u64);
    for q in qubits {
        out.push('\n');
        for drag in [&q.rx90, &q.rx180] {
            push_u64(&mut out, drag.duration);
            push_f64(&mut out, drag.amp);
            push_f64(&mut out, drag.sigma);
            push_f64(&mut out, drag.beta);
        }
        for x in [
            q.rx90_phase.0,
            q.rx90_phase.1,
            q.rx180_phase.0,
            q.rx180_phase.1,
            q.rx90_detuning,
            q.rx180_detuning,
        ] {
            push_f64(&mut out, x);
        }
        push_u64(&mut out, q.direct_rx_table.len() as u64);
        for &(s, a, c) in &q.direct_rx_table {
            push_f64(&mut out, s);
            push_f64(&mut out, a);
            push_f64(&mut out, c);
        }
    }
    let pairs = cal.pairs();
    out.push('\n');
    push_u64(&mut out, pairs.len() as u64);
    for p in pairs {
        out.push('\n');
        push_u64(&mut out, p.control as u64);
        push_u64(&mut out, p.target as u64);
        push_u64(&mut out, p.cr45.duration);
        push_f64(&mut out, p.cr45.amp);
        push_f64(&mut out, p.cr45.sigma);
        push_u64(&mut out, p.cr45.width);
        push_f64(&mut out, p.zi_residual);
    }
    out.push('\n');
    out
}

struct Tokens<'a>(std::str::SplitWhitespace<'a>);

impl Tokens<'_> {
    fn u64(&mut self) -> Option<u64> {
        self.0.next()?.parse().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(
            u64::from_str_radix(self.0.next()?, 16).ok()?,
        ))
    }

    fn drag(&mut self) -> Option<Drag> {
        Some(Drag {
            duration: self.u64()?,
            amp: self.f64()?,
            sigma: self.f64()?,
            beta: self.f64()?,
        })
    }
}

fn parse_snapshot(text: &str, expected_key: u64) -> Option<Calibration> {
    let mut t = Tokens(text.split_whitespace());
    if t.0.next()? != "opcal" || t.u64()? != CAL_ALGO_VERSION {
        return None;
    }
    if u64::from_str_radix(t.0.next()?, 16).ok()? != expected_key {
        return None;
    }
    let measure_duration = t.u64()?;
    let n = t.u64()? as usize;
    let mut qubits = Vec::with_capacity(n);
    for _ in 0..n {
        let rx90 = t.drag()?;
        let rx180 = t.drag()?;
        let rx90_phase = (t.f64()?, t.f64()?);
        let rx180_phase = (t.f64()?, t.f64()?);
        let rx90_detuning = t.f64()?;
        let rx180_detuning = t.f64()?;
        let len = t.u64()? as usize;
        let mut direct_rx_table = Vec::with_capacity(len);
        for _ in 0..len {
            direct_rx_table.push((t.f64()?, t.f64()?, t.f64()?));
        }
        qubits.push(QubitCalibration {
            rx90,
            rx180,
            rx90_phase,
            rx180_phase,
            rx90_detuning,
            rx180_detuning,
            direct_rx_table,
        });
    }
    let m = t.u64()? as usize;
    let mut pairs = Vec::with_capacity(m);
    for _ in 0..m {
        pairs.push(PairCalibration {
            control: t.u64()? as u32,
            target: t.u64()? as u32,
            cr45: GaussianSquare {
                duration: t.u64()?,
                amp: t.f64()?,
                sigma: t.f64()?,
                width: t.u64()?,
            },
            zi_residual: t.f64()?,
        });
    }
    if t.0.next().is_some() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(Calibration::from_parts(qubits, pairs, measure_duration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;

    #[test]
    fn key_is_sensitive_to_every_input() {
        let mut rng = seeded(3);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let opts = CalibrationOptions::default();
        let base = snapshot_key(&device, &opts, 77);

        assert_eq!(base, snapshot_key(&device, &opts, 77), "key is a function");
        assert_ne!(base, snapshot_key(&device, &opts, 78), "root seed");
        let mut o = opts;
        o.shots += 1;
        assert_ne!(base, snapshot_key(&device, &o, 77), "options");
        let other = DeviceModel::almaden_like(2, &mut rng);
        assert_ne!(base, snapshot_key(&other, &opts, 77), "device physics");

        // Drift multipliers are execution-time state: redrawing them must
        // NOT retire the snapshot (one daily calibration serves every
        // drift age).
        let mut drifted = device.clone();
        drifted.redraw_drift(&mut seeded(99));
        assert_eq!(base, snapshot_key(&drifted, &opts, 77));
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = CalStore::disabled();
        assert!(!store.is_enabled());
        let device = DeviceModel::ideal(1);
        assert!(store.load(123, &device).is_none());
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_key() {
        assert!(parse_snapshot("", 1).is_none());
        assert!(parse_snapshot("not a snapshot", 1).is_none());
        assert!(parse_snapshot("opcal 999999 0000000000000001 16000 0 0", 1).is_none());
        // Right magic, wrong key.
        let text = format!("opcal {CAL_ALGO_VERSION} {:016x} 16000 0 0", 2u64);
        assert!(parse_snapshot(&text, 1).is_none());
        // Minimal valid snapshot: zero qubits, zero pairs.
        let text = format!("opcal {CAL_ALGO_VERSION} {:016x} 16000 0 0", 1u64);
        let cal = parse_snapshot(&text, 1).expect("minimal snapshot parses");
        assert_eq!(cal.measure_duration(), 16_000);
        // Trailing garbage is corruption, not a snapshot.
        let text = format!("opcal {CAL_ALGO_VERSION} {:016x} 16000 0 0 7", 1u64);
        assert!(parse_snapshot(&text, 1).is_none());
    }
}
