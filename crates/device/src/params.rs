//! Physical device parameters and presets.
//!
//! The presets mirror the published figures for the two IBM devices the
//! paper ran on: **Almaden** (20 transmons; mean T1 = 94 µs, T2 = 88 µs,
//! single-qubit error 0.14 %, CNOT error 1.78 %, readout error 3.8 %,
//! dt = 0.22 ns) and **Armonk** (single qubit, used for the Fig. 13
//! randomized-benchmarking experiment).

/// AWG sample period in seconds (4.5 GS/s, as on Almaden).
pub const DT: f64 = 0.222e-9;

/// Physical parameters of one transmon qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransmonParams {
    /// |0⟩→|1⟩ transition frequency in Hz (≈ 5 GHz).
    pub f01: f64,
    /// Anharmonicity α = f12 − f01 in Hz (≈ −330 MHz).
    pub alpha: f64,
    /// Rabi rate per unit drive amplitude, in Hz. A resonant pulse of
    /// amplitude `a` rotates at `2π · rabi_hz_per_amp · a` rad/s.
    pub rabi_hz_per_amp: f64,
    /// Energy-relaxation time T1 in seconds.
    pub t1: f64,
    /// Dephasing time T2 in seconds (T2 ≤ 2·T1).
    pub t2: f64,
}

impl TransmonParams {
    /// Almaden-like qubit.
    pub fn almaden_like() -> Self {
        TransmonParams {
            f01: 4.97e9,
            alpha: -330.0e6,
            rabi_hz_per_amp: 1.1e8,
            t1: 94e-6,
            t2: 88e-6,
        }
    }

    /// Armonk-like qubit (single-qubit OpenPulse device).
    pub fn armonk_like() -> Self {
        TransmonParams {
            f01: 4.974e9,
            alpha: -348.0e6,
            rabi_hz_per_amp: 1.25e8,
            t1: 140e-6,
            t2: 70e-6,
        }
    }

    /// The |1⟩→|2⟩ transition frequency `f12 = f01 + α`.
    pub fn f12(&self) -> f64 {
        self.f01 + self.alpha
    }

    /// The two-photon |0⟩→|2⟩ half-frequency `f02/2 = f01 + α/2`.
    pub fn f02_half(&self) -> f64 {
        self.f01 + self.alpha / 2.0
    }

    /// The parameter struct folded bit-exactly into key words, for
    /// content-addressed caches and calibration-snapshot hashing. Any
    /// change to any field — even one ulp — changes the words.
    pub fn key_words(&self) -> [u64; 5] {
        [
            self.f01.to_bits(),
            self.alpha.to_bits(),
            self.rabi_hz_per_amp.to_bits(),
            self.t1.to_bits(),
            self.t2.to_bits(),
        ]
    }
}

/// Effective cross-resonance interaction parameters for a coupled pair
/// (Magesan & Gambetta model): driving the control qubit at the target's
/// frequency produces ZX, IX and ZI terms proportional to drive amplitude.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrParams {
    /// ZX rate per unit control-channel amplitude, in Hz.
    pub zx_hz_per_amp: f64,
    /// Spurious IX rate per unit amplitude, in Hz (cancelled by the echo).
    pub ix_hz_per_amp: f64,
    /// Spurious ZI rate per unit amplitude, in Hz (cancelled by the echo).
    pub zi_hz_per_amp: f64,
    /// Static ZZ rate in Hz (always on, small).
    pub zz_static_hz: f64,
}

impl CrParams {
    /// Almaden-like CR interaction.
    ///
    /// The raw IX term on hardware is comparable to ZX, but IBM's
    /// "active cancellation" tone on the target drive removes most of it
    /// within each pulse (Sheldon et al. 2016); the echo then cleans the
    /// residual. The values here are those post-cancellation residuals.
    pub fn almaden_like() -> Self {
        CrParams {
            zx_hz_per_amp: 2.4e6,
            ix_hz_per_amp: 0.5e6,
            zi_hz_per_amp: 0.4e6,
            zz_static_hz: 0.02e6,
        }
    }

    /// An idealized CR interaction with no spurious terms (for tests that
    /// isolate the ZX physics).
    pub fn pure_zx(zx_hz_per_amp: f64) -> Self {
        CrParams {
            zx_hz_per_amp,
            ix_hz_per_amp: 0.0,
            zi_hz_per_amp: 0.0,
            zz_static_hz: 0.0,
        }
    }

    /// Bit-exact key words (see [`TransmonParams::key_words`]).
    pub fn key_words(&self) -> [u64; 4] {
        [
            self.zx_hz_per_amp.to_bits(),
            self.ix_hz_per_amp.to_bits(),
            self.zi_hz_per_amp.to_bits(),
            self.zz_static_hz.to_bits(),
        ]
    }
}

/// Readout (measurement) error model for one qubit: an asymmetric
/// confusion matrix plus the IQ-plane cloud geometry used for qutrit
/// discrimination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutParams {
    /// P(read 1 | prepared 0).
    pub p1_given_0: f64,
    /// P(read 0 | prepared 1).
    pub p0_given_1: f64,
    /// IQ-plane centroid of the |0⟩ cloud.
    pub iq0: (f64, f64),
    /// IQ-plane centroid of the |1⟩ cloud.
    pub iq1: (f64, f64),
    /// IQ-plane centroid of the |2⟩ cloud.
    pub iq2: (f64, f64),
    /// Isotropic standard deviation of each IQ cloud.
    pub iq_sigma: f64,
}

impl ReadoutParams {
    /// Almaden-like readout: 3.8 % mean error, biased towards reading 0
    /// (relaxation during measurement).
    pub fn almaden_like() -> Self {
        ReadoutParams {
            p1_given_0: 0.021,
            p0_given_1: 0.055,
            iq0: (-1.0, -0.4),
            iq1: (1.0, -0.4),
            iq2: (0.15, 1.2),
            iq_sigma: 0.38,
        }
    }

    /// 2×2 confusion matrix `M[measured][prepared]`.
    pub fn confusion(&self) -> [[f64; 2]; 2] {
        [
            [1.0 - self.p1_given_0, self.p0_given_1],
            [self.p1_given_0, 1.0 - self.p0_given_1],
        ]
    }

    /// Mean assignment error `(p1_given_0 + p0_given_1)/2`.
    pub fn mean_error(&self) -> f64 {
        (self.p1_given_0 + self.p0_given_1) / 2.0
    }
}

/// Calibration-quality model: how precisely the daily tune-up lands on the
/// true device parameters, and how fast the device drifts afterwards.
///
/// These two knobs drive §8.3's fidelity-source decomposition: residual
/// amplitude error makes each *calibrated pulse application* carry a
/// coherent over/under-rotation, so the standard two-pulse U3 squares the
/// impact while `DirectRx` pays it once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftParams {
    /// Relative 1σ error of the calibrated π-pulse amplitude right after
    /// calibration.
    pub cal_amp_sigma: f64,
    /// Relative 1σ amplitude drift accumulated per hour since calibration.
    pub drift_per_hour: f64,
    /// Hours elapsed since the last daily calibration (the paper's jobs ran
    /// around the clock with varying elapsed time; 0–24 h).
    pub hours_since_cal: f64,
}

impl DriftParams {
    /// Almaden-like drift.
    pub fn almaden_like() -> Self {
        DriftParams {
            cal_amp_sigma: 0.003,
            drift_per_hour: 0.0012,
            hours_since_cal: 8.0,
        }
    }

    /// A perfectly calibrated, drift-free device (for noiseless tiers).
    pub fn ideal() -> Self {
        DriftParams {
            cal_amp_sigma: 0.0,
            drift_per_hour: 0.0,
            hours_since_cal: 0.0,
        }
    }

    /// Bit-exact key words (see [`TransmonParams::key_words`]).
    pub fn key_words(&self) -> [u64; 3] {
        [
            self.cal_amp_sigma.to_bits(),
            self.drift_per_hour.to_bits(),
            self.hours_since_cal.to_bits(),
        ]
    }

    /// Total relative amplitude-error 1σ at execution time.
    pub fn total_sigma(&self) -> f64 {
        (self.cal_amp_sigma.powi(2) + (self.drift_per_hour * self.hours_since_cal.sqrt()).powi(2))
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_frequencies() {
        let q = TransmonParams::almaden_like();
        assert!(q.f12() < q.f01, "negative anharmonicity lowers f12");
        assert!((q.f02_half() - (q.f01 + q.f12()) / 2.0).abs() < 1.0);
    }

    #[test]
    fn confusion_matrix_columns_sum_to_one() {
        let r = ReadoutParams::almaden_like();
        let m = r.confusion();
        assert!((m[0][0] + m[1][0] - 1.0).abs() < 1e-12);
        assert!((m[0][1] + m[1][1] - 1.0).abs() < 1e-12);
        // Mean error matches Almaden's published 3.8 %.
        assert!((r.mean_error() - 0.038).abs() < 1e-12);
    }

    #[test]
    fn drift_grows_with_time() {
        let mut d = DriftParams::almaden_like();
        let fresh = DriftParams {
            hours_since_cal: 0.0,
            ..d
        };
        d.hours_since_cal = 23.0;
        assert!(d.total_sigma() > fresh.total_sigma());
        assert!(DriftParams::ideal().total_sigma() == 0.0);
    }

    #[test]
    fn coherence_times_physical() {
        for q in [
            TransmonParams::almaden_like(),
            TransmonParams::armonk_like(),
        ] {
            assert!(q.t2 <= 2.0 * q.t1);
            assert!(q.t1 > 0.0);
        }
    }
}
