//! Monte-Carlo (quantum-trajectory) execution of lowered programs.
//!
//! The density-matrix executor is exact but costs `O(4ⁿ)` memory — fine
//! through ~6 qubits, hopeless beyond. Trajectories trade variance for
//! scale: each run keeps a *state vector* (`O(2ⁿ)`), samples one Kraus
//! branch wherever the density executor would apply a channel, and the
//! ensemble over trajectories converges to the same distribution. This is
//! how the reproduction reaches Almaden-scale (20-qubit) registers the
//! paper ran its 11.4 M shots on.
//!
//! # Fast path
//!
//! Trajectories are fanned over a [`ShotPool`] with one root `u64` drawn
//! from the caller's RNG and a `stream_seed(root, index)` RNG stream per
//! trajectory, so counts are **bit-identical at any `OPC_THREADS`** (the
//! same contract as the shot engine and the calibration fan-out). Each
//! worker reuses one [`StateVector`] + [`KernelScratch`]; gates and
//! channel branches run through the state-vector stride kernels; channel
//! branches are weighed in place (`KernelScratch::branch_weight`) instead
//! of trial-applying every Kraus operator to a cloned state; and
//! measurement outcomes are drawn by binary search on a per-trajectory
//! cumulative distribution instead of a fresh `O(2ⁿ)` scan per shot.
//! [`TrajectoryExecutor::with_reference_path`] routes every state update
//! through the retained skip-scan reference kernels and every two-qubit
//! schedule through the per-sample reference integrator instead — the
//! cross-check (and the perfsuite baseline) for the fast path.

use crate::device::DeviceModel;
use crate::executor::{Block, ExecError, LoweredProgram, ShotPool};
use crate::params::DT;
use crate::transmon::DriveState;
use quant_math::{normal, seeded, stream_seed, CMat};
use quant_pulse::{Channel, Instruction, Schedule};
use quant_sim::{channels, KernelScratch, StateVector};
use rand::Rng;

/// Per-worker reusable state: one state vector, one kernel scratch, the
/// channel-weight and cumulative-distribution buffers, and a memo of
/// thermal-relaxation stages keyed by `(qubit, duration)` — programs
/// repeat a handful of gate durations, so the channel matrices are
/// computed once per worker instead of once per application.
struct TrajWorker {
    psi: StateVector,
    scratch: KernelScratch,
    weights: Vec<f64>,
    cdf: Vec<f64>,
    relax: Vec<(usize, u64, Vec<Vec<CMat>>)>,
}

impl TrajWorker {
    fn new(n: usize) -> Self {
        TrajWorker {
            psi: StateVector::zero_qubits(n),
            scratch: KernelScratch::new(),
            weights: Vec::new(),
            cdf: Vec::new(),
            relax: Vec::new(),
        }
    }
}

/// The trajectory executor.
#[derive(Clone, Debug)]
pub struct TrajectoryExecutor<'a> {
    device: &'a DeviceModel,
    trajectories: usize,
    reference: bool,
}

impl<'a> TrajectoryExecutor<'a> {
    /// Creates an executor that averages over `trajectories` noise
    /// realizations.
    pub fn new(device: &'a DeviceModel, trajectories: usize) -> Self {
        assert!(trajectories >= 1);
        TrajectoryExecutor {
            device,
            trajectories,
            reference: false,
        }
    }

    /// Routes every state update through the reference (skip-scan)
    /// state-vector path instead of the stride kernels, and every two-qubit
    /// schedule through [`crate::twoqubit::CrPair::integrate_ref`] instead
    /// of the run-compressed integrator. Slow; used by the equivalence
    /// tests and as the perfsuite baseline.
    pub fn with_reference_path(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Runs the program, sampling `shots` measurement outcomes spread over
    /// the trajectories. Returns counts over the `2ⁿ` outcomes (readout
    /// error applied per shot).
    ///
    /// Draws exactly one `u64` root from `rng` and fans the trajectories
    /// over [`ShotPool::from_env`] on per-trajectory seed streams.
    ///
    /// # Panics
    ///
    /// Panics if the program addresses a pair the device topology does not
    /// couple; use [`TrajectoryExecutor::try_run`] to get the error as a
    /// value.
    pub fn run(
        &self,
        program: &LoweredProgram,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Vec<u64> {
        match self.try_run(program, shots, rng) {
            Ok(counts) => counts,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the program, reporting topology mismatches as [`ExecError`]
    /// instead of panicking. Draws one `u64` root from `rng`; the pool
    /// size comes from `OPC_THREADS`.
    pub fn try_run(
        &self,
        program: &LoweredProgram,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<u64>, ExecError> {
        let root = rng.gen::<u64>();
        self.try_run_pooled(program, shots, root, &ShotPool::from_env())
    }

    /// [`TrajectoryExecutor::try_run`] with an explicit root seed and pool.
    ///
    /// Trajectory `i` runs on `seeded(stream_seed(root, i))` and shots are
    /// split across trajectories by index (`shots/T` each, the first
    /// `shots % T` taking one extra), so the returned counts depend only on
    /// `(program, shots, root)` — never on the thread count.
    pub fn try_run_pooled(
        &self,
        program: &LoweredProgram,
        shots: usize,
        root: u64,
        pool: &ShotPool,
    ) -> Result<Vec<u64>, ExecError> {
        let n = program.num_qubits as usize;
        let trajectories = self.trajectories.min(shots.max(1));
        let base = shots / trajectories;
        let extra = shots % trajectories;
        let sampled = pool.map_indices_with(
            trajectories,
            || TrajWorker::new(n),
            |w, i| -> Result<Vec<u32>, ExecError> {
                let take = base + usize::from(i < extra);
                if take == 0 {
                    return Ok(Vec::new());
                }
                let mut rng = seeded(stream_seed(root, i as u64));
                self.evolve(program, w, &mut rng)?;
                // Per-trajectory cumulative distribution; outcomes are then
                // one uniform draw + binary search each instead of an
                // O(2ⁿ) categorical scan per shot.
                w.cdf.clear();
                w.cdf.reserve(w.psi.dim());
                let mut acc = 0.0f64;
                for a in w.psi.amplitudes() {
                    acc += a.norm_sqr();
                    w.cdf.push(acc);
                }
                let total = acc;
                let top = w.psi.dim() - 1;
                let mut outcomes = Vec::with_capacity(take);
                for _ in 0..take {
                    let u = rng.gen::<f64>() * total;
                    let outcome = w.cdf.partition_point(|&c| c <= u).min(top);
                    outcomes.push(self.noisy_readout(outcome, n, &mut rng) as u32);
                }
                Ok(outcomes)
            },
        );
        // Reduce in trajectory-index order (u64 additions, so the total is
        // exact and thread-count independent either way).
        let mut counts = vec![0u64; 1 << n];
        for outcomes in sampled {
            for o in outcomes? {
                counts[o as usize] += 1;
            }
        }
        Ok(counts)
    }

    /// Applies a (possibly sub-unitary) operator through the selected
    /// kernel path.
    fn apply(&self, w: &mut TrajWorker, op: &CMat, targets: &[usize]) {
        if self.reference {
            w.psi.apply_unitary_ref(op, targets);
        } else {
            w.psi.apply_unitary_scratch(op, targets, &mut w.scratch);
        }
    }

    /// Evolves one stochastic trajectory in the worker's reused state.
    fn evolve(
        &self,
        program: &LoweredProgram,
        w: &mut TrajWorker,
        rng: &mut impl Rng,
    ) -> Result<(), ExecError> {
        let n = program.num_qubits as usize;
        w.psi.reset_zero();
        // Thermal SPAM.
        let p_reset = self.device.reset_excited_prob();
        for q in 0..n {
            if p_reset > 0.0 && rng.gen::<f64>() < p_reset {
                self.apply(w, &quant_sim::gates::x(), &[q]);
            }
        }
        let mut cursor = vec![0u64; n];

        for block in &program.blocks {
            match block {
                Block::Idle { qubit, duration } => {
                    self.relax_sampled(w, *qubit as usize, *duration, rng);
                    cursor[*qubit as usize] += duration;
                }
                Block::Gate1Q { qubit, waveforms } => {
                    let q = *qubit as usize;
                    let transmon = self.device.transmon_exec(*qubit);
                    for wave in waveforms {
                        let wave = self.jittered(wave, rng);
                        let mut state = DriveState::default();
                        let u3x3 = transmon.integrate_play(&mut state, &wave);
                        let b = CMat::from_rows(&[
                            &[u3x3[(0, 0)], u3x3[(0, 1)]],
                            &[u3x3[(1, 0)], u3x3[(1, 1)]],
                        ]);
                        // Sub-unitary contraction: renormalize (leakage is
                        // tiny; the deposited-weight branch is negligible
                        // at trajectory resolution).
                        self.apply(w, &b, &[q]);
                        w.psi.normalize();
                        self.relax_sampled(w, q, wave.duration(), rng);
                        cursor[q] += wave.duration();
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    let (c, t) = (*control as usize, *target as usize);
                    let start = cursor[c].max(cursor[t]);
                    for &q in &[c, t] {
                        let idle = start - cursor[q];
                        if idle > 0 {
                            self.relax_sampled(w, q, idle, rng);
                        }
                        cursor[q] = start;
                    }
                    let pair = self.device.pair_exec(*control, *target).ok_or(
                        ExecError::UncoupledPair {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let u_ch = self.device.control_channel(*control, *target).ok_or(
                        ExecError::MissingControlChannel {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let schedule = self.jitter_schedule(schedule, rng);
                    let r = if self.reference {
                        pair.integrate_ref(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        )
                    } else {
                        pair.integrate(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        )
                    };
                    self.apply(w, &r.unitary, &[c, t]);
                    w.psi.normalize();
                    let dur = schedule.duration();
                    self.relax_sampled(w, c, dur, rng);
                    self.relax_sampled(w, t, dur, rng);
                    cursor[c] += dur;
                    cursor[t] += dur;
                }
            }
        }
        let end = cursor.iter().copied().max().unwrap_or(0);
        for (q, &at) in cursor.iter().enumerate().take(n) {
            let idle = end - at;
            if idle > 0 {
                self.relax_sampled(w, q, idle, rng);
            }
        }
        Ok(())
    }

    /// Samples one branch of the thermal-relaxation channels for a qubit
    /// over `samples` of wall-clock time.
    ///
    /// Fast path: every branch of a stage is weighed in place
    /// (`‖Kψ‖²` via [`KernelScratch::branch_weight`]) and only the chosen
    /// operator is applied — no per-branch clone of the `O(2ⁿ)` state.
    /// Reference path: the original clone-per-branch route.
    fn relax_sampled(
        &self,
        w: &mut TrajWorker,
        qubit: usize,
        samples: u64,
        rng: &mut impl Rng,
    ) {
        let p = self.device.qubit(qubit as u32);
        let t = samples as f64 * DT;
        let TrajWorker {
            psi,
            scratch,
            weights,
            relax,
            ..
        } = w;
        let pos = match relax
            .iter()
            .position(|(q, s, _)| *q == qubit && *s == samples)
        {
            Some(pos) => pos,
            None => {
                relax.push((qubit, samples, channels::thermal_relaxation(t, p.t1, p.t2)));
                relax.len() - 1
            }
        };
        for stage in &relax[pos].2 {
            if self.reference {
                // Trial-apply every branch to a cloned state, then keep the
                // sampled one.
                let mut probs = Vec::with_capacity(stage.len());
                let mut branches = Vec::with_capacity(stage.len());
                for k in stage {
                    let mut trial = psi.clone();
                    let prob = trial.apply_kraus_branch_ref(k, &[qubit]);
                    probs.push(prob.max(0.0));
                    branches.push(trial);
                }
                let choice = quant_math::categorical(rng, &probs);
                let mut chosen = branches.swap_remove(choice);
                chosen.normalize();
                *psi = chosen;
            } else {
                weights.clear();
                for k in stage {
                    weights.push(
                        scratch
                            .branch_weight(psi.amplitudes(), k, &[qubit], psi.dims())
                            .max(0.0),
                    );
                }
                let choice = quant_math::categorical(rng, weights);
                psi.apply_unitary_scratch(&stage[choice], &[qubit], scratch);
                psi.normalize();
            }
        }
    }

    /// Classical readout error applied to a sampled outcome index.
    fn noisy_readout(&self, outcome: usize, n: usize, rng: &mut impl Rng) -> usize {
        let mut read = outcome;
        for q in 0..n {
            let r = self.device.readout(q as u32);
            let bit = (outcome >> q) & 1;
            let flip_prob = if bit == 0 { r.p1_given_0 } else { r.p0_given_1 };
            if rng.gen::<f64>() < flip_prob {
                read ^= 1 << q;
            }
        }
        read
    }

    fn jittered(
        &self,
        w: &quant_pulse::Waveform,
        rng: &mut impl Rng,
    ) -> quant_pulse::Waveform {
        let sigma = self.device.pulse_amp_jitter();
        let peak = w.peak();
        if sigma == 0.0 || peak < 1e-12 {
            return w.clone();
        }
        let xi = normal(rng, 0.0, sigma);
        w.scaled((1.0 + xi / peak).clamp(0.0, 1.0 / peak))
    }

    fn jitter_schedule(&self, schedule: &Schedule, rng: &mut impl Rng) -> Schedule {
        let sigma = self.device.pulse_amp_jitter();
        if sigma == 0.0 {
            return schedule.clone();
        }
        let mut out = Schedule::new(schedule.name());
        for ti in schedule.instructions() {
            let instruction = match &ti.instruction {
                Instruction::Play { waveform, channel } => Instruction::Play {
                    waveform: self.jittered(waveform, rng),
                    channel: *channel,
                },
                other => other.clone(),
            };
            out.insert(ti.start, instruction);
        }
        out
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceModel {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;
    use crate::executor::PulseExecutor;
    use quant_math::seeded;

    #[test]
    fn trajectories_match_density_matrix_on_bell_pair() {
        let mut rng = seeded(2);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let cal = calibrate(&device, &mut rng);
        // Lower a Bell pair via the cmd_def directly (avoid a dependency on
        // the compiler crate here).
        // H via two rx90 pulses is compiler territory; use X on q0 and a
        // CNOT — |00⟩ → |01⟩ → |11⟩: a deterministic outcome with noise.
        let blocks = vec![
            Block::Gate1Q {
                qubit: 0,
                waveforms: vec![cal.qubit(0).rx180_waveform("x")],
            },
            Block::Gate2Q {
                control: 0,
                target: 1,
                schedule: cal.cmd_def().get("cx", &[0, 1]).unwrap().clone(),
            },
        ];
        let program = LoweredProgram {
            num_qubits: 2,
            blocks,
            schedule: Schedule::new("p"),
        };
        // Density-matrix reference.
        let exec = PulseExecutor::new(&device);
        let mut rng_a = seeded(5);
        let dm = exec.run(&program, &mut rng_a);
        // Trajectory ensemble.
        let traj = TrajectoryExecutor::new(&device, 96);
        let mut rng_b = seeded(6);
        let counts = traj.run(&program, 48_000, &mut rng_b);
        let total: u64 = counts.iter().sum();
        for (i, (&c, &p)) in counts.iter().zip(&dm.probabilities).enumerate() {
            let freq = c as f64 / total as f64;
            assert!(
                (freq - p).abs() < 0.04,
                "outcome {i}: trajectory {freq:.3} vs density {p:.3}"
            );
        }
    }

    #[test]
    fn relaxation_sampling_decays_excited_state() {
        let mut rng = seeded(3);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let traj = TrajectoryExecutor::new(&device, 256);
        // |1⟩ then a long idle (~0.7·T1): survival ≈ exp(−0.7) ≈ 0.5.
        let cal = calibrate(&device, &mut rng);
        let t1_samples = (device.qubit(0).t1 * 0.7 / DT) as u64;
        let program = LoweredProgram {
            num_qubits: 1,
            blocks: vec![
                Block::Gate1Q {
                    qubit: 0,
                    waveforms: vec![cal.qubit(0).rx180_waveform("x")],
                },
                Block::Idle {
                    qubit: 0,
                    duration: t1_samples,
                },
            ],
            schedule: Schedule::new("decay"),
        };
        let counts = traj.run(&program, 16_000, &mut rng);
        let p1 = counts[1] as f64 / 16_000.0;
        assert!(
            (p1 - 0.5_f64).abs() < 0.08,
            "survival after 0.7·T1 should be ≈0.5 (readout-adjusted): {p1}"
        );
    }
}
