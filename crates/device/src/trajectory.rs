//! Monte-Carlo (quantum-trajectory) execution of lowered programs.
//!
//! The density-matrix executor is exact but costs `O(4ⁿ)` memory — fine
//! through ~6 qubits, hopeless beyond. Trajectories trade variance for
//! scale: each run keeps a *state vector* (`O(2ⁿ)`), samples one Kraus
//! branch wherever the density executor would apply a channel, and the
//! ensemble over trajectories converges to the same distribution. This is
//! how the reproduction reaches Almaden-scale (20-qubit) registers the
//! paper ran its 11.4 M shots on.
//!
//! # Fast path: fused
//!
//! By default (`OPC_FUSION` unset or ≠ `0`) the executor hoists a
//! [`quant_sim::fusion::FusionPlan`] out of the trajectory fan-out: the
//! program's unitary stream (SPAM flips, 1q waveform gates, 2q CR
//! schedules) and its stochastic channel points (sampled thermal
//! relaxation) are planned into fused blocks of up to five qubits, built
//! once per program. Each trajectory then *replays* the plan: gates and
//! sampled Kraus branches fold into small (`≤ 32×32`) block accumulators,
//! channel branches are weighed against a per-block reduced density
//! matrix (`Tr(K†K·ρ_B)`, exact for local operators) instead of sweeping
//! the full state per branch, and the state is touched only when a block
//! closes — one blocked-kernel sweep per fused block instead of several
//! per gate and per channel stage. Normalization is folded into the
//! Kraus branches (`K/√p` like the reference path's per-stage
//! renormalize), so no separate normalize sweeps remain.
//!
//! The random-draw *sequence* of a fused trajectory is identical to the
//! unfused one — same draws, same order, at the same program points — so
//! sampled counts stay bit-identical in practice across
//! `OPC_FUSION=0/1`, across thread counts, and against the reference
//! path (branch weights agree to rounding, and a draw landing within one
//! ulp of a branch boundary is the same vanishing coincidence the
//! kernel-vs-reference contract already tolerates; CI pins it).
//!
//! # Unfused path
//!
//! `OPC_FUSION=0` restores the per-gate stride-kernel route: trajectories
//! fan over a [`ShotPool`] with one root `u64` and a
//! `stream_seed(root, index)` RNG stream per trajectory, so counts are
//! **bit-identical at any `OPC_THREADS`** (the same contract as the shot
//! engine and the calibration fan-out). Each worker reuses one
//! [`StateVector`] + [`KernelScratch`]; channel branches are weighed in
//! place (`KernelScratch::branch_weight`); and measurement outcomes are
//! drawn by binary search on a per-trajectory cumulative distribution.
//! [`TrajectoryExecutor::with_reference_path`] routes every state update
//! through the retained skip-scan reference kernels and every two-qubit
//! schedule through the per-sample reference integrator instead — the
//! cross-check (and the perfsuite baseline) for both fast paths; it
//! bypasses fusion entirely.

use crate::device::DeviceModel;
use crate::executor::{Block, ExecError, LoweredProgram, ShotPool};
use crate::params::DT;
use crate::transmon::DriveState;
use quant_math::{normal, seeded, stream_seed, CMat, C64};
use quant_pulse::{Channel, Instruction, Schedule, Waveform};
use quant_sim::fusion::{FusionPlan, OpDesc, Step, MAX_FUSED_WEIGHT};
use quant_sim::{channels, KernelScratch, StateVector};
use rand::Rng;

/// One runtime fused block: the accumulating operator on the block's
/// targets, plus the lazily captured reduced density used to weigh local
/// Kraus branches while the block is still pending.
#[derive(Clone, Debug)]
struct RtBlock {
    /// Global qubit indices (digit order), from the plan.
    targets: Vec<usize>,
    /// `[2; k]` — the block's subspace dims.
    dims: Vec<usize>,
    /// `[0, 1, …, k-1]` — every local digit, for whole-block folds.
    full: Vec<usize>,
    /// Accumulated pending operator (starts as identity).
    acc: CMat,
    /// Reduced density of `targets` with `acc` folded in; only
    /// meaningful while `rho_valid`.
    rho: CMat,
    rho_valid: bool,
    open: bool,
    /// Whether `acc` holds any pending content. Pending ops are not in
    /// general trace-preserving (Kraus branches, leaky sub-unitary
    /// gates), so a dirty block perturbs *other* blocks' marginals and
    /// must be flushed into the state before any foreign ρ capture.
    dirty: bool,
}

impl RtBlock {
    fn new(targets: &[usize]) -> Self {
        let k = targets.len();
        let w = 1usize << k;
        RtBlock {
            targets: targets.to_vec(),
            dims: vec![2; k],
            full: (0..k).collect(),
            acc: CMat::identity(w),
            rho: CMat::zeros(w, w),
            rho_valid: false,
            open: false,
            dirty: false,
        }
    }
}

/// Per-worker reusable state: one state vector, one kernel scratch, the
/// channel-weight and cumulative-distribution buffers, a memo of
/// thermal-relaxation stages keyed by `(qubit, duration)` for the
/// unfused path, and the runtime fused-block accumulators for the fused
/// path.
struct TrajWorker {
    psi: StateVector,
    scratch: KernelScratch,
    weights: Vec<f64>,
    cdf: Vec<f64>,
    relax: Vec<(usize, u64, Vec<Vec<CMat>>)>,
    blocks: Vec<RtBlock>,
    op_tmp: CMat,
}

impl TrajWorker {
    fn new(n: usize, fused: Option<&FusedProgram>) -> Self {
        let blocks = match fused {
            Some(fp) => fp
                .plan
                .blocks
                .iter()
                .map(|b| RtBlock::new(&b.targets))
                .collect(),
            None => Vec::new(),
        };
        TrajWorker {
            psi: StateVector::zero_qubits(n),
            scratch: KernelScratch::new(),
            weights: Vec::new(),
            cdf: Vec::new(),
            relax: Vec::new(),
            blocks,
            op_tmp: CMat::zeros(2, 2),
        }
    }

    /// Drops every open block's cached reduced density. Called whenever a
    /// block is applied to the state (close or merge): pending unitaries
    /// of *other* open blocks cannot change a disjoint block's marginals,
    /// but a closed block's application can, so the caches are rebuilt
    /// lazily from the updated state.
    fn invalidate_open_rho(&mut self) {
        for rt in &mut self.blocks {
            if rt.open {
                rt.rho_valid = false;
            }
        }
    }
}

/// Payload of one planned op — what the fused replay actually executes
/// (and where it spends its random draws) when the plan says `Fold`.
#[derive(Clone, Debug)]
enum TrajOp {
    /// Thermal SPAM: maybe fold an X flip.
    Spam,
    /// One 1q waveform: jitter draw, integrate, fold the 2×2.
    Wave { qubit: u32, wave: Waveform },
    /// One 2q CR schedule: jitter draws, integrate, fold the 4×4.
    Cr {
        control: u32,
        target: u32,
        schedule: Schedule,
    },
    /// Sampled thermal relaxation over an index into the hoisted
    /// relaxation tables: one categorical draw per stage.
    Relax { table: usize },
}

/// One hoisted relaxation channel: the Kraus stages for `(qubit,
/// samples)` of wall-clock plus each branch's precomputed `K†K` weight
/// operator.
#[derive(Clone, Debug)]
struct RelaxTable {
    qubit: usize,
    samples: u64,
    stages: Vec<Vec<CMat>>,
    weight_ops: Vec<Vec<CMat>>,
}

/// The per-program hoisted plan: op payloads (parallel to the fusion
/// pass's op indices), the fusion plan itself, and the deduplicated
/// relaxation tables. Built once per [`TrajectoryExecutor::try_run_pooled`]
/// call, shared read-only by every pool worker.
#[derive(Clone, Debug)]
struct FusedProgram {
    ops: Vec<TrajOp>,
    plan: FusionPlan,
    relax: Vec<RelaxTable>,
}

/// The trajectory executor.
#[derive(Clone, Debug)]
pub struct TrajectoryExecutor<'a> {
    device: &'a DeviceModel,
    trajectories: usize,
    reference: bool,
    fusion: bool,
}

impl<'a> TrajectoryExecutor<'a> {
    /// Creates an executor that averages over `trajectories` noise
    /// realizations. Gate fusion defaults to the `OPC_FUSION`
    /// environment knob (on unless `OPC_FUSION=0`); override it
    /// programmatically with [`TrajectoryExecutor::with_fusion`].
    pub fn new(device: &'a DeviceModel, trajectories: usize) -> Self {
        assert!(trajectories >= 1);
        TrajectoryExecutor {
            device,
            trajectories,
            reference: false,
            fusion: crate::knobs::fusion(),
        }
    }

    /// Routes every state update through the reference (skip-scan)
    /// state-vector path instead of the stride kernels, and every two-qubit
    /// schedule through [`crate::twoqubit::CrPair::integrate_ref`] instead
    /// of the run-compressed integrator. Bypasses gate fusion entirely.
    /// Slow; used by the equivalence tests and as the perfsuite baseline.
    pub fn with_reference_path(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Forces gate fusion on or off, overriding the `OPC_FUSION`
    /// environment default. Ignored on the reference path.
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Whether this executor will take the fused path.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion && !self.reference
    }

    /// Runs the program, sampling `shots` measurement outcomes spread over
    /// the trajectories. Returns counts over the `2ⁿ` outcomes (readout
    /// error applied per shot).
    ///
    /// Draws exactly one `u64` root from `rng` and fans the trajectories
    /// over [`ShotPool::from_env`] on per-trajectory seed streams.
    ///
    /// # Panics
    ///
    /// Panics if the program addresses a pair the device topology does not
    /// couple; use [`TrajectoryExecutor::try_run`] to get the error as a
    /// value.
    pub fn run(&self, program: &LoweredProgram, shots: usize, rng: &mut impl Rng) -> Vec<u64> {
        match self.try_run(program, shots, rng) {
            Ok(counts) => counts,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the program, reporting topology mismatches as [`ExecError`]
    /// instead of panicking. Draws one `u64` root from `rng`; the pool
    /// size comes from `OPC_THREADS`.
    pub fn try_run(
        &self,
        program: &LoweredProgram,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<u64>, ExecError> {
        let root = rng.gen::<u64>();
        self.try_run_pooled(program, shots, root, &ShotPool::from_env())
    }

    /// [`TrajectoryExecutor::try_run`] with an explicit root seed and pool.
    ///
    /// Trajectory `i` runs on `seeded(stream_seed(root, i))` and shots are
    /// split across trajectories by index (`shots/T` each, the first
    /// `shots % T` taking one extra), so the returned counts depend only on
    /// `(program, shots, root)` — never on the thread count. The fusion
    /// plan (when enabled) is likewise built once, before the fan-out,
    /// and replayed read-only by every worker.
    pub fn try_run_pooled(
        &self,
        program: &LoweredProgram,
        shots: usize,
        root: u64,
        pool: &ShotPool,
    ) -> Result<Vec<u64>, ExecError> {
        let n = program.num_qubits as usize;
        let fused = if self.fusion_enabled() {
            Some(self.build_plan(program)?)
        } else {
            None
        };
        let trajectories = self.trajectories.min(shots.max(1));
        let base = shots / trajectories;
        let extra = shots % trajectories;
        let sampled = pool.map_indices_with(
            trajectories,
            || TrajWorker::new(n, fused.as_ref()),
            |w, i| -> Result<Vec<u32>, ExecError> {
                let take = base + usize::from(i < extra);
                if take == 0 {
                    return Ok(Vec::new());
                }
                let mut rng = seeded(stream_seed(root, i as u64));
                match &fused {
                    Some(fp) => self.evolve_fused(fp, w, &mut rng)?,
                    None => self.evolve(program, w, &mut rng)?,
                }
                // Per-trajectory cumulative distribution; outcomes are then
                // one uniform draw + binary search each instead of an
                // O(2ⁿ) categorical scan per shot. Sampling uses the
                // running total, so the state need not be normalized.
                w.cdf.clear();
                w.cdf.reserve(w.psi.dim());
                let mut acc = 0.0f64;
                for a in w.psi.amplitudes() {
                    acc += a.norm_sqr();
                    w.cdf.push(acc);
                }
                let total = acc;
                let top = w.psi.dim() - 1;
                let mut outcomes = Vec::with_capacity(take);
                for _ in 0..take {
                    let u = rng.gen::<f64>() * total;
                    let outcome = w.cdf.partition_point(|&c| c <= u).min(top);
                    outcomes.push(self.noisy_readout(outcome, n, &mut rng) as u32);
                }
                Ok(outcomes)
            },
        );
        // Reduce in trajectory-index order (u64 additions, so the total is
        // exact and thread-count independent either way).
        let mut counts = vec![0u64; 1 << n];
        for outcomes in sampled {
            for o in outcomes? {
                counts[o as usize] += 1;
            }
        }
        Ok(counts)
    }

    /// Builds the hoisted fusion plan for one program: walks the blocks
    /// in exactly the order [`TrajectoryExecutor::evolve`] does —
    /// emitting one op per random-draw site — then plans the fused
    /// blocks over that stream. Topology errors surface here, before any
    /// trajectory runs.
    fn build_plan(&self, program: &LoweredProgram) -> Result<FusedProgram, ExecError> {
        let n = program.num_qubits as usize;
        let mut ops: Vec<TrajOp> = Vec::new();
        let mut descs: Vec<OpDesc> = Vec::new();
        let mut relax: Vec<RelaxTable> = Vec::new();

        fn push_relax(
            device: &DeviceModel,
            ops: &mut Vec<TrajOp>,
            descs: &mut Vec<OpDesc>,
            relax: &mut Vec<RelaxTable>,
            qubit: usize,
            samples: u64,
        ) {
            let table = match relax
                .iter()
                .position(|t| t.qubit == qubit && t.samples == samples)
            {
                Some(pos) => pos,
                None => {
                    let p = device.qubit(qubit as u32);
                    let t = samples as f64 * DT;
                    let stages = channels::thermal_relaxation(t, p.t1, p.t2);
                    let weight_ops = stages
                        .iter()
                        .map(|stage| stage.iter().map(|k| &k.dagger() * k).collect())
                        .collect();
                    relax.push(RelaxTable {
                        qubit,
                        samples,
                        stages,
                        weight_ops,
                    });
                    relax.len() - 1
                }
            };
            ops.push(TrajOp::Relax { table });
            descs.push(OpDesc::local(qubit));
        }

        for q in 0..n {
            ops.push(TrajOp::Spam);
            descs.push(OpDesc::local(q));
        }
        let mut cursor = vec![0u64; n];
        for block in &program.blocks {
            match block {
                Block::Idle { qubit, duration } => {
                    let q = *qubit as usize;
                    push_relax(self.device, &mut ops, &mut descs, &mut relax, q, *duration);
                    cursor[q] += duration;
                }
                Block::Gate1Q { qubit, waveforms } => {
                    let q = *qubit as usize;
                    for wave in waveforms {
                        ops.push(TrajOp::Wave {
                            qubit: *qubit,
                            wave: wave.clone(),
                        });
                        descs.push(OpDesc::unitary(&[q]));
                        push_relax(
                            self.device,
                            &mut ops,
                            &mut descs,
                            &mut relax,
                            q,
                            wave.duration(),
                        );
                        cursor[q] += wave.duration();
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    let (c, t) = (*control as usize, *target as usize);
                    // Validate topology up front so the per-trajectory
                    // replay cannot fail.
                    self.device
                        .pair_exec(*control, *target)
                        .ok_or(ExecError::UncoupledPair {
                            control: *control,
                            target: *target,
                        })?;
                    self.device.control_channel(*control, *target).ok_or(
                        ExecError::MissingControlChannel {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let start = cursor[c].max(cursor[t]);
                    for &q in &[c, t] {
                        let idle = start - cursor[q];
                        if idle > 0 {
                            push_relax(self.device, &mut ops, &mut descs, &mut relax, q, idle);
                        }
                        cursor[q] = start;
                    }
                    ops.push(TrajOp::Cr {
                        control: *control,
                        target: *target,
                        schedule: schedule.clone(),
                    });
                    descs.push(OpDesc::unitary(&[c, t]));
                    let dur = schedule.duration();
                    push_relax(self.device, &mut ops, &mut descs, &mut relax, c, dur);
                    push_relax(self.device, &mut ops, &mut descs, &mut relax, t, dur);
                    cursor[c] += dur;
                    cursor[t] += dur;
                }
            }
        }
        let end = cursor.iter().copied().max().unwrap_or(0);
        for (q, &at) in cursor.iter().enumerate().take(n) {
            let idle = end - at;
            if idle > 0 {
                push_relax(self.device, &mut ops, &mut descs, &mut relax, q, idle);
            }
        }

        let dims = vec![2usize; n];
        let plan = FusionPlan::build(&descs, &dims, MAX_FUSED_WEIGHT);
        Ok(FusedProgram { ops, plan, relax })
    }

    /// Replays the hoisted plan for one stochastic trajectory: folds
    /// gates and sampled Kraus branches into the runtime block
    /// accumulators, sweeps the state only at block closes.
    fn evolve_fused(
        &self,
        fp: &FusedProgram,
        w: &mut TrajWorker,
        rng: &mut impl Rng,
    ) -> Result<(), ExecError> {
        w.psi.reset_zero();
        let p_reset = self.device.reset_excited_prob();
        for step in &fp.plan.steps {
            match step {
                Step::Open { block } => {
                    let rt = &mut w.blocks[*block];
                    rt.acc.set_identity();
                    rt.rho_valid = false;
                    rt.open = true;
                    rt.dirty = false;
                }
                Step::Fold { op, block, local } => match &fp.ops[*op] {
                    TrajOp::Spam => {
                        if p_reset > 0.0 && rng.gen::<f64>() < p_reset {
                            let x = quant_sim::gates::x();
                            fold_op(w, *block, &x, local);
                        }
                    }
                    TrajOp::Wave { qubit, wave } => {
                        let wave = self.jittered(wave, rng);
                        let mut state = DriveState::default();
                        let u3x3 = self
                            .device
                            .transmon_exec(*qubit)
                            .integrate_play(&mut state, &wave);
                        let b = CMat::from_rows(&[
                            &[u3x3[(0, 0)], u3x3[(0, 1)]],
                            &[u3x3[(1, 0)], u3x3[(1, 1)]],
                        ]);
                        fold_op(w, *block, &b, local);
                    }
                    TrajOp::Cr {
                        control,
                        target,
                        schedule,
                    } => {
                        let pair = self.device.pair_exec(*control, *target).ok_or(
                            ExecError::UncoupledPair {
                                control: *control,
                                target: *target,
                            },
                        )?;
                        let u_ch = self.device.control_channel(*control, *target).ok_or(
                            ExecError::MissingControlChannel {
                                control: *control,
                                target: *target,
                            },
                        )?;
                        let schedule = self.jitter_schedule(schedule, rng);
                        let r = pair.integrate(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        );
                        fold_op(w, *block, &r.unitary, local);
                    }
                    TrajOp::Relax { table } => {
                        let t = &fp.relax[*table];
                        for (stage, wops) in t.stages.iter().zip(&t.weight_ops) {
                            relax_stage_fused(w, *block, local[0], stage, wops, rng);
                        }
                    }
                },
                Step::Merge { from, into, local } => {
                    let (head, tail) = w.blocks.split_at_mut((*from).max(*into));
                    let (dst, src) = if from < into {
                        (&mut tail[0], &head[*from])
                    } else {
                        (&mut head[*into], &tail[0])
                    };
                    w.scratch
                        .apply_left(&mut dst.acc, &src.acc, local, &dst.dims);
                    let carried = w.blocks[*from].dirty;
                    w.blocks[*from].open = false;
                    w.blocks[*into].dirty |= carried;
                    w.invalidate_open_rho();
                }
                Step::Close { block } => {
                    let TrajWorker {
                        psi,
                        scratch,
                        blocks,
                        ..
                    } = w;
                    let rt = &mut blocks[*block];
                    psi.apply_unitary_scratch(&rt.acc, &rt.targets, scratch);
                    rt.open = false;
                    w.invalidate_open_rho();
                }
            }
        }
        Ok(())
    }

    /// Applies a (possibly sub-unitary) operator through the selected
    /// kernel path.
    fn apply(&self, w: &mut TrajWorker, op: &CMat, targets: &[usize]) {
        if self.reference {
            w.psi.apply_unitary_ref(op, targets);
        } else {
            w.psi.apply_unitary_scratch(op, targets, &mut w.scratch);
        }
    }

    /// Evolves one stochastic trajectory in the worker's reused state —
    /// the unfused route (`OPC_FUSION=0` or the reference path).
    fn evolve(
        &self,
        program: &LoweredProgram,
        w: &mut TrajWorker,
        rng: &mut impl Rng,
    ) -> Result<(), ExecError> {
        let n = program.num_qubits as usize;
        w.psi.reset_zero();
        // Thermal SPAM.
        let p_reset = self.device.reset_excited_prob();
        for q in 0..n {
            if p_reset > 0.0 && rng.gen::<f64>() < p_reset {
                self.apply(w, &quant_sim::gates::x(), &[q]);
            }
        }
        let mut cursor = vec![0u64; n];

        for block in &program.blocks {
            match block {
                Block::Idle { qubit, duration } => {
                    self.relax_sampled(w, *qubit as usize, *duration, rng);
                    cursor[*qubit as usize] += duration;
                }
                Block::Gate1Q { qubit, waveforms } => {
                    let q = *qubit as usize;
                    let transmon = self.device.transmon_exec(*qubit);
                    for wave in waveforms {
                        let wave = self.jittered(wave, rng);
                        let mut state = DriveState::default();
                        let u3x3 = transmon.integrate_play(&mut state, &wave);
                        let b = CMat::from_rows(&[
                            &[u3x3[(0, 0)], u3x3[(0, 1)]],
                            &[u3x3[(1, 0)], u3x3[(1, 1)]],
                        ]);
                        // Sub-unitary contraction: renormalize (leakage is
                        // tiny; the deposited-weight branch is negligible
                        // at trajectory resolution).
                        self.apply(w, &b, &[q]);
                        w.psi.normalize();
                        self.relax_sampled(w, q, wave.duration(), rng);
                        cursor[q] += wave.duration();
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    let (c, t) = (*control as usize, *target as usize);
                    let start = cursor[c].max(cursor[t]);
                    for &q in &[c, t] {
                        let idle = start - cursor[q];
                        if idle > 0 {
                            self.relax_sampled(w, q, idle, rng);
                        }
                        cursor[q] = start;
                    }
                    let pair = self.device.pair_exec(*control, *target).ok_or(
                        ExecError::UncoupledPair {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let u_ch = self.device.control_channel(*control, *target).ok_or(
                        ExecError::MissingControlChannel {
                            control: *control,
                            target: *target,
                        },
                    )?;
                    let schedule = self.jitter_schedule(schedule, rng);
                    let r = if self.reference {
                        pair.integrate_ref(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        )
                    } else {
                        pair.integrate(
                            &schedule,
                            Channel::Drive(*control),
                            Channel::Drive(*target),
                            u_ch,
                        )
                    };
                    self.apply(w, &r.unitary, &[c, t]);
                    w.psi.normalize();
                    let dur = schedule.duration();
                    self.relax_sampled(w, c, dur, rng);
                    self.relax_sampled(w, t, dur, rng);
                    cursor[c] += dur;
                    cursor[t] += dur;
                }
            }
        }
        let end = cursor.iter().copied().max().unwrap_or(0);
        for (q, &at) in cursor.iter().enumerate().take(n) {
            let idle = end - at;
            if idle > 0 {
                self.relax_sampled(w, q, idle, rng);
            }
        }
        Ok(())
    }

    /// Samples one branch of the thermal-relaxation channels for a qubit
    /// over `samples` of wall-clock time.
    ///
    /// Fast path: every branch of a stage is weighed in place
    /// (`‖Kψ‖²` via [`KernelScratch::branch_weight`]) and only the chosen
    /// operator is applied — no per-branch clone of the `O(2ⁿ)` state.
    /// Reference path: the original clone-per-branch route.
    fn relax_sampled(&self, w: &mut TrajWorker, qubit: usize, samples: u64, rng: &mut impl Rng) {
        let p = self.device.qubit(qubit as u32);
        let t = samples as f64 * DT;
        let TrajWorker {
            psi,
            scratch,
            weights,
            relax,
            ..
        } = w;
        let pos = match relax
            .iter()
            .position(|(q, s, _)| *q == qubit && *s == samples)
        {
            Some(pos) => pos,
            None => {
                relax.push((qubit, samples, channels::thermal_relaxation(t, p.t1, p.t2)));
                relax.len() - 1
            }
        };
        for stage in &relax[pos].2 {
            if self.reference {
                // Trial-apply every branch to a cloned state, then keep the
                // sampled one.
                let mut probs = Vec::with_capacity(stage.len());
                let mut branches = Vec::with_capacity(stage.len());
                for k in stage {
                    let mut trial = psi.clone();
                    let prob = trial.apply_kraus_branch_ref(k, &[qubit]);
                    probs.push(prob.max(0.0));
                    branches.push(trial);
                }
                let choice = quant_math::categorical(rng, &probs);
                let mut chosen = branches.swap_remove(choice);
                chosen.normalize();
                *psi = chosen;
            } else {
                weights.clear();
                for k in stage {
                    weights.push(
                        scratch
                            .branch_weight(psi.amplitudes(), k, &[qubit], psi.dims())
                            .max(0.0),
                    );
                }
                let choice = quant_math::categorical(rng, weights);
                psi.apply_unitary_scratch(&stage[choice], &[qubit], scratch);
                psi.normalize();
            }
        }
    }

    /// Classical readout error applied to a sampled outcome index.
    fn noisy_readout(&self, outcome: usize, n: usize, rng: &mut impl Rng) -> usize {
        let mut read = outcome;
        for q in 0..n {
            let r = self.device.readout(q as u32);
            let bit = (outcome >> q) & 1;
            let flip_prob = if bit == 0 { r.p1_given_0 } else { r.p0_given_1 };
            if rng.gen::<f64>() < flip_prob {
                read ^= 1 << q;
            }
        }
        read
    }

    fn jittered(&self, w: &quant_pulse::Waveform, rng: &mut impl Rng) -> quant_pulse::Waveform {
        let sigma = self.device.pulse_amp_jitter();
        let peak = w.peak();
        // opclint: allow(float-literal-eq): exact short-circuit — noiseless devices report a literal 0.0 jitter sigma
        if sigma == 0.0 || peak < 1e-12 {
            return w.clone();
        }
        let xi = normal(rng, 0.0, sigma);
        w.scaled((1.0 + xi / peak).clamp(0.0, 1.0 / peak))
    }

    fn jitter_schedule(&self, schedule: &Schedule, rng: &mut impl Rng) -> Schedule {
        let sigma = self.device.pulse_amp_jitter();
        // opclint: allow(float-literal-eq): exact short-circuit — noiseless devices report a literal 0.0 jitter sigma
        if sigma == 0.0 {
            return schedule.clone();
        }
        let mut out = Schedule::new(schedule.name());
        for ti in schedule.instructions() {
            let instruction = match &ti.instruction {
                Instruction::Play { waveform, channel } => Instruction::Play {
                    waveform: self.jittered(waveform, rng),
                    channel: *channel,
                },
                other => other.clone(),
            };
            out.insert(ti.start, instruction);
        }
        out
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceModel {
        self.device
    }
}

/// Folds `op` into block `block`'s accumulator at the given local digit
/// positions, keeping the cached reduced density in sync when present.
///
/// Any fold may be non-trace-preserving (Kraus branches outright; gate
/// blocks through qutrit leakage), which perturbs the marginals other
/// open blocks see — so every *other* open block's cached ρ is dropped
/// and rebuilt (behind a flush) on its next weight query.
fn fold_op(w: &mut TrajWorker, block: usize, op: &CMat, local: &[usize]) {
    let TrajWorker {
        scratch, blocks, ..
    } = w;
    for (j, other) in blocks.iter_mut().enumerate() {
        if j != block && other.open {
            other.rho_valid = false;
        }
    }
    let rt = &mut blocks[block];
    scratch.apply_left(&mut rt.acc, op, local, &rt.dims);
    rt.dirty = true;
    if rt.rho_valid {
        scratch.apply_conjugate(&mut rt.rho, op, local, &rt.dims);
    }
}

/// One fused relaxation stage: weigh every Kraus branch against the
/// block's reduced density (`Tr(K†K·ρ_B)` — exact for a local operator,
/// scale-invariant for the categorical draw), sample one, and fold the
/// chosen branch *renormalized* (`K/√p_rel`) into the accumulator — the
/// fused equivalent of the unfused path's apply-then-normalize.
///
/// The ρ capture is exact, not approximate: before (re)capturing, every
/// *other* open block with pending content is flushed into the state
/// (disjoint supports commute, so early application preserves program
/// order), and the querying block's own accumulator is conjugated on
/// top. The branch weights therefore match the unfused path's
/// `‖Kψ‖²` ratios to floating-point rounding, which is what keeps the
/// categorical draws — and hence the sampled counts — aligned across
/// the fused, unfused, and reference routes.
fn relax_stage_fused(
    w: &mut TrajWorker,
    block: usize,
    q_local: usize,
    stage: &[CMat],
    weight_ops: &[CMat],
    rng: &mut impl Rng,
) {
    let TrajWorker {
        psi,
        scratch,
        weights,
        blocks,
        op_tmp,
        ..
    } = w;
    // The sampled branch below is a fold; foreign cached marginals go
    // stale the same way they do in `fold_op`.
    for (j, other) in blocks.iter_mut().enumerate() {
        if j != block && other.open {
            other.rho_valid = false;
        }
    }
    if !blocks[block].rho_valid {
        // Flush every other dirty open block so the state carries all
        // pending foreign content; they stay open and keep accumulating
        // from identity.
        for (j, other) in blocks.iter_mut().enumerate() {
            if j != block && other.open && other.dirty {
                psi.apply_unitary_scratch(&other.acc, &other.targets, scratch);
                other.acc.set_identity();
                other.dirty = false;
            }
        }
        // Lazy capture: reduced density of the block's targets from the
        // applied state, then the pending accumulator folded on top.
        let rt = &mut blocks[block];
        scratch.reduced_density_state(psi.amplitudes(), &rt.targets, psi.dims(), &mut rt.rho);
        scratch.apply_conjugate(&mut rt.rho, &rt.acc, &rt.full, &rt.dims);
        rt.rho_valid = true;
    }
    let rt = &mut blocks[block];
    weights.clear();
    for wop in weight_ops {
        weights.push(
            scratch
                .expectation(&rt.rho, wop, &[q_local], &rt.dims)
                .re
                .max(0.0),
        );
    }
    let total: f64 = weights.iter().sum();
    let choice = quant_math::categorical(rng, weights);
    let rel = if total > 0.0 {
        weights[choice] / total
    } else {
        1.0
    };
    let scale = if rel > 1e-280 { 1.0 / rel.sqrt() } else { 1.0 };
    op_tmp.copy_from(&stage[choice]);
    op_tmp.scale_assign(C64::real(scale));
    let local = [q_local];
    scratch.apply_left(&mut rt.acc, op_tmp, &local, &rt.dims);
    scratch.apply_conjugate(&mut rt.rho, op_tmp, &local, &rt.dims);
    rt.dirty = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;
    use crate::executor::PulseExecutor;
    use quant_math::seeded;

    #[test]
    fn trajectories_match_density_matrix_on_bell_pair() {
        let mut rng = seeded(2);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let cal = calibrate(&device, &mut rng);
        // Lower a Bell pair via the cmd_def directly (avoid a dependency on
        // the compiler crate here).
        // H via two rx90 pulses is compiler territory; use X on q0 and a
        // CNOT — |00⟩ → |01⟩ → |11⟩: a deterministic outcome with noise.
        let blocks = vec![
            Block::Gate1Q {
                qubit: 0,
                waveforms: vec![cal.qubit(0).rx180_waveform("x")],
            },
            Block::Gate2Q {
                control: 0,
                target: 1,
                schedule: cal.cmd_def().get("cx", &[0, 1]).unwrap().clone(),
            },
        ];
        let program = LoweredProgram {
            num_qubits: 2,
            blocks,
            schedule: Schedule::new("p"),
        };
        // Density-matrix reference.
        let exec = PulseExecutor::new(&device);
        let mut rng_a = seeded(5);
        let dm = exec.run(&program, &mut rng_a);
        // Trajectory ensemble (fused path).
        let traj = TrajectoryExecutor::new(&device, 96).with_fusion(true);
        let mut rng_b = seeded(6);
        let counts = traj.run(&program, 48_000, &mut rng_b);
        let total: u64 = counts.iter().sum();
        for (i, (&c, &p)) in counts.iter().zip(&dm.probabilities).enumerate() {
            let freq = c as f64 / total as f64;
            assert!(
                (freq - p).abs() < 0.04,
                "outcome {i}: trajectory {freq:.3} vs density {p:.3}"
            );
        }
    }

    #[test]
    fn fused_counts_match_unfused_counts_bit_identically() {
        let mut rng = seeded(11);
        let device = DeviceModel::almaden_like(3, &mut rng);
        let cal = calibrate(&device, &mut rng);
        let blocks = vec![
            Block::Gate1Q {
                qubit: 0,
                waveforms: vec![cal.qubit(0).rx180_waveform("x")],
            },
            Block::Gate2Q {
                control: 0,
                target: 1,
                schedule: cal.cmd_def().get("cx", &[0, 1]).unwrap().clone(),
            },
            Block::Gate2Q {
                control: 1,
                target: 2,
                schedule: cal.cmd_def().get("cx", &[1, 2]).unwrap().clone(),
            },
            Block::Idle {
                qubit: 0,
                duration: 2_000,
            },
        ];
        let program = LoweredProgram {
            num_qubits: 3,
            blocks,
            schedule: Schedule::new("ghz"),
        };
        let pool = ShotPool::from_env();
        for root in [3u64, 0xBEEF, 0x5EED] {
            let fused = TrajectoryExecutor::new(&device, 12)
                .with_fusion(true)
                .try_run_pooled(&program, 3_000, root, &pool)
                .unwrap();
            let unfused = TrajectoryExecutor::new(&device, 12)
                .with_fusion(false)
                .try_run_pooled(&program, 3_000, root, &pool)
                .unwrap();
            assert_eq!(fused, unfused, "root {root}");
        }
    }

    #[test]
    fn relaxation_sampling_decays_excited_state() {
        let mut rng = seeded(3);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let traj = TrajectoryExecutor::new(&device, 256);
        // |1⟩ then a long idle (~0.7·T1): survival ≈ exp(−0.7) ≈ 0.5.
        let cal = calibrate(&device, &mut rng);
        let t1_samples = (device.qubit(0).t1 * 0.7 / DT) as u64;
        let program = LoweredProgram {
            num_qubits: 1,
            blocks: vec![
                Block::Gate1Q {
                    qubit: 0,
                    waveforms: vec![cal.qubit(0).rx180_waveform("x")],
                },
                Block::Idle {
                    qubit: 0,
                    duration: t1_samples,
                },
            ],
            schedule: Schedule::new("decay"),
        };
        let counts = traj.run(&program, 16_000, &mut rng);
        let p1 = counts[1] as f64 / 16_000.0;
        assert!(
            (p1 - 0.5_f64).abs() < 0.08,
            "survival after 0.7·T1 should be ≈0.5 (readout-adjusted): {p1}"
        );
    }
}
