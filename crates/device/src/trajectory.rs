//! Monte-Carlo (quantum-trajectory) execution of lowered programs.
//!
//! The density-matrix executor is exact but costs `O(4ⁿ)` memory — fine
//! through ~6 qubits, hopeless beyond. Trajectories trade variance for
//! scale: each run keeps a *state vector* (`O(2ⁿ)`), samples one Kraus
//! branch wherever the density executor would apply a channel, and the
//! ensemble over trajectories converges to the same distribution. This is
//! how the reproduction reaches QAOA sizes past the paper's five qubits.

use crate::device::DeviceModel;
use crate::executor::{Block, LoweredProgram};
use crate::params::DT;
use crate::transmon::DriveState;
use quant_math::{normal, CMat};
use quant_pulse::{Channel, Instruction, Schedule};
use quant_sim::{channels, StateVector};
use rand::Rng;

/// The trajectory executor.
#[derive(Clone, Debug)]
pub struct TrajectoryExecutor<'a> {
    device: &'a DeviceModel,
    trajectories: usize,
}

impl<'a> TrajectoryExecutor<'a> {
    /// Creates an executor that averages over `trajectories` noise
    /// realizations.
    pub fn new(device: &'a DeviceModel, trajectories: usize) -> Self {
        assert!(trajectories >= 1);
        TrajectoryExecutor {
            device,
            trajectories,
        }
    }

    /// Runs the program, sampling `shots` measurement outcomes spread over
    /// the trajectories. Returns counts over the `2ⁿ` outcomes (readout
    /// error applied per shot).
    pub fn run(
        &self,
        program: &LoweredProgram,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Vec<u64> {
        let n = program.num_qubits as usize;
        let mut counts = vec![0u64; 1 << n];
        let per_traj = shots.div_ceil(self.trajectories);
        let mut remaining = shots;
        for _ in 0..self.trajectories {
            if remaining == 0 {
                break;
            }
            let take = per_traj.min(remaining);
            remaining -= take;
            let psi = self.run_single(program, rng);
            let probs = psi.probabilities();
            for _ in 0..take {
                let outcome = quant_math::categorical(rng, &probs);
                counts[self.noisy_readout(outcome, n, rng)] += 1;
            }
        }
        counts
    }

    /// Evolves one stochastic trajectory.
    fn run_single(&self, program: &LoweredProgram, rng: &mut impl Rng) -> StateVector {
        let n = program.num_qubits as usize;
        let mut psi = StateVector::zero_qubits(n);
        // Thermal SPAM.
        let p_reset = self.device.reset_excited_prob();
        for q in 0..n {
            if p_reset > 0.0 && rng.gen::<f64>() < p_reset {
                psi.apply_unitary(&quant_sim::gates::x(), &[q]);
            }
        }
        let mut cursor = vec![0u64; n];

        for block in &program.blocks {
            match block {
                Block::Idle { qubit, duration } => {
                    self.relax_sampled(&mut psi, *qubit as usize, *duration, rng);
                    cursor[*qubit as usize] += duration;
                }
                Block::Gate1Q { qubit, waveforms } => {
                    let q = *qubit as usize;
                    let transmon = self.device.transmon_exec(*qubit);
                    for w in waveforms {
                        let w = self.jittered(w, rng);
                        let mut state = DriveState::default();
                        let u3x3 = transmon.integrate_play(&mut state, &w);
                        let b = CMat::from_rows(&[
                            &[u3x3[(0, 0)], u3x3[(0, 1)]],
                            &[u3x3[(1, 0)], u3x3[(1, 1)]],
                        ]);
                        // Sub-unitary contraction: renormalize (leakage is
                        // tiny; the deposited-weight branch is negligible
                        // at trajectory resolution).
                        psi.apply_kraus_branch(&b, &[q]);
                        psi.normalize();
                        self.relax_sampled(&mut psi, q, w.duration(), rng);
                        cursor[q] += w.duration();
                    }
                }
                Block::Gate2Q {
                    control,
                    target,
                    schedule,
                } => {
                    let (c, t) = (*control as usize, *target as usize);
                    let start = cursor[c].max(cursor[t]);
                    for &q in &[c, t] {
                        let idle = start - cursor[q];
                        if idle > 0 {
                            self.relax_sampled(&mut psi, q, idle, rng);
                        }
                        cursor[q] = start;
                    }
                    let pair = self
                        .device
                        .pair_exec(*control, *target)
                        .expect("coupled pair");
                    let u_ch = self.device.control_channel(*control, *target).unwrap();
                    let schedule = self.jitter_schedule(schedule, rng);
                    let r = pair.integrate(
                        &schedule,
                        Channel::Drive(*control),
                        Channel::Drive(*target),
                        u_ch,
                    );
                    psi.apply_kraus_branch(&r.unitary, &[c, t]);
                    psi.normalize();
                    let dur = schedule.duration();
                    self.relax_sampled(&mut psi, c, dur, rng);
                    self.relax_sampled(&mut psi, t, dur, rng);
                    cursor[c] += dur;
                    cursor[t] += dur;
                }
            }
        }
        let end = cursor.iter().copied().max().unwrap_or(0);
        for (q, &at) in cursor.iter().enumerate().take(n) {
            let idle = end - at;
            if idle > 0 {
                self.relax_sampled(&mut psi, q, idle, rng);
            }
        }
        psi
    }

    /// Samples one branch of the thermal-relaxation channels for a qubit
    /// over `samples` of wall-clock time.
    fn relax_sampled(
        &self,
        psi: &mut StateVector,
        qubit: usize,
        samples: u64,
        rng: &mut impl Rng,
    ) {
        let p = self.device.qubit(qubit as u32);
        let t = samples as f64 * DT;
        for stage in channels::thermal_relaxation(t, p.t1, p.t2) {
            // Sample one Kraus branch with the correct probabilities.
            let mut weights = Vec::with_capacity(stage.len());
            let mut branches = Vec::with_capacity(stage.len());
            for k in &stage {
                let mut trial = psi.clone();
                let prob = trial.apply_kraus_branch(k, &[qubit]);
                weights.push(prob.max(0.0));
                branches.push(trial);
            }
            let choice = quant_math::categorical(rng, &weights);
            let mut chosen = branches.swap_remove(choice);
            chosen.normalize();
            *psi = chosen;
        }
    }

    /// Classical readout error applied to a sampled outcome index.
    fn noisy_readout(&self, outcome: usize, n: usize, rng: &mut impl Rng) -> usize {
        let mut read = outcome;
        for q in 0..n {
            let r = self.device.readout(q as u32);
            let bit = (outcome >> q) & 1;
            let flip_prob = if bit == 0 { r.p1_given_0 } else { r.p0_given_1 };
            if rng.gen::<f64>() < flip_prob {
                read ^= 1 << q;
            }
        }
        read
    }

    fn jittered(
        &self,
        w: &quant_pulse::Waveform,
        rng: &mut impl Rng,
    ) -> quant_pulse::Waveform {
        let sigma = self.device.pulse_amp_jitter();
        let peak = w.peak();
        if sigma == 0.0 || peak < 1e-12 {
            return w.clone();
        }
        let xi = normal(rng, 0.0, sigma);
        w.scaled((1.0 + xi / peak).clamp(0.0, 1.0 / peak))
    }

    fn jitter_schedule(&self, schedule: &Schedule, rng: &mut impl Rng) -> Schedule {
        let sigma = self.device.pulse_amp_jitter();
        if sigma == 0.0 {
            return schedule.clone();
        }
        let mut out = Schedule::new(schedule.name());
        for ti in schedule.instructions() {
            let instruction = match &ti.instruction {
                Instruction::Play { waveform, channel } => Instruction::Play {
                    waveform: self.jittered(waveform, rng),
                    channel: *channel,
                },
                other => other.clone(),
            };
            out.insert(ti.start, instruction);
        }
        out
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceModel {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;
    use crate::executor::PulseExecutor;
    use quant_math::seeded;

    #[test]
    fn trajectories_match_density_matrix_on_bell_pair() {
        let mut rng = seeded(2);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let cal = calibrate(&device, &mut rng);
        // Lower a Bell pair via the cmd_def directly (avoid a dependency on
        // the compiler crate here).
        // H via two rx90 pulses is compiler territory; use X on q0 and a
        // CNOT — |00⟩ → |01⟩ → |11⟩: a deterministic outcome with noise.
        let blocks = vec![
            Block::Gate1Q {
                qubit: 0,
                waveforms: vec![cal.qubit(0).rx180_waveform("x")],
            },
            Block::Gate2Q {
                control: 0,
                target: 1,
                schedule: cal.cmd_def().get("cx", &[0, 1]).unwrap().clone(),
            },
        ];
        let program = LoweredProgram {
            num_qubits: 2,
            blocks,
            schedule: Schedule::new("p"),
        };
        // Density-matrix reference.
        let exec = PulseExecutor::new(&device);
        let mut rng_a = seeded(5);
        let dm = exec.run(&program, &mut rng_a);
        // Trajectory ensemble.
        let traj = TrajectoryExecutor::new(&device, 96);
        let mut rng_b = seeded(6);
        let counts = traj.run(&program, 48_000, &mut rng_b);
        let total: u64 = counts.iter().sum();
        for (i, (&c, &p)) in counts.iter().zip(&dm.probabilities).enumerate() {
            let freq = c as f64 / total as f64;
            assert!(
                (freq - p).abs() < 0.04,
                "outcome {i}: trajectory {freq:.3} vs density {p:.3}"
            );
        }
    }

    #[test]
    fn relaxation_sampling_decays_excited_state() {
        let mut rng = seeded(3);
        let device = DeviceModel::almaden_like(1, &mut rng);
        let traj = TrajectoryExecutor::new(&device, 256);
        // |1⟩ then a long idle (~0.7·T1): survival ≈ exp(−0.7) ≈ 0.5.
        let cal = calibrate(&device, &mut rng);
        let t1_samples = (device.qubit(0).t1 * 0.7 / DT) as u64;
        let program = LoweredProgram {
            num_qubits: 1,
            blocks: vec![
                Block::Gate1Q {
                    qubit: 0,
                    waveforms: vec![cal.qubit(0).rx180_waveform("x")],
                },
                Block::Idle {
                    qubit: 0,
                    duration: t1_samples,
                },
            ],
            schedule: Schedule::new("decay"),
        };
        let counts = traj.run(&program, 16_000, &mut rng);
        let p1 = counts[1] as f64 / 16_000.0;
        assert!(
            (p1 - 0.5_f64).abs() < 0.08,
            "survival after 0.7·T1 should be ≈0.5 (readout-adjusted): {p1}"
        );
    }
}
