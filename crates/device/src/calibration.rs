//! Daily calibration experiments.
//!
//! This module reproduces the tune-up loop the paper's approach is
//! bootstrapped from (§2.3): a Rabi amplitude sweep fixes the `Rx(90°)` and
//! `Rx(180°)` pulse amplitudes, a DRAG sweep fixes the leakage-cancelling β,
//! and the CNOT tune-up finds the echoed-CR flat-top width — which, as the
//! paper notes, calibrates the single-pulse `Rx(180°)` "for free" because
//! the echo needs it.
//!
//! The output is a [`Calibration`] holding the pulse parameters plus a
//! populated [`CmdDef`] with the backend-reported primitives: `rx90`,
//! `rx180`, `cx`, and `measure`. The paper's compiler reads these entries
//! to build its augmented basis gates.

use crate::cache::{probe_key, quantize_probe, ProbeCache};
use crate::device::DeviceModel;
use crate::executor::ShotPool;
use crate::params::DT;
use crate::snapshot::{snapshot_key, CalStore};
use crate::twoqubit::{extract_control_z, extract_zx_angle};
use quant_math::{fit_cosine, normal, seeded, stream_seed};
use quant_pulse::{Channel, CmdDef, CmdKey, Drag, GaussianSquare, Instruction, Schedule};
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, TAU};

/// Calibrated single-qubit pulses.
#[derive(Clone, Debug, PartialEq)]
pub struct QubitCalibration {
    /// The π/2 DRAG pulse (the standard basis-gate workhorse).
    pub rx90: Drag,
    /// The π DRAG pulse — calibrated as a side effect of the CNOT tune-up
    /// and exploited by the paper's DirectX/DirectRx gates.
    pub rx180: Drag,
    /// Virtual-Z phase wrapper `(after, before)` making the rx90 pulse act
    /// as a pure X rotation: `Rz(−after)·U_pulse·Rz(−before) = Rx(π/2)`.
    /// Measured by tomography of the calibrated pulse (the paper's §4.4
    /// empirical phase correction); realized with free `ShiftPhase`s.
    pub rx90_phase: (f64, f64),
    /// Same for the rx180 pulse.
    pub rx180_phase: (f64, f64),
    /// AC-Stark-compensating carrier detuning of the rx90 pulse, in
    /// radians per `dt` sample (baked into the rendered waveform).
    pub rx90_detuning: f64,
    /// Same for the rx180 pulse.
    pub rx180_detuning: f64,
    /// The Fig.-7 characterization table for `DirectRx(θ)`: for each
    /// amplitude scale `s = θ/π ∈ [0, 1]` of the rx180 pulse, the measured
    /// ZXZ phase corrections `(a, c)`. The deviations are θ-dependent
    /// (sinusoidal in the paper's data) because the Stark compensation is
    /// calibrated at full amplitude.
    pub direct_rx_table: Vec<(f64, f64, f64)>,
}

impl QubitCalibration {
    /// The scaled `DirectRx(θ)` waveform (paper §4.2): the calibrated
    /// rx180 pulse with amplitude scaled by `θ/π`. Negative θ flips the
    /// drive sign.
    pub fn direct_rx_waveform(&self, theta: f64, name: impl Into<String>) -> quant_pulse::Waveform {
        self.rx180_waveform(name)
            .scaled(theta / std::f64::consts::PI)
    }

    /// The empirical phase correction `(a, c)` for `DirectRx(θ)`,
    /// interpolated from the characterization table. By the exact symmetry
    /// `U(−s) = Z·U(s)·Z`, negative angles reuse the |θ| entry.
    pub fn direct_rx_phase(&self, theta: f64) -> (f64, f64) {
        let s = (theta.abs() / std::f64::consts::PI).clamp(0.0, 1.0);
        let table = &self.direct_rx_table;
        if table.is_empty() {
            return (0.0, 0.0);
        }
        // Binary search the bracketing entries and interpolate linearly.
        let mut hi = table
            .iter()
            .position(|&(scale, _, _)| scale >= s)
            .unwrap_or(table.len() - 1);
        if hi == 0 {
            hi = 1.min(table.len() - 1);
        }
        let lo = hi.saturating_sub(1);
        let (s0, a0, c0) = table[lo];
        let (s1, a1, c1) = table[hi];
        let w = if (s1 - s0).abs() < 1e-12 {
            0.0
        } else {
            (s - s0) / (s1 - s0)
        };
        (a0 + w * (a1 - a0), c0 + w * (c1 - c0))
    }

    /// Appends the phase-corrected `DirectRx(θ)` pulse.
    pub fn append_direct_rx(
        &self,
        s: &mut Schedule,
        theta: f64,
        channel: Channel,
        barrier: &[Channel],
        name: &str,
    ) {
        append_corrected(
            s,
            self.direct_rx_waveform(theta, name),
            self.direct_rx_phase(theta),
            channel,
            barrier,
        );
    }
    /// The rendered rx90 waveform (detuning baked in).
    pub fn rx90_waveform(&self, name: impl Into<String>) -> quant_pulse::Waveform {
        self.rx90.waveform_detuned(name, self.rx90_detuning)
    }

    /// The rendered rx180 waveform (detuning baked in).
    pub fn rx180_waveform(&self, name: impl Into<String>) -> quant_pulse::Waveform {
        self.rx180.waveform_detuned(name, self.rx180_detuning)
    }

    /// Appends the phase-corrected rx90 pulse to a schedule on `channel`,
    /// after the given barrier channels.
    pub fn append_rx90(&self, s: &mut Schedule, channel: Channel, barrier: &[Channel], name: &str) {
        append_corrected(
            s,
            self.rx90_waveform(name),
            self.rx90_phase,
            channel,
            barrier,
        );
    }

    /// Appends the phase-corrected rx180 pulse to a schedule on `channel`.
    pub fn append_rx180(
        &self,
        s: &mut Schedule,
        channel: Channel,
        barrier: &[Channel],
        name: &str,
    ) {
        append_corrected(
            s,
            self.rx180_waveform(name),
            self.rx180_phase,
            channel,
            barrier,
        );
    }
}

/// Appends `ShiftPhase(before) | Play | ShiftPhase(after)`; with the
/// integrator's frame semantics this realizes `Rz(−a)·U·Rz(−c)`.
fn append_corrected(
    s: &mut Schedule,
    waveform: quant_pulse::Waveform,
    (a, c): (f64, f64),
    channel: Channel,
    barrier: &[Channel],
) {
    s.append_after(Instruction::ShiftPhase { phase: c, channel }, barrier);
    s.append_after(Instruction::Play { waveform, channel }, barrier);
    s.append(Instruction::ShiftPhase { phase: a, channel });
}

/// Calibrated pulses for one directed coupled pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairCalibration {
    /// Control qubit.
    pub control: u32,
    /// Target qubit.
    pub target: u32,
    /// The half-echo CR pulse producing a 45° ZX rotation at positive
    /// amplitude.
    pub cr45: GaussianSquare,
    /// Residual control-Z angle of the echoed CR(−90°) block (from the
    /// surviving ZI term), compensated by a virtual-Z in the CNOT schedule.
    pub zi_residual: f64,
}

/// The result of a full device calibration.
///
/// Equality is bit-exact over every calibrated parameter (and the derived
/// `cmd_def`), which is what the determinism and snapshot round-trip tests
/// assert.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    qubits: Vec<QubitCalibration>,
    pairs: Vec<PairCalibration>,
    cmd_def: CmdDef,
    measure_duration: u64,
}

/// Options controlling calibration fidelity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationOptions {
    /// Shots per Rabi/DRAG sweep point (finite shots → fit error).
    pub shots: usize,
    /// Rabi/DRAG pulse template duration in `dt`.
    pub pulse_duration: u64,
    /// Rabi/DRAG pulse template σ in `dt`.
    pub pulse_sigma: f64,
    /// CR pulse amplitude.
    pub cr_amp: f64,
    /// CR pulse edge σ in `dt`.
    pub cr_sigma: f64,
    /// Measurement window in `dt`.
    pub measure_duration: u64,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            shots: 1024,
            pulse_duration: 160,
            pulse_sigma: 40.0,
            cr_amp: 0.3,
            cr_sigma: 20.0,
            measure_duration: 16_000,
        }
    }
}

impl Calibration {
    /// Runs the full calibration suite against the device's
    /// calibration-time parameters.
    ///
    /// Draws exactly one root seed from `rng` (on cache hit *and* miss, so
    /// the caller's stream continues identically either way) and delegates
    /// to [`Calibration::run_seeded`]: every tune-up task derives its own
    /// RNG stream from the root, so the result is bit-identical at any
    /// `OPC_THREADS` value.
    pub fn run(device: &DeviceModel, opts: &CalibrationOptions, rng: &mut impl Rng) -> Self {
        let root = rng.gen::<u64>();
        Self::run_seeded(device, opts, root)
    }

    /// Runs the calibration from an explicit root seed, with the snapshot
    /// store, thread pool and probe cache taken from the environment
    /// (`OPC_CAL_CACHE`, `OPC_THREADS`, `OPC_PROBE_CACHE`).
    pub fn run_seeded(device: &DeviceModel, opts: &CalibrationOptions, root: u64) -> Self {
        Self::run_seeded_with(
            device,
            opts,
            root,
            &CalStore::from_env(),
            &ShotPool::from_env(),
            &ProbeCache::new(),
        )
    }

    /// Fully explicit calibration entry point: every fast-path collaborator
    /// is a parameter, so tests and benches can pin the store, the thread
    /// count and the probe cache without touching process-global state.
    ///
    /// The tune-up itself is a two-phase fan-out over `pool`: qubits first
    /// (task `q` runs on `seeded(stream_seed(root, q))`, its sweeps batched
    /// on a nested per-task pool sized so total threads stay at
    /// `pool.threads()`), then pairs (which consume the qubit results and
    /// draw no randomness). Job `i` fills slot `i` whatever thread runs it,
    /// so the result is a function of `(device, opts, root)` alone.
    pub fn run_seeded_with(
        device: &DeviceModel,
        opts: &CalibrationOptions,
        root: u64,
        store: &CalStore,
        pool: &ShotPool,
        probes: &ProbeCache,
    ) -> Self {
        let key = snapshot_key(device, opts, root);
        if let Some(cal) = store.load(key, device) {
            return cal;
        }
        let n = device.num_qubits();
        let active = pool.threads().min(n.max(1));
        let sweep_pool = ShotPool::new((pool.threads() / active).max(1));
        let qubits = pool.map_indices(n, |q| {
            let mut rng = seeded(stream_seed(root, q as u64));
            calibrate_qubit(device, q as u32, opts, &mut rng, &sweep_pool, probes)
        });
        let pairs = pool.map(device.edges(), |_, edge| {
            calibrate_pair(device, &qubits, edge.control, edge.target, opts)
        });
        let mut cal = Calibration::from_parts(qubits, pairs, opts.measure_duration);
        cal.rebuild_cmd_def(device);
        store.save(key, &cal);
        cal
    }

    /// Assembles a calibration from its parts with an empty `cmd_def`
    /// (callers must [`Calibration::rebuild_cmd_def`] before use).
    pub(crate) fn from_parts(
        qubits: Vec<QubitCalibration>,
        pairs: Vec<PairCalibration>,
        measure_duration: u64,
    ) -> Self {
        Calibration {
            qubits,
            pairs,
            cmd_def: CmdDef::new(),
            measure_duration,
        }
    }

    /// Rebuilds the derived pulse library from the calibrated parameters —
    /// used after loading a snapshot, where `cmd_def` is not stored because
    /// it is a pure function of the parameters (floats round-trip exactly,
    /// so the rebuilt schedules are identical to the originals).
    pub(crate) fn rebuild_cmd_def(&mut self, device: &DeviceModel) {
        self.populate_cmd_def(device);
    }

    /// All per-qubit calibrations, indexed by qubit.
    pub fn qubits(&self) -> &[QubitCalibration] {
        &self.qubits
    }

    /// All calibrated directed pairs.
    pub fn pairs(&self) -> &[PairCalibration] {
        &self.pairs
    }

    /// Calibrated single-qubit pulses for qubit `q`.
    pub fn qubit(&self, q: u32) -> &QubitCalibration {
        &self.qubits[q as usize]
    }

    /// Calibrated pair pulses for `(control, target)`, if coupled.
    pub fn pair(&self, control: u32, target: u32) -> Option<&PairCalibration> {
        self.pairs
            .iter()
            .find(|p| p.control == control && p.target == target)
    }

    /// The backend-reported pulse library.
    pub fn cmd_def(&self) -> &CmdDef {
        &self.cmd_def
    }

    /// Mutable access for compilers registering augmented basis gates.
    pub fn cmd_def_mut(&mut self) -> &mut CmdDef {
        &mut self.cmd_def
    }

    /// Measurement window in `dt`.
    pub fn measure_duration(&self) -> u64 {
        self.measure_duration
    }

    /// The echoed CR schedule for `(control, target)` with total ZX angle
    /// `theta` (radians, positive or negative), built by horizontally
    /// stretching the calibrated 45° half pulse — the paper's Optimization 3.
    ///
    /// Layout (time order, X-first as in the paper's §5.1 decomposition):
    /// `X_c | CR(θ/2)·(−sign) | X_c | CR(θ/2)·sign`, then the ZI-residual
    /// virtual-Z correction scaled by `θ/90°`. Putting the echo X *before*
    /// each CR half is what exposes the cross-gate cancellation of
    /// Optimization 2: an X gate immediately preceding the block cancels
    /// with the block's leading X pulse.
    pub fn echoed_cr_schedule(
        &self,
        device: &DeviceModel,
        control: u32,
        target: u32,
        theta: f64,
    ) -> Option<Schedule> {
        self.echoed_cr_schedule_inner(device, control, target, theta, false)
    }

    /// Like [`Calibration::echoed_cr_schedule`] but omitting the leading
    /// X pulse on the control — the §5 cross-gate cancellation form. The
    /// resulting block implements `CR(θ)·X_c` (i.e. absorbs one preceding
    /// X gate on the control).
    pub fn echoed_cr_schedule_cancelled(
        &self,
        device: &DeviceModel,
        control: u32,
        target: u32,
        theta: f64,
    ) -> Option<Schedule> {
        self.echoed_cr_schedule_inner(device, control, target, theta, true)
    }

    fn echoed_cr_schedule_inner(
        &self,
        device: &DeviceModel,
        control: u32,
        target: u32,
        theta: f64,
        cancel_leading_x: bool,
    ) -> Option<Schedule> {
        let pair = self.pair(control, target)?;
        let qc = self.qubit(control);
        let u_ch = device.control_channel(control, target)?;
        let d_c = Channel::Drive(control);
        let barrier = [d_c, u_ch, Channel::Drive(target)];

        let factor = theta.abs() / FRAC_PI_2; // relative to the 90° echo
        let half = pair.cr45.stretched_area(factor);
        let sign = if theta >= 0.0 { 1.0 } else { -1.0 };

        // U = CR(s)·X·CR(−s)·X = CR(2s) with s = sign·θ/2, so the first CR
        // half (in time) carries −sign and the second +sign.
        let mut s = Schedule::new(format!("cr({theta:.3}) q{control},q{target}"));
        if !cancel_leading_x {
            qc.append_rx180(&mut s, d_c, &barrier, "xc");
        }
        s.append_after(
            Instruction::Play {
                waveform: half.waveform("cr_half").scaled(-sign),
                channel: u_ch,
            },
            &barrier,
        );
        qc.append_rx180(&mut s, d_c, &barrier, "xc");
        s.append_after(
            Instruction::Play {
                waveform: half.waveform("cr_half").scaled(sign),
                channel: u_ch,
            },
            &barrier,
        );
        // ZI residual scales with the stretched area.
        let correction = -pair.zi_residual * (theta / -FRAC_PI_2);
        s.append(Instruction::ShiftPhase {
            phase: -correction,
            channel: d_c,
        });
        Some(s)
    }

    /// Builds the cmd_def entries: `rx90`, `rx180`, `cx`, `measure`.
    fn populate_cmd_def(&mut self, device: &DeviceModel) {
        let mut def = CmdDef::new();
        for (q, cal) in self.qubits.iter().enumerate() {
            let q = q as u32;
            let ch = Channel::Drive(q);
            let mut s90 = Schedule::new(format!("rx90 q{q}"));
            cal.append_rx90(&mut s90, ch, &[ch], &format!("rx90_d{q}"));
            def.insert(CmdKey::new("rx90", &[q]), s90);

            let mut s180 = Schedule::new(format!("rx180 q{q}"));
            cal.append_rx180(&mut s180, ch, &[ch], &format!("rx180_d{q}"));
            def.insert(CmdKey::new("rx180", &[q]), s180);

            let mut meas = Schedule::new(format!("measure q{q}"));
            meas.append(Instruction::Acquire {
                duration: self.measure_duration,
                qubit: q,
                channel: Channel::Acquire(q),
            });
            def.insert(CmdKey::new("measure", &[q]), meas);
        }
        for pair in &self.pairs.clone() {
            let (c, t) = (pair.control, pair.target);
            // CNOT = Rz_c(90°)·Rx90_t·CR(−90°) up to global phase.
            let mut s = self
                .echoed_cr_schedule(device, c, t, -FRAC_PI_2)
                .expect("pair exists");
            let barrier = [
                Channel::Drive(c),
                Channel::Drive(t),
                device.control_channel(c, t).unwrap(),
            ];
            self.qubits[t as usize].append_rx90(
                &mut s,
                Channel::Drive(t),
                &barrier,
                &format!("rx90_d{t}"),
            );
            // Virtual Rz(90°) on the control: ShiftPhase(−π/2).
            s.append(Instruction::ShiftPhase {
                phase: -FRAC_PI_2,
                channel: Channel::Drive(c),
            });
            def.insert(CmdKey::new("cx", &[c, t]), s.named(format!("cx q{c},q{t}")));
        }
        self.cmd_def = def;
    }
}

/// Rabi + DRAG tune-up for one qubit.
///
/// Three stages, as on hardware: (1) a coarse Rabi amplitude sweep fit to a
/// cosine; (2) a fine-amplitude refinement maximizing inversion (the
/// error-amplification step); (3) a DRAG β sweep minimizing leakage. The
/// device's documented calibration residual (`DriftParams::cal_amp_sigma`)
/// is injected on top, since our simulated sweeps are otherwise more
/// precise than a real lab's.
///
/// Two fast-path hooks thread through every probe:
///
/// * **Sweep batching.** Fixed sweeps (the 41-point Rabi, the 21-point
///   DRAG, the 40 `direct_rx_table` points) integrate their *noiseless*
///   physics on `pool`, then apply the per-point shot noise serially in
///   index order from this qubit's own `rng` stream. [`quant_math::normal`]
///   consumes draws independently of its arguments, so the stream is
///   bit-identical to the fully serial order at any thread count.
/// * **Probe memoization.** All noiseless integrations go through
///   `probes`, and search-driven probe inputs are snapped with
///   [`quantize_probe`] *before* the waveform is rendered: the two
///   golden-section refinements revisit near-coincident points (the
///   section overlap, the re-refinement after the β sweep), which only hit
///   the content-addressed cache once quantized. Final pulse parameters
///   are the raw search outputs — quantization touches probes only.
fn calibrate_qubit(
    device: &DeviceModel,
    q: u32,
    opts: &CalibrationOptions,
    rng: &mut impl Rng,
    pool: &ShotPool,
    probes: &ProbeCache,
) -> QubitCalibration {
    let transmon = device.transmon_cal(q);
    let mk = |amp: f64, beta: f64| Drag {
        duration: opts.pulse_duration,
        amp,
        sigma: opts.pulse_sigma,
        beta,
    };
    let integrate = |w: &quant_pulse::Waveform| {
        probes.get_or_integrate(probe_key(transmon.params(), w), || {
            transmon.integrate_waveform(w)
        })
    };

    // --- Coarse Rabi amplitude sweep ------------------------------------
    // Stay below ~0.45 amplitude: at stronger drives the |2⟩ level Stark-
    // shifts the effective Rabi rate and biases the fit.
    let amps: Vec<f64> = (1..=41).map(|i| quantize_probe(i as f64 * 0.011)).collect();
    let clean: Vec<f64> = pool.map(&amps, |_, &amp| {
        integrate(&mk(amp, 0.0).waveform("rabi")).unitary[(1, 0)].norm_sqr()
    });
    let pops: Vec<f64> = clean
        .iter()
        .map(|&p| {
            let sigma = (p * (1.0 - p) / opts.shots as f64).sqrt();
            (p + normal(rng, 0.0, sigma)).clamp(0.0, 1.0)
        })
        .collect();
    // P(amp) = ½(1 − cos(2π·amp/period)); the π amplitude is period/2.
    let fit = fit_cosine(&amps, &pops, (0.15, 1.2));
    let coarse_180 = fit.period / 2.0;

    // --- Fine amplitude + frequency refinement ----------------------------
    // At π-pulse drive strength the AC-Stark shift pulls the qubit off
    // resonance, tilting the rotation axis out of the XY plane; the
    // rotation angle then *saturates below the target*. Labs compensate by
    // calibrating a small carrier detuning alongside the amplitude. We do
    // the same: alternate golden-section refinements of amplitude (hit the
    // tomography-extracted angle) and detuning (minimize the axis tilt,
    // visible as the Z-sandwich phases of the ZXZ form).
    let angle = |amp: f64, det: f64, beta: f64| -> f64 {
        let (amp, det, beta) = (
            quantize_probe(amp),
            quantize_probe(det),
            quantize_probe(beta),
        );
        let u = integrate(&mk(amp, beta).waveform_detuned("p", det)).qubit_block();
        quant_sim::euler_zxz(&u).1
    };
    let golden = |mut lo: f64, mut hi: f64, iters: usize, err: &dyn Fn(f64) -> f64| -> f64 {
        let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
        for _ in 0..iters {
            let m1 = hi - phi * (hi - lo);
            let m2 = lo + phi * (hi - lo);
            if err(m1) < err(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        (lo + hi) / 2.0
    };
    let refine = |initial: f64, target: f64, beta: f64| -> (f64, f64) {
        // Inner: best amplitude for a given detuning. Outer: the detuning
        // whose best amplitude gets closest to the target angle — off
        // resonance the reachable angle saturates below the target, so this
        // has a clear optimum at the Stark-compensating offset.
        let best_amp = |det: f64| -> (f64, f64) {
            let amp = golden(initial * 0.8, initial * 1.3, 32, &|x| {
                (angle(x, det, beta) - target).abs()
            });
            (amp, (angle(amp, det, beta) - target).abs())
        };
        let det = golden(-4.0e-3, 4.0e-3, 24, &|d| best_amp(d).1);
        (best_amp(det).0, det)
    };
    let (amp180_b0, det180_b0) = refine(coarse_180, std::f64::consts::PI, 0.0);

    // --- DRAG β sweep -----------------------------------------------------
    let beta_mag = 1.0 / (TAU * device.qubit(q).alpha.abs()) / DT;
    let betas: Vec<f64> = (-10..=10).map(|i| beta_mag * i as f64 / 5.0).collect();
    let (amp_d, det_d) = (quantize_probe(amp180_b0), quantize_probe(det180_b0));
    let leaks: Vec<f64> = pool.map(&betas, |_, &beta| {
        integrate(&mk(amp_d, quantize_probe(beta)).waveform_detuned("drag", det_d))
            .leakage_from_ground()
    });
    let mut best = (0.0_f64, f64::INFINITY);
    for (&beta, &clean_leak) in betas.iter().zip(&leaks) {
        let leak = clean_leak + normal(rng, 0.0, 0.01 / opts.shots as f64).abs();
        if leak < best.1 {
            best = (beta, leak);
        }
    }
    let beta = best.0;

    // --- Re-refine amplitude/detuning with the chosen β -------------------
    // DRAG's derivative component shifts both the effective angle and the
    // Stark offset, so the final amplitude/detuning must be tuned with β in
    // place.
    let (amp180, det180) = refine(coarse_180, std::f64::consts::PI, beta);
    let (amp90, det90) = refine(coarse_180 / 2.0, FRAC_PI_2, beta);

    // --- Residual calibration error --------------------------------------
    let sigma = device.drift().cal_amp_sigma;
    let amp180 = amp180 * (1.0 + normal(rng, 0.0, sigma));
    let amp90 = amp90 * (1.0 + normal(rng, 0.0, sigma));
    let rx90 = mk(amp90, beta);
    let rx180 = mk(amp180, beta);

    // --- Empirical phase correction (§4.4) --------------------------------
    // Tomography of the calibrated pulse → ZXZ Euler form; the Z factors
    // are compensated with virtual-Z frame changes. A small tomography
    // noise floor is left in.
    let mut measure_phases = |pulse: &Drag, det: f64| -> (f64, f64) {
        let u = integrate(&pulse.waveform_detuned("tomo", det)).qubit_block();
        let (a, _theta, c) = quant_sim::euler_zxz(&u);
        (a + normal(rng, 0.0, 2e-3), c + normal(rng, 0.0, 2e-3))
    };
    let rx90_phase = measure_phases(&rx90, det90);
    let rx180_phase = measure_phases(&rx180, det180);

    // --- DirectRx(θ) characterization table (Fig. 7) ----------------------
    // Scale the calibrated π pulse down by s = 0/40 … 40/40 and record the
    // tomography-measured ZXZ phase corrections at each point.
    let base = rx180.waveform_detuned("scaled", det180);
    let corrections = pool.map_indices(40, |j| {
        let s = (j + 1) as f64 / 40.0;
        let u = integrate(&base.scaled(s)).qubit_block();
        let (a, _theta, c) = quant_sim::euler_zxz(&u);
        (s, a, c)
    });
    let mut direct_rx_table = Vec::with_capacity(41);
    direct_rx_table.push((0.0, 0.0, 0.0));
    for (s, a, c) in corrections {
        direct_rx_table.push((s, a + normal(rng, 0.0, 2e-3), c + normal(rng, 0.0, 2e-3)));
    }

    QubitCalibration {
        rx90,
        rx180,
        rx90_phase,
        rx180_phase,
        rx90_detuning: det90,
        rx180_detuning: det180,
        direct_rx_table,
    }
}

/// CR tune-up for one directed pair: find the flat-top width of the 45°
/// half pulse, then measure the echoed block's ZI residual.
fn calibrate_pair(
    device: &DeviceModel,
    qubit_cals: &[QubitCalibration],
    control: u32,
    target: u32,
    opts: &CalibrationOptions,
) -> PairCalibration {
    let pair = device.pair_cal(control, target).expect("coupled pair");
    let u_ch = device.control_channel(control, target).unwrap();
    let d_c = Channel::Drive(control);
    let d_t = Channel::Drive(target);

    // Probe pulse → ZX angle per unit area.
    let probe = GaussianSquare {
        duration: 8 * opts.cr_sigma as u64 + 300,
        amp: opts.cr_amp,
        sigma: opts.cr_sigma,
        width: 300,
    };
    let mut s = Schedule::new("probe");
    s.append(Instruction::Play {
        waveform: probe.waveform("probe"),
        channel: u_ch,
    });
    let r = pair.integrate(&s, d_c, d_t, u_ch);
    let theta_probe = extract_zx_angle(&r.unitary);
    let area_probe = probe.waveform("probe").area().re;
    let rad_per_area = theta_probe / area_probe;

    // Solve the width for a 45° rotation.
    let target_area = FRAC_PI_4 / rad_per_area;
    let edge = GaussianSquare {
        width: 0,
        duration: 8 * opts.cr_sigma as u64,
        ..probe
    };
    let edge_area = edge.waveform("edge").area().re;
    let width_for_area =
        |area: f64| -> u64 { ((area - edge_area) / opts.cr_amp).max(0.0).round() as u64 };
    let mk_cr45 = |width: u64| GaussianSquare {
        duration: 8 * opts.cr_sigma as u64 + width,
        amp: opts.cr_amp,
        sigma: opts.cr_sigma,
        width,
    };
    let mut area = target_area;
    let mut cr45 = mk_cr45(width_for_area(area));

    // Refine: measure the full echoed block's ZX angle and rescale the
    // half-pulse area until it hits 90° (two Newton steps suffice).
    for _ in 0..2 {
        let holder = CalibrationHolder {
            qubits: qubit_cals.to_vec(),
            pair: PairCalibration {
                control,
                target,
                cr45,
                zi_residual: 0.0,
            },
        };
        let echoed = holder.echo_schedule(device, FRAC_PI_2);
        let r = pair.integrate(&echoed, d_c, d_t, u_ch);
        let measured = extract_zx_angle(&r.unitary);
        if measured.abs() < 1e-6 {
            break;
        }
        area *= FRAC_PI_2 / measured;
        cr45 = mk_cr45(width_for_area(area));
    }

    // Measure the echoed CR(−90°) block's residual control-Z.
    let mut partial = PairCalibration {
        control,
        target,
        cr45,
        zi_residual: 0.0,
    };
    let holder = CalibrationHolder {
        qubits: qubit_cals.to_vec(),
        pair: partial,
    };
    let echoed = holder.echo_schedule(device, -FRAC_PI_2);
    let r = pair.integrate(&echoed, d_c, d_t, u_ch);
    partial.zi_residual = extract_control_z(&r.corrected_unitary(), -FRAC_PI_2);
    partial
}

/// Minimal helper so `calibrate_pair` can build an echo schedule before the
/// full [`Calibration`] exists.
struct CalibrationHolder {
    qubits: Vec<QubitCalibration>,
    pair: PairCalibration,
}

impl CalibrationHolder {
    fn echo_schedule(&self, device: &DeviceModel, theta: f64) -> Schedule {
        let (c, t) = (self.pair.control, self.pair.target);
        let u_ch = device.control_channel(c, t).unwrap();
        let d_c = Channel::Drive(c);
        let barrier = [d_c, u_ch, Channel::Drive(t)];
        let factor = theta.abs() / FRAC_PI_2;
        let half = self.pair.cr45.stretched_area(factor);
        let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
        let qc = &self.qubits[c as usize];
        let mut s = Schedule::new("echo");
        qc.append_rx180(&mut s, d_c, &barrier, "xc");
        s.append_after(
            Instruction::Play {
                waveform: half.waveform("cr").scaled(-sign),
                channel: u_ch,
            },
            &barrier,
        );
        qc.append_rx180(&mut s, d_c, &barrier, "xc");
        s.append_after(
            Instruction::Play {
                waveform: half.waveform("cr").scaled(sign),
                channel: u_ch,
            },
            &barrier,
        );
        s
    }
}

/// One-call convenience: calibrate with default options.
pub fn calibrate(device: &DeviceModel, rng: &mut impl Rng) -> Calibration {
    Calibration::run(device, &CalibrationOptions::default(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;
    use quant_sim::gates;

    #[test]
    fn rabi_calibration_finds_pi_amplitude() {
        let device = DeviceModel::ideal(1);
        let mut rng = seeded(7);
        let cal = calibrate(&device, &mut rng);
        let q = cal.qubit(0);
        // The calibrated π pulse should actually produce a π rotation.
        let t = device.transmon_cal(0);
        let pop = t.excited_population(&q.rx180_waveform("x"));
        assert!(pop > 0.999, "π-pulse population = {pop}");
        let pop90 = t.excited_population(&q.rx90_waveform("h"));
        assert!((pop90 - 0.5).abs() < 0.01, "π/2 population = {pop90}");
    }

    #[test]
    fn rx180_is_roughly_twice_rx90_amplitude() {
        let device = DeviceModel::ideal(1);
        let mut rng = seeded(8);
        let cal = calibrate(&device, &mut rng);
        let q = cal.qubit(0);
        // The fine-cal stages tune the two independently (two π/2 pulses
        // must invert), so the ratio is ≈ 2 but not exactly 2.
        assert!((q.rx180.amp / q.rx90.amp - 2.0).abs() < 0.05);
        assert_eq!(q.rx180.duration, q.rx90.duration);
    }

    #[test]
    fn calibrated_x_gate_unitary() {
        let device = DeviceModel::ideal(1);
        let mut rng = seeded(9);
        let cal = calibrate(&device, &mut rng);
        let t = device.transmon_cal(0);
        // The cmd_def entry carries the empirical phase correction.
        let s = cal.cmd_def().get("rx180", &[0]).unwrap();
        let r = t.integrate(s, Channel::Drive(0));
        let diff = r.qubit_block().phase_invariant_diff(&gates::x());
        assert!(diff < 0.01, "DirectX diff = {diff}");

        let s90 = cal.cmd_def().get("rx90", &[0]).unwrap();
        let r90 = t.integrate(s90, Channel::Drive(0));
        let diff90 = r90
            .qubit_block()
            .phase_invariant_diff(&gates::rx(std::f64::consts::FRAC_PI_2));
        assert!(diff90 < 0.01, "rx90 diff = {diff90}");
    }

    #[test]
    fn cmd_def_has_all_primitives() {
        let mut rng = seeded(10);
        let device = DeviceModel::almaden_like(3, &mut rng);
        let cal = calibrate(&device, &mut rng);
        let def = cal.cmd_def();
        for q in 0..3 {
            assert!(def.contains("rx90", &[q]));
            assert!(def.contains("rx180", &[q]));
            assert!(def.contains("measure", &[q]));
        }
        assert!(def.contains("cx", &[0, 1]));
        assert!(def.contains("cx", &[1, 0]));
        assert!(def.contains("cx", &[1, 2]));
        assert!(!def.contains("cx", &[0, 2]));
    }

    #[test]
    fn calibrated_cnot_matches_ideal() {
        let device = DeviceModel::ideal(2);
        let mut rng = seeded(11);
        let cal = calibrate(&device, &mut rng);
        let s = cal.cmd_def().get("cx", &[0, 1]).unwrap();
        let pair = device.pair_cal(0, 1).unwrap();
        let r = pair.integrate(
            s,
            Channel::Drive(0),
            Channel::Drive(1),
            device.control_channel(0, 1).unwrap(),
        );
        let u = r.corrected_unitary();
        let diff = u.phase_invariant_diff(&gates::cnot());
        assert!(diff < 0.06, "CNOT diff = {diff}");
    }

    #[test]
    fn echoed_cr_schedule_hits_requested_angle() {
        let device = DeviceModel::ideal(2);
        let mut rng = seeded(12);
        let cal = calibrate(&device, &mut rng);
        let pair = device.pair_cal(0, 1).unwrap();
        for theta in [FRAC_PI_4, FRAC_PI_2, 1.2] {
            let s = cal.echoed_cr_schedule(&device, 0, 1, theta).unwrap();
            let r = pair.integrate(
                &s,
                Channel::Drive(0),
                Channel::Drive(1),
                device.control_channel(0, 1).unwrap(),
            );
            let got = extract_zx_angle(&r.unitary);
            assert!((got - theta).abs() < 0.05, "θ = {theta}: extracted {got}");
        }
    }

    #[test]
    fn cr_stretch_shortens_small_angles() {
        // CR(θ) for θ < 90° is *shorter* than CR(90°) — the paper's ~2×
        // duration win for ZZ interactions.
        let device = DeviceModel::ideal(2);
        let mut rng = seeded(13);
        let cal = calibrate(&device, &mut rng);
        let dur = |theta: f64| {
            cal.echoed_cr_schedule(&device, 0, 1, theta)
                .unwrap()
                .duration()
        };
        assert!(dur(FRAC_PI_4) < dur(FRAC_PI_2));
        assert!(dur(0.2) < dur(FRAC_PI_4));
    }

    #[test]
    fn calibration_with_noise_still_close() {
        let mut rng = seeded(14);
        let device = DeviceModel::almaden_like(2, &mut rng);
        let cal = calibrate(&device, &mut rng);
        // Calibrated π pulse on the *calibration-time* device is nearly
        // exact despite finite shots.
        let t = device.transmon_cal(0);
        let pop = t.excited_population(&cal.qubit(0).rx180.waveform("x"));
        assert!(pop > 0.99, "π-pulse population = {pop}");
    }
}
