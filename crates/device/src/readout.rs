//! Measurement: confusion-matrix readout error and IQ-plane simulation.
//!
//! Qubit measurements pass the true outcome distribution through each
//! qubit's asymmetric confusion matrix (Almaden's mean 3.8 % assignment
//! error, biased towards reading 0 by relaxation during the measurement
//! window). Qutrit experiments additionally get simulated readout-resonator
//! IQ points — Gaussian clouds per level, as in the paper's Fig. 11 left
//! panel — which the characterization crate's linear discriminant
//! classifies.

use crate::params::ReadoutParams;
use quant_math::normal;
use rand::Rng;

/// Passes a distribution over `2^n` outcomes through per-qubit confusion
/// matrices. `probs[i]`'s bit `q` (little-endian) is qubit `q`'s outcome.
pub fn apply_confusion(probs: &[f64], readouts: &[ReadoutParams]) -> Vec<f64> {
    let n = readouts.len();
    assert_eq!(probs.len(), 1 << n, "distribution size mismatch");
    let mut current = probs.to_vec();
    for (q, r) in readouts.iter().enumerate() {
        let m = r.confusion();
        let mut next = vec![0.0; current.len()];
        for (i, &p) in current.iter().enumerate() {
            // opclint: allow(float-literal-eq): exact skip — entries still at their initialized 0.0 carry no probability mass
            if p == 0.0 {
                continue;
            }
            let bit = (i >> q) & 1;
            for (measured, row) in m.iter().enumerate() {
                let j = (i & !(1 << q)) | (measured << q);
                next[j] += p * row[bit];
            }
        }
        current = next;
    }
    current
}

/// The 3×3 qutrit confusion matrix implied by the IQ cloud geometry under
/// an ideal maximum-likelihood (nearest-centroid, equal covariance)
/// discriminator: `M[measured][prepared]`.
///
/// Computed by Monte-Carlo over the Gaussian clouds; deterministic given
/// the RNG.
pub fn qutrit_confusion(r: &ReadoutParams, rng: &mut impl Rng, samples: usize) -> [[f64; 3]; 3] {
    let centroids = [r.iq0, r.iq1, r.iq2];
    let mut m = [[0.0f64; 3]; 3];
    for (prepared, &c) in centroids.iter().enumerate() {
        for _ in 0..samples {
            let p = sample_iq_point(c, r.iq_sigma, rng);
            let measured = classify_nearest(p, &centroids);
            m[measured][prepared] += 1.0;
        }
        for row in m.iter_mut() {
            row[prepared] /= samples as f64;
        }
    }
    m
}

/// Samples one IQ point from the cloud of a given level.
pub fn sample_iq(r: &ReadoutParams, level: usize, rng: &mut impl Rng) -> (f64, f64) {
    let c = match level {
        0 => r.iq0,
        1 => r.iq1,
        2 => r.iq2,
        _ => panic!("IQ model supports levels 0–2, got {level}"),
    };
    sample_iq_point(c, r.iq_sigma, rng)
}

fn sample_iq_point(c: (f64, f64), sigma: f64, rng: &mut impl Rng) -> (f64, f64) {
    (normal(rng, c.0, sigma), normal(rng, c.1, sigma))
}

/// Nearest-centroid classification (equal isotropic covariance ⇒ identical
/// to the pooled-covariance LDA decision rule).
pub fn classify_nearest(p: (f64, f64), centroids: &[(f64, f64)]) -> usize {
    let mut best = (0, f64::INFINITY);
    for (k, &c) in centroids.iter().enumerate() {
        let d = (p.0 - c.0).powi(2) + (p.1 - c.1).powi(2);
        if d < best.1 {
            best = (k, d);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;

    fn readout() -> ReadoutParams {
        ReadoutParams::almaden_like()
    }

    #[test]
    fn confusion_preserves_total_probability() {
        let probs = vec![0.1, 0.2, 0.3, 0.4];
        let out = apply_confusion(&probs, &[readout(), readout()]);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_mixes_towards_bias() {
        // A pure |11⟩ state should leak weight towards |01⟩/|10⟩/|00⟩,
        // more than a pure |00⟩ leaks upward (p0_given_1 > p1_given_0).
        let pure11 = apply_confusion(&[0.0, 0.0, 0.0, 1.0], &[readout(), readout()]);
        let pure00 = apply_confusion(&[1.0, 0.0, 0.0, 0.0], &[readout(), readout()]);
        assert!(pure11[3] < 1.0 && pure11[3] > 0.85);
        assert!(pure00[0] > pure11[3], "readout is biased towards 0");
    }

    #[test]
    fn confusion_identity_when_perfect() {
        let perfect = ReadoutParams {
            p1_given_0: 0.0,
            p0_given_1: 0.0,
            ..readout()
        };
        let probs = vec![0.25, 0.25, 0.25, 0.25];
        let out = apply_confusion(&probs, &[perfect, perfect]);
        for (a, b) in probs.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn iq_clouds_are_separable() {
        let r = readout();
        let mut rng = seeded(21);
        let m = qutrit_confusion(&r, &mut rng, 20_000);
        for (prepared, row) in m.iter().enumerate() {
            assert!(
                row[prepared] > 0.9,
                "level {prepared} assignment fidelity {}",
                row[prepared]
            );
            let col_sum: f64 = (0..3).map(|meas| m[meas][prepared]).sum();
            assert!((col_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classify_nearest_basics() {
        let cents = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)];
        assert_eq!(classify_nearest((0.1, 0.1), &cents), 0);
        assert_eq!(classify_nearest((1.9, -0.2), &cents), 1);
        assert_eq!(classify_nearest((0.2, 1.8), &cents), 2);
    }
}
