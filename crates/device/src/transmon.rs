//! Pulse-level integration of a driven three-level transmon.
//!
//! The qubit is modelled as a Duffing oscillator truncated to three levels,
//! in the frame co-rotating with its |0⟩→|1⟩ transition `f01`:
//!
//! ```text
//! H(t)/ħ = 2π·α |2⟩⟨2|  +  (Ω/2)·( d̃(t)·a† + d̃*(t)·a ),
//! d̃(t) = d(t) · e^{i(φ_frame + 2π·Δf·t)}
//! ```
//!
//! where `d(t)` are the schedule's complex samples, `φ_frame` accumulates
//! `ShiftPhase` instructions (virtual-Z), and `Δf` accumulates
//! `ShiftFrequency` instructions — the paper's mechanism for addressing the
//! `f12` and `f02/2` qudit transitions (Eq. 1 of the paper). `a` is the
//! 3-level lowering operator with matrix elements 1, √2.
//!
//! Integration is a first-order Trotter product of per-sample propagators
//! `exp(-i·H(tₖ)·dt)` at the AWG rate (dt = 0.22 ns), which is far below
//! every timescale in the problem.

use crate::params::{TransmonParams, DT};
use quant_math::{CMat, PropagatorScratch, C64};
use quant_pulse::{Channel, Instruction, Schedule};
use std::f64::consts::TAU;

/// Result of integrating a drive schedule: the propagator in the rotating
/// frame, plus the leftover virtual-Z frame.
#[derive(Clone, Debug)]
pub struct FrameResult {
    /// 3×3 propagator, *excluding* the trailing frame correction.
    pub unitary: CMat,
    /// Accumulated frame phase (radians) from `ShiftPhase` instructions.
    pub frame_phase: f64,
    /// Total integrated duration in `dt` samples.
    pub duration: u64,
}

impl FrameResult {
    /// The propagator with the leftover virtual-Z realized explicitly:
    /// `e^{-i·φ·n̂} · U`, i.e. level `k` picks up phase `−k·φ`.
    ///
    /// With the compiler's convention `Rz(λ) → ShiftPhase(−λ)`, this makes
    /// a schedule's corrected unitary equal its gate-level target.
    pub fn corrected_unitary(&self) -> CMat {
        // Trailing correction Rz(−φ_total) ∝ e^{-iφ·n̂}: level k gains e^{-ikφ}.
        let phi = self.frame_phase;
        let corr = CMat::diag(&[C64::ONE, C64::cis(-phi), C64::cis(-2.0 * phi)]);
        &corr * &self.unitary
    }

    /// The qubit-subspace (2×2) block of [`FrameResult::corrected_unitary`].
    pub fn qubit_block(&self) -> CMat {
        let u = self.corrected_unitary();
        CMat::from_rows(&[&[u[(0, 0)], u[(0, 1)]], &[u[(1, 0)], u[(1, 1)]]])
    }

    /// Population that leaked outside the qubit subspace, starting from
    /// |0⟩: `|⟨2|U|0⟩|²`.
    pub fn leakage_from_ground(&self) -> f64 {
        self.unitary[(2, 0)].norm_sqr()
    }
}

/// Mutable per-channel drive state threaded through incremental
/// integration: virtual-Z frame, LO offset, and the accumulated
/// frequency-modulation phase (which must stay continuous across pulses
/// for multi-pulse qudit sequences to stay phase-coherent).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DriveState {
    /// Accumulated `ShiftPhase` frame (radians).
    pub frame_phase: f64,
    /// LO offset from `f01` (Hz).
    pub freq_offset: f64,
    /// Accumulated `∫ 2π·Δf dt` modulation phase (radians).
    pub mod_phase: f64,
    /// Accumulated `∫ 2π·α dt` anharmonic phase of |2⟩ (radians), pending
    /// application.
    pub static_phase: f64,
}

/// A three-level transmon integrator.
#[derive(Clone, Debug)]
pub struct Transmon {
    params: TransmonParams,
}

impl Transmon {
    /// Creates an integrator for the given physical parameters.
    pub fn new(params: TransmonParams) -> Self {
        Transmon { params }
    }

    /// The physical parameters.
    pub fn params(&self) -> &TransmonParams {
        &self.params
    }

    /// The static Hamiltonian (rad/s) in the f01 rotating frame:
    /// `2π·α·|2⟩⟨2|`.
    fn h_static(&self) -> CMat {
        CMat::diag(&[C64::ZERO, C64::ZERO, C64::real(TAU * self.params.alpha)])
    }

    /// Applies any pending free evolution (|2⟩ anharmonic phase) in `state`
    /// to `u`.
    fn flush_static(u: &mut CMat, state: &mut DriveState) {
        // opclint: allow(float-literal-eq): exact sentinel — static_phase is reset to a literal 0.0 after every flush
        if state.static_phase != 0.0 {
            let free = CMat::diag(&[C64::ONE, C64::ONE, C64::cis(-state.static_phase)]);
            *u = &free * &*u;
            state.static_phase = 0.0;
        }
    }

    /// Advances the drive state over `samples` of idle time.
    pub fn advance_idle(&self, state: &mut DriveState, samples: u64) {
        let t = samples as f64 * DT;
        state.mod_phase += TAU * state.freq_offset * t;
        state.static_phase += TAU * self.params.alpha * t;
    }

    /// Integrates one waveform under the current drive state, returning its
    /// 3×3 propagator (including any pending free evolution) and advancing
    /// the state.
    pub fn integrate_play(&self, state: &mut DriveState, waveform: &quant_pulse::Waveform) -> CMat {
        let omega = TAU * self.params.rabi_hz_per_amp;
        let mut u = CMat::identity(3);
        Self::flush_static(&mut u, state);
        let h0 = self.h_static();
        // All buffers are allocated once here; the per-sample loop below is
        // allocation-free (Taylor propagator with reused scratch instead of
        // a per-sample eigendecomposition).
        let mut h = CMat::zeros(3, 3);
        let mut step = CMat::zeros(3, 3);
        let mut next = CMat::zeros(3, 3);
        let mut scratch = PropagatorScratch::new(3);
        let half = omega / 2.0;
        let half_sqrt2 = half * std::f64::consts::SQRT_2;
        for &sample in waveform.samples() {
            // In this convention the a† coefficient rotates as
            // e^{−i·2π·Δf·t} for an LO shifted up by Δf, which makes
            // ShiftFrequency(α) resonant with the 1↔2 transition (see
            // module docs and unit tests).
            let phase = state.frame_phase - state.mod_phase;
            let d_eff = sample * C64::cis(phase);
            h.copy_from(&h0);
            // (Ω/2)(d̃ a† + d̃* a); a has elements 1, √2.
            h[(1, 0)] += d_eff * half;
            h[(0, 1)] += d_eff.conj() * half;
            h[(2, 1)] += d_eff * half_sqrt2;
            h[(1, 2)] += d_eff.conj() * half_sqrt2;
            scratch.unitary_exp_into(&h, DT, &mut step);
            step.mul_into(&u, &mut next);
            std::mem::swap(&mut u, &mut next);
            state.mod_phase += TAU * state.freq_offset * DT;
        }
        u
    }

    /// Updates the drive state for a zero-duration instruction; returns
    /// true if the instruction was a frame/frequency bookkeeping op.
    pub fn apply_frame_instruction(
        &self,
        state: &mut DriveState,
        instruction: &Instruction,
    ) -> bool {
        match instruction {
            Instruction::ShiftPhase { phase, .. } => {
                state.frame_phase += phase;
                true
            }
            Instruction::SetFrequency { frequency, .. } => {
                state.freq_offset = frequency - self.params.f01;
                true
            }
            Instruction::ShiftFrequency { delta, .. } => {
                state.freq_offset += delta;
                true
            }
            _ => false,
        }
    }

    /// Integrates all instructions on one drive channel of a schedule.
    ///
    /// Instructions on other channels are ignored; gaps between
    /// instructions advance the frequency-modulation phase but are
    /// otherwise free evolution (which is trivial in this frame apart from
    /// the |2⟩ anharmonic phase, included exactly).
    pub fn integrate(&self, schedule: &Schedule, channel: Channel) -> FrameResult {
        let mut u = CMat::identity(3);
        let mut state = DriveState::default();
        let mut cursor: u64 = 0;

        for ti in schedule.instructions() {
            if ti.instruction.channel() != channel {
                continue;
            }
            if ti.start > cursor {
                self.advance_idle(&mut state, ti.start - cursor);
                cursor = ti.start;
            }
            if self.apply_frame_instruction(&mut state, &ti.instruction) {
                continue;
            }
            match &ti.instruction {
                Instruction::Delay { duration, .. } => {
                    self.advance_idle(&mut state, *duration);
                    cursor += duration;
                }
                Instruction::Acquire { duration, .. } => {
                    cursor += duration;
                }
                Instruction::Play { waveform, .. } => {
                    let step = self.integrate_play(&mut state, waveform);
                    u = &step * &u;
                    cursor += waveform.duration();
                }
                _ => unreachable!("frame instructions handled above"),
            }
        }
        let mut final_u = u;
        Self::flush_static(&mut final_u, &mut state);
        FrameResult {
            unitary: final_u,
            frame_phase: state.frame_phase,
            duration: cursor,
        }
    }

    /// Convenience: integrates a single waveform played from t = 0 with no
    /// frame or frequency offsets.
    pub fn integrate_waveform(&self, waveform: &quant_pulse::Waveform) -> FrameResult {
        let mut s = Schedule::new("single");
        s.append(Instruction::Play {
            waveform: waveform.clone(),
            channel: Channel::Drive(0),
        });
        self.integrate(&s, Channel::Drive(0))
    }

    /// Population transfer |0⟩ → |1⟩ produced by a waveform (the quantity a
    /// Rabi calibration sweep measures).
    pub fn excited_population(&self, waveform: &quant_pulse::Waveform) -> f64 {
        let r = self.integrate_waveform(waveform);
        r.unitary[(1, 0)].norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_pulse::{Constant, Drag, Gaussian};
    use quant_sim::gates;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn transmon() -> Transmon {
        Transmon::new(TransmonParams::almaden_like())
    }

    /// Constant-amplitude resonant drive of area θ/(2π·rabi) rotates by θ.
    fn const_pulse_for_angle(t: &Transmon, theta: f64) -> quant_pulse::Waveform {
        let amp = 0.05;
        let time = theta / (TAU * t.params().rabi_hz_per_amp * amp);
        let samples = (time / DT).round() as u64;
        Constant {
            duration: samples,
            amp,
        }
        .waveform("const")
    }

    #[test]
    fn resonant_drive_is_x_rotation() {
        let t = transmon();
        let w = const_pulse_for_angle(&t, PI);
        let r = t.integrate_waveform(&w);
        let q = r.qubit_block();
        // Low amplitude → negligible leakage; should be Rx(π) ≈ -iX.
        assert!(
            q.phase_invariant_diff(&gates::x()) < 0.02,
            "diff = {}",
            q.phase_invariant_diff(&gates::x())
        );
        assert!(r.leakage_from_ground() < 1e-3);
    }

    #[test]
    fn half_area_gives_half_rotation() {
        let t = transmon();
        let w = const_pulse_for_angle(&t, FRAC_PI_2);
        let r = t.integrate_waveform(&w);
        let q = r.qubit_block();
        assert!(q.phase_invariant_diff(&gates::rx(FRAC_PI_2)) < 0.02);
    }

    #[test]
    fn frame_phase_rotates_drive_axis() {
        // ShiftPhase(+π/2) before the pulse turns Rx into a rotation about
        // the axis at +π/2, i.e. Ry up to Z-conjugation:
        // U = Rz(φ)·Rx(θ)·Rz(−φ).
        let t = transmon();
        let w = const_pulse_for_angle(&t, PI);
        let mut s = Schedule::new("phase");
        s.append(Instruction::ShiftPhase {
            phase: FRAC_PI_2,
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: w,
            channel: Channel::Drive(0),
        });
        let r = t.integrate(&s, Channel::Drive(0));
        // Raw unitary (ignoring trailing frame) should be
        // Rz(π/2) Rx(π) Rz(−π/2) = Ry(π) up to phase.
        let q = CMat::from_rows(&[
            &[r.unitary[(0, 0)], r.unitary[(0, 1)]],
            &[r.unitary[(1, 0)], r.unitary[(1, 1)]],
        ]);
        let expect = &(&gates::rz(FRAC_PI_2) * &gates::rx(PI)) * &gates::rz(-FRAC_PI_2);
        assert!(q.phase_invariant_diff(&expect) < 0.02);
    }

    #[test]
    fn corrected_unitary_realizes_virtual_z() {
        // Schedule: ShiftPhase(−λ) then Rx(π/2) pulse ≡ gate sequence
        // Rx(π/2)·Rz(λ).
        let lambda = 0.8_f64;
        let t = transmon();
        let w = const_pulse_for_angle(&t, FRAC_PI_2);
        let mut s = Schedule::new("vz");
        s.append(Instruction::ShiftPhase {
            phase: -lambda,
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: w,
            channel: Channel::Drive(0),
        });
        let r = t.integrate(&s, Channel::Drive(0));
        let q = r.qubit_block();
        let expect = &gates::rx(FRAC_PI_2) * &gates::rz(lambda);
        assert!(
            q.phase_invariant_diff(&expect) < 0.02,
            "diff = {}",
            q.phase_invariant_diff(&expect)
        );
    }

    #[test]
    fn frequency_shifted_drive_addresses_12_subspace() {
        use std::f64::consts::SQRT_2;
        // Starting from |1⟩, a pulse shifted by α drives 1↔2.
        let t = transmon();
        let amp = 0.05;
        // The 1↔2 matrix element is √2 stronger, so a π rotation needs
        // area π/√2.
        let time = PI / (TAU * t.params().rabi_hz_per_amp * amp) / SQRT_2;
        let samples = (time / DT).round() as u64;
        let w = Constant {
            duration: samples,
            amp,
        }
        .waveform("f12");
        let mut s = Schedule::new("f12");
        s.append(Instruction::ShiftFrequency {
            delta: t.params().alpha,
            channel: Channel::Drive(0),
        });
        s.append(Instruction::Play {
            waveform: w,
            channel: Channel::Drive(0),
        });
        let r = t.integrate(&s, Channel::Drive(0));
        // |⟨2|U|1⟩|² should be near 1.
        let p21 = r.unitary[(2, 1)].norm_sqr();
        assert!(p21 > 0.95, "1→2 transfer = {p21}");
        // And the ground state stays put (far detuned).
        let p00 = r.unitary[(0, 0)].norm_sqr();
        assert!(p00 > 0.95, "0→0 survival = {p00}");
    }

    #[test]
    fn two_photon_drive_reaches_second_excited() {
        // Driving at f02/2 (Δf = α/2) with strong amplitude transfers
        // 0 → 2 via the two-photon process.
        let t = transmon();
        let mut s = Schedule::new("f02");
        s.append(Instruction::ShiftFrequency {
            delta: t.params().alpha / 2.0,
            channel: Channel::Drive(0),
        });
        // Long strong constant drive; scan for the first maximum of |2⟩.
        let w = Constant {
            duration: 2400,
            amp: 0.5,
        }
        .waveform("two_photon");
        s.append(Instruction::Play {
            waveform: w,
            channel: Channel::Drive(0),
        });
        let r = t.integrate(&s, Channel::Drive(0));
        let p20 = r.unitary[(2, 0)].norm_sqr();
        // The two-photon Rabi rate is slow; with these parameters the
        // transfer should be substantial at some point in the evolution —
        // final-time check just needs to see significant |2⟩ population
        // compared to off-resonant leakage.
        assert!(p20 > 0.2, "two-photon 0→2 transfer = {p20}");
    }

    #[test]
    fn drag_suppresses_leakage() {
        // Mirror the real DRAG tune-up: sweep β and check that the best
        // nonzero β beats β = 0 decisively for a fast, strong pulse.
        let t = transmon();
        let leak_at = |beta: f64| {
            let w = Drag {
                duration: 48,
                amp: 0.85,
                sigma: 12.0,
                beta,
            }
            .waveform("drag");
            t.integrate_waveform(&w).leakage_from_ground()
        };
        let leak_plain = leak_at(0.0);
        let mag = 1.0 / (TAU * t.params().alpha.abs()) / DT;
        let mut best = (0.0, leak_plain);
        for i in -8..=8 {
            let beta = mag * i as f64 / 4.0;
            let leak = leak_at(beta);
            if leak < best.1 {
                best = (beta, leak);
            }
        }
        assert!(
            best.1 < leak_plain * 0.5,
            "best DRAG leak {} (β = {}) vs plain {leak_plain}",
            best.1,
            best.0
        );
        assert!(best.0.abs() > 1e-12, "optimal β should be nonzero");
    }

    #[test]
    fn unitarity_preserved() {
        let t = transmon();
        let w = Drag {
            duration: 160,
            amp: 0.2,
            sigma: 40.0,
            beta: 0.5,
        }
        .waveform("w");
        let r = t.integrate_waveform(&w);
        assert!(r.unitary.is_unitary(1e-8));
        assert!(r.corrected_unitary().is_unitary(1e-8));
    }

    #[test]
    fn smaller_amplitude_smaller_leakage() {
        // §8.3 source 3: smaller amplitudes leak less.
        let t = transmon();
        let mk = |amp: f64| {
            Gaussian {
                duration: 160,
                amp,
                sigma: 40.0,
            }
            .waveform("g")
        };
        let leak_small = t.integrate_waveform(&mk(0.1)).leakage_from_ground();
        let leak_large = t.integrate_waveform(&mk(0.4)).leakage_from_ground();
        assert!(leak_small < leak_large);
    }
}
