//! Workspace discovery: which `.rs` files to lint and under which
//! [`FileCtx`].
//!
//! Scope — *library code only*: `crates/*/src/**` plus the root package's
//! `src/**`. Integration tests, examples and benches are intentionally
//! outside the net: they are consumers of the library invariants, not
//! carriers of them (and the determinism suites *want* wall-clock and
//! unseeded randomness in places). `#[cfg(test)]` modules inside library
//! files are excluded token-precisely by the rule engine instead.

use crate::rules::FileCtx;
use std::fs;
use std::path::{Path, PathBuf};

/// The bench crate may read wall-clocks (that is its job); everything
/// else must not.
const ENTROPY_EXEMPT_CRATES: [&str; 1] = ["repro-bench"];

/// One file scheduled for linting.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path used in findings.
    pub rel: String,
    /// Rule context.
    pub ctx: FileCtx,
}

/// Walks up from `start` to the enclosing workspace root (the directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

/// Reads the `name = "…"` of a crate's `Cargo.toml`.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

/// Collects every library source file of the workspace at `root`.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    // Member crates: crates/*/src.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = Vec::new();
    match fs::read_dir(&crates_dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() && p.join("Cargo.toml").is_file() {
                    members.push(p);
                }
            }
        }
        Err(e) => return Err(format!("cannot read {}: {e}", crates_dir.display())),
    }
    members.sort();
    for member in members {
        let name = package_name(&member.join("Cargo.toml"))
            .ok_or_else(|| format!("no package name in {}", member.join("Cargo.toml").display()))?;
        let ctx = FileCtx {
            entropy_exempt: ENTROPY_EXEMPT_CRATES.contains(&name.as_str()),
            crate_name: name,
            is_test: false,
        };
        push_rs_files(root, &member.join("src"), &ctx, &mut files)?;
    }
    // The root package's own src/.
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        let ctx = FileCtx {
            crate_name: name,
            entropy_exempt: false,
            is_test: false,
        };
        push_rs_files(root, &root.join("src"), &ctx, &mut files)?;
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Recursively adds `dir`'s `.rs` files under `ctx`.
fn push_rs_files(
    root: &Path,
    dir: &Path,
    ctx: &FileCtx,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        // A crate without src/ (or an unreadable dir) is not our error
        // to report; cargo will complain better than we can.
        Err(_) => return Ok(()),
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            push_rs_files(root, &p, ctx, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: p,
                rel,
                ctx: ctx.clone(),
            });
        }
    }
    Ok(())
}
