//! The `opclint` command-line driver.
//!
//! ```text
//! cargo run -p opclint                  # report findings, exit 0
//! cargo run -p opclint -- --check       # CI gate: exit 1 on any finding
//! cargo run -p opclint -- --check --json   # same gate, machine-readable
//! cargo run -p opclint -- --update-baseline
//! cargo run -p opclint -- --check path/to/file.rs …   # lint files as
//!                                       # library code (fixture testing)
//! cargo run -p opclint -- --list-rules
//! ```
//!
//! `--json` emits a single object on stdout —
//! `{"findings": […], "notes": […], "files": N, "panic_sites": N}` —
//! so CI annotations and editor integrations don't have to scrape the
//! human format. Exit semantics are unchanged.

use opclint::{baseline, lint_file, lint_workspace, FileCtx, Finding};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    check: bool,
    json: bool,
    update_baseline: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        json: false,
        update_baseline: false,
        list_rules: false,
        root: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "opclint — determinism & panic-safety lint\n\
                     usage: opclint [--check] [--json] [--update-baseline] [--root DIR] \
                     [--list-rules] [FILE.rs …]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` (see --help)"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("opclint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in opclint::RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Explicit-file mode: lint the named files as non-test library code.
    // This is how the fixture suite (and curious humans) probe single
    // snippets; the panic-budget ratchet needs crate attribution and is
    // skipped.
    if !args.files.is_empty() {
        let mut findings: Vec<Finding> = Vec::new();
        for f in &args.files {
            let text =
                fs::read_to_string(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
            let ctx = FileCtx {
                crate_name: "adhoc".to_string(),
                entropy_exempt: false,
                is_test: false,
            };
            findings.extend(lint_file(&f.to_string_lossy(), &text, &ctx).findings);
        }
        if args.json {
            println!("{}", render_json(&findings, &[], args.files.len(), None));
        } else {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "opclint: {} finding(s) in {} file(s) (explicit-file mode, no baseline)",
                findings.len(),
                args.files.len()
            );
        }
        return Ok(exit_for(args.check, findings.len()));
    }

    let cwd = std::env::current_dir().map_err(|e| format!("no working directory: {e}"))?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => opclint::find_workspace_root(&cwd)?,
    };
    let report = lint_workspace(&root)?;
    let baseline_path = root.join(baseline::BASELINE_FILE);

    if args.update_baseline {
        fs::write(&baseline_path, baseline::render(&report.panic_counts))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "opclint: wrote {} ({} crates, {} panic sites total)",
            baseline::BASELINE_FILE,
            report.panic_counts.len(),
            report.panic_counts.values().sum::<usize>()
        );
    }

    let mut findings = report.findings.clone();
    let mut notes: Vec<String> = Vec::new();
    match fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let committed = baseline::parse(&text)?;
            let (ratchet, ratchet_notes) = baseline::compare(&committed, &report.panic_counts);
            findings.extend(ratchet);
            notes.extend(ratchet_notes);
        }
        Err(_) => {
            findings.push(Finding {
                rule: "panic-budget",
                file: baseline::BASELINE_FILE.to_string(),
                line: 0,
                message: "missing baseline file — run `cargo run -p opclint -- \
                          --update-baseline` and commit it"
                    .to_string(),
            });
        }
    }

    if args.json {
        println!(
            "{}",
            render_json(
                &findings,
                &notes,
                report.files,
                Some(report.panic_counts.values().sum::<usize>())
            )
        );
    } else {
        for f in &findings {
            println!("{f}");
        }
        for n in &notes {
            println!("note[panic-budget] {n}");
        }
        println!(
            "opclint: {} finding(s), {} note(s) across {} files ({} panic sites in budget)",
            findings.len(),
            notes.len(),
            report.files,
            report.panic_counts.values().sum::<usize>()
        );
    }
    Ok(exit_for(args.check, findings.len()))
}

/// Minimal JSON escaping (quotes, backslashes, control characters) — the
/// output is paths, rule ids and lint prose, so this covers everything a
/// finding can contain without pulling in a serializer.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. `panic_sites` is `None` in
/// explicit-file mode, where the baseline ratchet does not run.
fn render_json(
    findings: &[Finding],
    notes: &[String],
    files: usize,
    panic_sites: Option<usize>,
) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"notes\":[");
    for (i, n) in notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(n)));
    }
    out.push_str(&format!("],\"files\":{files}"));
    match panic_sites {
        Some(n) => out.push_str(&format!(",\"panic_sites\":{n}}}")),
        None => out.push('}'),
    }
    out
}

fn exit_for(check: bool, findings: usize) -> ExitCode {
    if check && findings > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
